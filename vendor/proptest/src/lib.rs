//! Offline stand-in for `proptest`: random-input property testing with
//! the strategy combinators this workspace uses. No shrinking — a failing
//! case panics with the assertion's own message (the repo's `prop_assert*`
//! calls embed the relevant values).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full workspace suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not complete (only rejection is modeled).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`.
    Reject,
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Derive a deterministic per-property seed from its name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic RNG for one named property (macro support; callable from
/// expansions in crates that do not themselves depend on `rand`).
pub fn rng_for(name: &str) -> TestRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::*;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy built from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Retry until the predicate holds (bounded attempts).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, whence }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence);
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// A regex-subset string strategy: `&str` patterns of the forms
    /// `[chars]{m,n}` and `\PC{m,n}` (any printable character).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_pattern(self);
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parse the supported pattern subset into (alphabet, min, max).
    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let (class, counts) = pattern
            .rsplit_once('{')
            .unwrap_or_else(|| panic!("unsupported pattern '{pattern}': missing {{m,n}}"));
        let counts = counts
            .strip_suffix('}')
            .unwrap_or_else(|| panic!("unsupported pattern '{pattern}': missing '}}'"));
        let (lo, hi) = counts
            .split_once(',')
            .unwrap_or_else(|| panic!("unsupported pattern '{pattern}': need {{m,n}}"));
        let lo: usize = lo.trim().parse().expect("bad lower repeat bound");
        let hi: usize = hi.trim().parse().expect("bad upper repeat bound");

        let alphabet: Vec<char> = if class == "\\PC" {
            // Printable characters: ASCII plus a few multi-byte scalars to
            // keep UTF-8 handling honest.
            let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
            chars.extend(['é', 'λ', '中', '🙂', 'ß', '…']);
            chars
        } else if let Some(body) = class.strip_prefix('[').and_then(|c| c.strip_suffix(']')) {
            let mut chars = Vec::new();
            let mut it = body.chars().peekable();
            while let Some(c) = it.next() {
                if it.peek() == Some(&'-') {
                    let mut probe = it.clone();
                    probe.next(); // consume '-'
                    if let Some(&end) = probe.peek() {
                        // A range like a-z.
                        it = probe;
                        it.next();
                        chars.extend((c..=end).filter(|ch| ch.is_ascii()));
                        continue;
                    }
                }
                chars.push(c);
            }
            chars
        } else {
            panic!("unsupported pattern '{pattern}': only [..]{{m,n}} and \\PC{{m,n}}");
        };
        assert!(!alphabet.is_empty(), "empty alphabet in '{pattern}'");
        (alphabet, lo, hi)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// The `prop::` namespace (`prop::collection::vec` et al).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::Rng;

        /// A length specification: fixed or a range.
        pub trait SizeRange {
            /// Draw a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<S::Value>` with a sampled length.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vector strategy from an element strategy and a size spec.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything the repo's property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Assert inside a property (plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Veto this case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(100).max(1000),
                    "prop_assume rejected too many cases in {}",
                    stringify!($name),
                );
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_flat_map(
            (n, items) in (2u32..30).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..n, 0..50))
            }),
        ) {
            prop_assert!(n >= 2);
            for &x in &items {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn string_patterns(s in "[a-z ]{0,40}", t in "\\PC{0,20}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn config_cases_respected() {
        let c = ProptestConfig::with_cases(3);
        assert_eq!(c.cases, 3);
    }
}
