//! Offline stand-in for the parts of `rand` 0.8 used by this workspace.
//!
//! The core generator is xoshiro256++ seeded through SplitMix64. Streams
//! are deterministic and stable within this repository but are **not**
//! identical to the upstream crate's ChaCha12-based `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs from any seed, so no check needed.
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`] (the upstream small generator is also xoshiro).
    pub type SmallRng = StdRng;
}

/// Types samplable by [`Rng::gen`] (upstream: the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-over-interval sampler. A single blanket
/// [`SampleRange`] impl hangs off this (mirroring upstream), which is what
/// lets type inference flow through `x + rng.gen_range(-1.0..1.0)`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]`. Panics when empty.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection of
/// the biased zone (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u32..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(0usize..=4);
            assert!(z <= 4);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
