//! Offline stand-in for `parking_lot`: the same no-`Result` locking API,
//! implemented over `std::sync`. Poisoning is deliberately transparent —
//! a panic while holding the lock does not poison it for later users,
//! matching parking_lot semantics.

use std::sync;

/// A mutex whose `lock` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock unusable after panic");
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
