//! Offline stand-in for `criterion`: wall-clock measurement with
//! median/mean reporting. No statistical analysis, no HTML reports — just
//! honest timings so relative comparisons (e.g. "no-op sink costs
//! nothing") remain meaningful.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (defeats constant folding of benchmark inputs).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, reported as bytes/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples of auto-scaled batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and pick a batch size targeting ~5ms per sample.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{name:<50} median {median:>12?}   mean {mean:>12?}   ({} samples)",
        samples.len()
    );
    if let Some(Throughput::Bytes(b)) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("   {:.1} MiB/s", b as f64 / secs / (1 << 20) as f64));
        }
    }
    println!("{line}");
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples, self.throughput);
        self
    }

    /// Finish the group (marker only; all reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Configure from CLI args (accepted and ignored; present so
    /// `cargo bench -- <filter>` does not fail).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&id, &mut b.samples, None);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Mark the run complete.
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion { sample_size: 3 };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 3, "benchmark body never ran");
    }

    #[test]
    fn groups_honor_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Bytes(1024));
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
