//! Offline stand-in for `bytes`: `Bytes`/`BytesMut` with the
//! little-endian cursor accessors used by the persistence layer.

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read `len` bytes out as an owned [`Bytes`]. Panics if short.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Advance the cursor by `cnt` bytes. Panics if short.
    fn advance(&mut self, cnt: usize);
}

/// Write-side byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Buffer over a static byte string (copied; this stub does not do
    /// zero-copy sharing).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// The unread portion as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    /// Read a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }
    /// Read a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }
    /// Read a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }
    /// Read a little-endian `f32`.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }
    /// Read a little-endian `f64`.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes { data: self.take(len).to_vec(), pos: 0 }
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.remaining() >= cnt, "buffer underflow");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 4);
        assert_eq!(&r.copy_to_bytes(4)[..], b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
