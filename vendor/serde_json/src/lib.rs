//! Offline stand-in for `serde_json`: a self-contained JSON value type,
//! the `json!` constructor macro, a serializer (compact and pretty), and
//! a strict recursive-descent parser. No derive support — callers convert
//! their types to/from [`Value`] explicitly.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map (sorted keys, like upstream's default `Map`).
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: integer or double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A double-precision float.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Number::Float(_) => write!(f, "null"), // non-finite has no JSON form
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric value as `u64` if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// Borrow as bool if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the array if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object map if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Index into an object by key (`Value::Null` when absent / not an
    /// object) — mirrors upstream's `value["key"]` panics with a softer
    /// `get` instead.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Support for the `json!` macro: convert by reference (clone-then-convert)
/// so interpolated struct fields are not moved out of.
#[doc(hidden)]
pub fn __json_expr<T: Clone + Into<Value>>(v: &T) -> Value {
    v.clone().into()
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => {
            ("\n".to_string(), " ".repeat(w * level), " ".repeat(w * (level + 1)))
        }
        None => (String::new(), String::new(), String::new()),
    };
    let colon = if indent.is_some() { ": " } else { ":" };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(colon);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's payloads; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// The `json!` constructor: a tt-muncher in the style of the upstream
// macro, covering nested objects/arrays, interpolated expressions, and
// trailing commas.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Arrays: done.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Arrays: next element is a nested structure or literal.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($obj)*})] $($rest)*)
    };
    // Arrays: expression followed by comma or end.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($last)])
    };

    // Objects: insert the completed (key, value) entry, continue.
    (@object $map:ident () () ()) => {};
    (@object $map:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $map.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $map () ($($rest)*) ($($rest)*));
    };
    (@object $map:ident [$($key:tt)+] ($value:expr)) => {
        $map.insert(($($key)+).into(), $value);
    };
    // Objects: parse the value for the current key.
    (@object $map:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!(null)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!(true)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!(false)) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!([$($arr)*])) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!({$($obj)*})) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!($value)) , $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json!($value)));
    };
    // Objects: accumulate key tokens until the colon.
    (@object $map:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $map:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

/// Construct a [`Value`] from JSON-like syntax with interpolation.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@object map () ($($tt)+) ($($tt)+));
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        // Borrow like upstream's `to_value(&$other)` so interpolating a
        // field does not move out of it.
        $crate::__json_expr(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_documents() {
        let n = 3u64;
        let v = json!({
            "name": "cora",
            "ok": true,
            "none": null,
            "count": n,
            "nested": { "pi": 3.25, "list": [1, 2, { "deep": "yes" }] },
            "rows": vec![json!(1), json!("two")],
        });
        assert_eq!(v["name"].as_str(), Some("cora"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["nested"]["pi"].as_f64(), Some(3.25));
        assert_eq!(v["nested"]["list"][2]["deep"].as_str(), Some("yes"));
        assert_eq!(v["rows"][1].as_str(), Some("two"));
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "s": "line\n\"quoted\"",
            "i": -12,
            "u": 18_446_744_073_709_551_615u64,
            "f": 0.5,
            "a": [true, false, null],
        });
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 trailing").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parses_realistic_payload() {
        let payload = r#"{
            "choices": [{"message": {"role": "assistant", "content": "Category: ['Theory']"}}],
            "usage": {"prompt_tokens": 120, "completion_tokens": 7}
        }"#;
        let v = from_str(payload).unwrap();
        assert_eq!(
            v["choices"][0]["message"]["content"].as_str(),
            Some("Category: ['Theory']")
        );
        assert_eq!(v["usage"]["prompt_tokens"].as_u64(), Some(120));
    }
}
