//! Streaming classification: queries arrive one at a time (the dynamic-
//! node scenario from the paper's introduction), and the online classifier
//! applies query boosting on the fly — deferring weakly-supported arrivals
//! in a bounded buffer until pseudo-labels accumulate around them.
//!
//! ```text
//! cargo run --release --example online_stream
//! ```

use mqo_core::boosting::BoostConfig;
use mqo_core::predictor::KhopRandom;
use mqo_core::stream::{OnlineClassifier, OnlineConfig};
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = dataset(DatasetId::Cora, None, 17);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 400 },
        &mut StdRng::seed_from_u64(6),
    )
    .expect("split");
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let exec = Executor::new(tag, &llm, 4, 42);
    let predictor = KhopRandom::new(2, tag.num_nodes());

    // --- Arm 1: classify each arrival immediately. -----------------------
    let labels = LabelStore::from_split(tag, &split);
    let immediate = exec.run_all(&predictor, &labels, split.queries(), |_| false).expect("run");

    // --- Arm 2: online boosting with a 64-query deferral buffer. --------
    let mut online = OnlineClassifier::new(
        &exec,
        &predictor,
        LabelStore::from_split(tag, &split),
        OnlineConfig { boost: BoostConfig { gamma1: 3, gamma2: 2 }, max_pending: 64 },
    );
    let mut records = Vec::new();
    let mut max_buffered = 0;
    for &v in split.queries() {
        records.extend(online.submit(v).expect("submit"));
        max_buffered = max_buffered.max(online.pending());
    }
    records.extend(online.flush().expect("flush"));
    let online_acc = records.iter().filter(|r| r.correct).count() as f64 / records.len() as f64;
    let pseudo_uses: usize = records.iter().map(|r| r.pseudo_neighbors).sum();

    println!("stream of {} arrivals on {}:", split.queries().len(), tag.name());
    println!("  immediate execution : accuracy {:.1}%", immediate.accuracy() * 100.0);
    println!(
        "  online boosting     : accuracy {:.1}%  (peak buffer {max_buffered}, \
         {pseudo_uses} pseudo-label uses)",
        online_acc * 100.0
    );
    println!("\nDeferring weakly-supported arrivals lets their neighborhoods fill with");
    println!("pseudo-labels first — boosting without ever seeing the full query set.");
}
