//! The paradigm comparison from the paper's introduction (Fig. 1): a
//! trained GNN (GCN / GraphSAGE over BoW features) versus training-free
//! "LLMs as predictors", on the same split of a synthetic Cora — including
//! the dynamic-node scenario GNNs struggle with.
//!
//! ```text
//! cargo run --release --example gnn_vs_llm
//! ```

use mqo_core::predictor::KhopRandom;
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_encoder::{HashedEncoder, TextEncoder};
use mqo_gnn::{matrix::Matrix, GnnConfig, GnnKind, GnnModel};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = dataset(DatasetId::Cora, None, 21);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 300 },
        &mut StdRng::seed_from_u64(4),
    )
    .expect("split");

    // --- GNN side: encode all node texts, train semi-supervised. --------
    let dim = 128;
    let enc = HashedEncoder::new(dim);
    let mut x = Matrix::zeros(tag.num_nodes(), dim);
    for v in tag.node_ids() {
        x.row_mut(v.index()).copy_from_slice(&enc.encode(&tag.text(v).full()));
    }
    let labeled: Vec<(usize, usize)> =
        split.labeled().iter().map(|&v| (v.index(), tag.label(v).index())).collect();
    let score = |kind: GnnKind| -> f64 {
        let mut gnn = GnnModel::new(
            tag.graph(),
            dim,
            tag.num_classes(),
            GnnConfig { kind, epochs: 120, ..Default::default() },
        );
        gnn.fit(&x, &labeled);
        let preds = gnn.predict_all(&x);
        let hit = split
            .queries()
            .iter()
            .filter(|&&v| preds[v.index()] == tag.label(v).index())
            .count();
        hit as f64 / split.queries().len() as f64
    };
    let gcn_acc = score(GnnKind::Gcn);
    let sage_acc = score(GnnKind::SageMean);

    // --- LLM side: no training, per-query prompts. -----------------------
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let exec = Executor::new(tag, &llm, 4, 42);
    let labels = LabelStore::from_split(tag, &split);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let llm_out = exec.run_all(&predictor, &labels, split.queries(), |_| false).expect("run");

    println!("paradigm comparison on {} ({} queries):", tag.name(), split.queries().len());
    println!("  GCN (trained)            : {:.1}%", gcn_acc * 100.0);
    println!("  GraphSAGE-mean (trained) : {:.1}%", sage_acc * 100.0);
    println!("  LLM 1-hop (no training)  : {:.1}%", llm_out.accuracy() * 100.0);
    println!("\nGNNs trade training cost (full graph in memory, labels, no transfer)");
    println!("for accuracy on static splits; the LLM paradigm needs no training and");
    println!("handles nodes it has never seen — which is where MQO matters: every");
    println!("query costs tokens, so pruning and boosting decide the economics.");

    // --- The dynamic-node argument: a node that arrives after training. --
    // The GNN would need feature recomputation + (often) retraining; the
    // LLM paradigm just issues one more prompt.
    let newcomer = split.queries()[0];
    let mut rng = StdRng::seed_from_u64(99);
    let one = exec.run_one(&predictor, &labels, newcomer, &mut rng, false).expect("query");
    println!(
        "\ndynamic node {}: classified '{}' in a single query ({} prompt tokens), correct = {}",
        newcomer,
        tag.class_name(one.predicted),
        one.prompt_tokens,
        one.correct
    );
}
