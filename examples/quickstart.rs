//! Quickstart: classify 100 nodes of a synthetic Cora with the
//! "LLMs as predictors" paradigm, then re-run with the paper's two MQO
//! strategies and compare accuracy and token cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mqo_core::boosting::BoostConfig;
use mqo_core::joint::run_joint;
use mqo_core::predictor::KhopRandom;
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
use mqo_token::GPT_35_TURBO_0125;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A text-attributed graph. (With a real OpenAI client this would be
    //    your own TAG; here it is the calibrated synthetic Cora.)
    let bundle = dataset(DatasetId::Cora, None, 7);
    let tag = &bundle.tag;
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes",
        tag.name(),
        tag.num_nodes(),
        tag.num_edges(),
        tag.num_classes()
    );

    // 2. A labeled split: 20 labels per class, 100 queries.
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 100 },
        &mut StdRng::seed_from_u64(1),
    )
    .expect("split");

    // 3. An LLM client. `SimLlm` implements the same `LanguageModel` trait
    //    an HTTP client would.
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let exec = Executor::new(tag, &llm, 4, 42);

    // 4. Baseline: 1-hop random neighbor selection for every query.
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let labels = LabelStore::from_split(tag, &split);
    let base = exec.run_all(&predictor, &labels, split.queries(), |_| false).expect("run");
    println!(
        "\nbaseline 1-hop random : accuracy {:.1}%, {} prompt tokens",
        base.accuracy() * 100.0,
        base.prompt_tokens()
    );

    // 5. MQO: token pruning (top 20% most saturated queries lose their
    //    neighbor text) + query boosting (pseudo-labels enrich later
    //    queries). The inadequacy scorer trains a small surrogate MLP and
    //    runs a few calibration queries — real, metered cost.
    let scorer = InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(3), 10, 5)
        .expect("scorer");
    let mut boost_labels = LabelStore::from_split(tag, &split);
    let (optimized, rounds) = run_joint(
        &exec,
        &predictor,
        &mut boost_labels,
        split.queries(),
        &scorer,
        0.2,
        BoostConfig::default(),
    )
    .expect("joint run");
    println!(
        "prune(20%) + boost    : accuracy {:.1}%, {} prompt tokens, {} rounds",
        optimized.accuracy() * 100.0,
        optimized.prompt_tokens(),
        rounds.len()
    );

    // 6. What it costs in dollars at GPT-3.5 prices.
    let totals = llm.meter().totals();
    println!(
        "\nsession: {} requests, {} tokens, ${:.4} at {} prices",
        totals.requests,
        totals.total_tokens(),
        GPT_35_TURBO_0125.cost(totals),
        GPT_35_TURBO_0125.name
    );
}
