//! Budget-constrained query campaign: you have a fixed dollar budget for
//! classifying a batch of nodes; the running-example arithmetic (§V-C)
//! converts it into a pruned fraction τ, and the executor enforces the
//! token ceiling as a hard constraint (Eq. 2).
//!
//! ```text
//! cargo run --release --example budget_campaign
//! ```

use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
use mqo_token::{budget::tau_for_budget, GPT_35_TURBO_0125};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = dataset(DatasetId::Citeseer, None, 11);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 400 },
        &mut StdRng::seed_from_u64(2),
    )
    .expect("split");
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let labels = LabelStore::from_split(tag, &split);
    let predictor = KhopRandom::new(1, tag.num_nodes());

    // --- Step 1: estimate per-query token costs on a 20-query probe. ----
    let probe_exec = Executor::new(tag, &llm, 4, 1);
    let probe: Vec<_> = split.queries().iter().take(20).copied().collect();
    let with_n = probe_exec.run_all(&predictor, &labels, &probe, |_| false).expect("probe");
    let without_n = probe_exec.run_all(&predictor, &labels, &probe, |_| true).expect("probe");
    let tokens_full = with_n.prompt_tokens() as f64 / probe.len() as f64;
    let tokens_neighbor = tokens_full - without_n.prompt_tokens() as f64 / probe.len() as f64;
    println!(
        "probe: full query ≈ {tokens_full:.0} tokens, neighbor text ≈ {tokens_neighbor:.0} tokens"
    );

    // --- Step 2: a dollar budget becomes a token budget becomes τ. ------
    let dollars = 0.06;
    let token_budget = dollars / GPT_35_TURBO_0125.input_per_1k * 1000.0;
    let q = split.queries().len() as u64;
    let tau = tau_for_budget(q, tokens_full, tokens_neighbor, token_budget);
    println!(
        "budget ${dollars:.2} = {token_budget:.0} input tokens for {q} queries → prune τ = {:.0}%",
        tau * 100.0
    );

    // --- Step 3: rank by text inadequacy and execute under a hard cap. --
    llm.meter().reset();
    let exec = Executor::new(tag, &llm, 4, 42).with_budget(token_budget as u64);
    let scorer = InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(3), 10, 5)
        .expect("scorer");
    let plan = PrunePlan::by_inadequacy(&scorer, tag, split.queries(), tau);
    let outcome =
        run_with_pruning(&exec, &predictor, &labels, split.queries(), &plan).expect("run");

    let totals = llm.meter().totals();
    println!(
        "\nexecuted {} queries: accuracy {:.1}%, {} of them kept neighbor text",
        outcome.records.len(),
        outcome.accuracy() * 100.0,
        outcome.queries_with_neighbors()
    );
    let full_cost_estimate = q as f64 * tokens_full;
    println!(
        "spent {} input tokens = ${:.4} (unoptimized estimate: {:.0} tokens = ${:.4})",
        totals.prompt_tokens,
        GPT_35_TURBO_0125.input_cost(totals.prompt_tokens),
        full_cost_estimate,
        GPT_35_TURBO_0125.input_cost(full_cost_estimate as u64)
    );
    assert!(
        (totals.prompt_tokens as f64) < full_cost_estimate,
        "pruning must undercut the unoptimized campaign"
    );
}
