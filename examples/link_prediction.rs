//! Link prediction with both MQO strategies (§VI-J): predict missing
//! citation edges on a synthetic Cora, comparing the five configurations
//! of Table X.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use mqo_core::linkpred::{run_link_task, LinkDataset, LinkStrategy};
use mqo_data::{dataset, DatasetId};
use mqo_llm::{ModelProfile, SimLinkLlm};

fn main() {
    let bundle = dataset(DatasetId::Cora, None, 13);
    let tag = &bundle.tag;
    let data = LinkDataset::build(tag, 200, 200, 3);
    println!(
        "link task on {}: {} test pairs ({} held-out edges, {} non-edges)",
        tag.name(),
        data.pairs.len(),
        data.truth.iter().filter(|&&t| t).count(),
        data.truth.iter().filter(|&&t| !t).count(),
    );

    let gamma1 = data.support_quantile(0.75);
    let strategies = [
        ("Vanilla (pair text only)", LinkStrategy::Vanilla),
        ("Base (+ neighbor links)", LinkStrategy::Base),
        ("w/ query boosting", LinkStrategy::Boost { gamma1 }),
        ("w/ token pruning (20%)", LinkStrategy::Prune { tau: 0.2 }),
        ("w/ both", LinkStrategy::Both { tau: 0.2, gamma1 }),
    ];
    println!(
        "\n{:<26} {:>9} {:>12} {:>14}",
        "strategy", "accuracy", "with links", "prompt tokens"
    );
    for (name, strategy) in strategies {
        let llm =
            SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35()).with_threshold(1.05);
        let out = run_link_task(tag, &llm, &data, strategy, 4, 9).expect("link run");
        println!(
            "{:<26} {:>8.1}% {:>12} {:>14}",
            name,
            out.accuracy() * 100.0,
            out.with_links,
            out.prompt_tokens
        );
    }
    println!("\nBoosting adds discovered links to later prompts (triadic closure);");
    println!("pruning drops neighbor links for the pairs the surrogate is already sure about.");
}
