//! End-to-end integration tests spanning all crates: dataset generation →
//! split → surrogate → calibration → execution engine → strategies.

use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::predictor::{KhopRandom, Predictor, Sns, ZeroShot};
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    bundle: mqo_data::DatasetBundle,
    split: LabeledSplit,
    llm: SimLlm,
}

fn world(id: DatasetId, scale: f64, queries: usize, seed: u64) -> World {
    let bundle = dataset(id, Some(scale), seed);
    let split = LabeledSplit::generate(
        &bundle.tag,
        SplitConfig::PerClass { per_class: 20, num_queries: queries },
        &mut StdRng::seed_from_u64(seed),
    )
    .unwrap();
    let llm = SimLlm::new(
        bundle.lexicon.clone(),
        bundle.tag.class_names().to_vec(),
        ModelProfile::gpt35(),
    );
    World { bundle, split, llm }
}

#[test]
fn full_node_classification_pipeline_runs_and_scores() {
    let w = world(DatasetId::Cora, 0.4, 200, 1);
    let tag = &w.bundle.tag;
    let exec = Executor::new(tag, &w.llm, 4, 7);
    let labels = LabelStore::from_split(tag, &w.split);

    let methods: Vec<Box<dyn Predictor>> = vec![
        Box::new(ZeroShot),
        Box::new(KhopRandom::new(1, tag.num_nodes())),
        Box::new(KhopRandom::new(2, tag.num_nodes())),
        Box::new(Sns::fit(tag)),
    ];
    let mut accs = Vec::new();
    for m in &methods {
        let out = exec.run_all(m.as_ref(), &labels, w.split.queries(), |_| false).unwrap();
        assert_eq!(out.records.len(), 200);
        accs.push(out.accuracy());
    }
    // Every method must land well above chance (1/7) and below perfection.
    for (m, &acc) in methods.iter().zip(&accs) {
        assert!((0.3..0.99).contains(&acc), "{}: accuracy {acc}", m.name());
    }
    // Neighbor methods beat zero-shot on homophilous Cora.
    assert!(accs[1] > accs[0], "1-hop {} should beat zero-shot {}", accs[1], accs[0]);
}

#[test]
fn token_pruning_saves_tokens_without_collapsing_accuracy() {
    let w = world(DatasetId::Cora, 0.4, 200, 2);
    let tag = &w.bundle.tag;
    let exec = Executor::new(tag, &w.llm, 4, 7);
    let labels = LabelStore::from_split(tag, &w.split);
    let scorer =
        InadequacyScorer::build(&exec, &w.split, &SurrogateConfig::small(1), 10, 3).unwrap();
    let predictor = KhopRandom::new(1, tag.num_nodes());

    let base = exec.run_all(&predictor, &labels, w.split.queries(), |_| false).unwrap();
    let plan = PrunePlan::by_inadequacy(&scorer, tag, w.split.queries(), 0.2);
    let pruned =
        run_with_pruning(&exec, &predictor, &labels, w.split.queries(), &plan).unwrap();

    assert!(pruned.prompt_tokens() < base.prompt_tokens(), "pruning must cut tokens");
    assert!(
        pruned.accuracy() >= base.accuracy() - 0.05,
        "pruning collapsed accuracy: {} -> {}",
        base.accuracy(),
        pruned.accuracy()
    );
    // Exactly the planned 20% are plan-pruned; a few extra records may be
    // flagged `pruned` because isolated nodes have no neighbors anyway.
    assert_eq!(pruned.records.iter().filter(|r| plan.is_pruned(r.node)).count(), 40);
    assert!(pruned.records.iter().filter(|r| r.pruned).count() >= 40);
}

#[test]
fn ranked_pruning_beats_random_pruning_at_high_tau() {
    let w = world(DatasetId::Cora, 0.4, 250, 3);
    let tag = &w.bundle.tag;
    let exec = Executor::new(tag, &w.llm, 4, 7);
    let labels = LabelStore::from_split(tag, &w.split);
    let scorer =
        InadequacyScorer::build(&exec, &w.split, &SurrogateConfig::small(1), 10, 3).unwrap();
    let predictor = KhopRandom::new(1, tag.num_nodes());

    // At 60% pruning the ranking matters most (Fig. 7's midrange); average
    // the random baseline over a few seeds to cut variance.
    let tau = 0.6;
    let ranked_plan = PrunePlan::by_inadequacy(&scorer, tag, w.split.queries(), tau);
    let ranked = run_with_pruning(&exec, &predictor, &labels, w.split.queries(), &ranked_plan)
        .unwrap()
        .accuracy();
    let mut random_acc = 0.0;
    for seed in 0..3 {
        let plan = PrunePlan::random(w.split.queries(), tau, seed);
        random_acc += run_with_pruning(&exec, &predictor, &labels, w.split.queries(), &plan)
            .unwrap()
            .accuracy();
    }
    random_acc /= 3.0;
    assert!(
        ranked >= random_acc - 0.01,
        "ranked pruning ({ranked:.3}) fell below random ({random_acc:.3})"
    );
}

#[test]
fn query_boosting_executes_all_and_uses_pseudo_labels() {
    let w = world(DatasetId::Cora, 0.4, 200, 4);
    let tag = &w.bundle.tag;
    let exec = Executor::new(tag, &w.llm, 4, 7);
    let mut labels = LabelStore::from_split(tag, &w.split);
    let predictor = KhopRandom::new(2, tag.num_nodes());
    let (out, traces) = run_with_boosting(
        &exec,
        &predictor,
        &mut labels,
        w.split.queries(),
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();
    assert_eq!(out.records.len(), 200);
    assert!(traces.len() >= 2, "boosting should take multiple rounds");
    assert!(out.pseudo_label_uses() > 0, "no pseudo-label ever reached a prompt");
    assert_eq!(labels.num_pseudo(), 200, "every query becomes a pseudo-label");
}

#[test]
fn token_accounting_is_conserved_across_the_pipeline() {
    let w = world(DatasetId::Citeseer, 0.4, 100, 5);
    let tag = &w.bundle.tag;
    let exec = Executor::new(tag, &w.llm, 4, 7);
    let labels = LabelStore::from_split(tag, &w.split);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    w.llm.meter().reset();
    let out = exec.run_all(&predictor, &labels, w.split.queries(), |_| false).unwrap();
    let meter = w.llm.meter().totals();
    // Every record's prompt tokens sum exactly to the meter.
    assert_eq!(out.prompt_tokens(), meter.prompt_tokens);
    assert_eq!(out.records.len() as u64, meter.requests);
}

#[test]
fn deterministic_end_to_end_reruns() {
    let run = || {
        let w = world(DatasetId::Cora, 0.3, 80, 6);
        let tag = &w.bundle.tag;
        let exec = Executor::new(tag, &w.llm, 4, 7);
        let labels = LabelStore::from_split(tag, &w.split);
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let out = exec.run_all(&predictor, &labels, w.split.queries(), |_| false).unwrap();
        (out.accuracy(), out.prompt_tokens())
    };
    assert_eq!(run(), run(), "pipeline must be bit-deterministic per seed");
}
