//! Integration tests for the paper's headline claims on the calibrated
//! synthetic datasets (small scales for test speed; the full-size numbers
//! come from the bench binaries).

use mqo_core::analysis::info_gain_experiment;
use mqo_core::boosting::{pseudo_label_utilization, run_with_boosting, BoostConfig};
use mqo_core::joint::run_joint;
use mqo_core::linkpred::{run_link_task, LinkDataset, LinkStrategy};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::tuned::{instructglm_backbones, tuned_profile, TunedPredictor};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLinkLlm, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(
    id: DatasetId,
    scale: f64,
    queries: usize,
    profile: ModelProfile,
    seed: u64,
) -> (mqo_data::DatasetBundle, LabeledSplit, SimLlm) {
    let bundle = dataset(id, Some(scale), seed);
    let split = LabeledSplit::generate(
        &bundle.tag,
        SplitConfig::PerClass { per_class: 20, num_queries: queries },
        &mut StdRng::seed_from_u64(seed ^ 1),
    )
    .unwrap();
    let llm = SimLlm::new(bundle.lexicon.clone(), bundle.tag.class_names().to_vec(), profile);
    (bundle, split, llm)
}

/// Fig. 3's claim: queries whose neighbor text contains labels gain more
/// from neighbor text than label-free queries.
#[test]
fn labeled_neighbor_queries_gain_more() {
    let (bundle, split, llm) = setup(DatasetId::Cora, 0.5, 300, ModelProfile::gpt35(), 11);
    let tag = &bundle.tag;
    let exec = Executor::new(tag, &llm, 4, 2);
    let labels = LabelStore::from_split(tag, &split);
    let khop = KhopRandom::new(1, tag.num_nodes());
    let report = info_gain_experiment(&exec, &khop, &labels, split.queries()).unwrap();
    assert!(report.with_labels > 10 && report.without_labels > 10);
    assert!(
        report.gain_with_labels > report.gain_without_labels,
        "labels did not raise the IG proxy: {report:?}"
    );
}

/// Table VII's claim: query boosting improves over the plain run.
#[test]
fn boosting_improves_two_hop_on_cora() {
    let (bundle, split, llm) = setup(DatasetId::Cora, 0.5, 300, ModelProfile::gpt35(), 12);
    let tag = &bundle.tag;
    let exec = Executor::new(tag, &llm, 4, 2);
    let predictor = KhopRandom::new(2, tag.num_nodes());
    let labels = LabelStore::from_split(tag, &split);
    let base = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
    let mut bl = LabelStore::from_split(tag, &split);
    let (boosted, _) = run_with_boosting(
        &exec,
        &predictor,
        &mut bl,
        split.queries(),
        BoostConfig { gamma1: 3, gamma2: 2 },
        &PrunePlan::default(),
    )
    .unwrap();
    assert!(
        boosted.accuracy() >= base.accuracy() - 0.01,
        "boosting regressed: {:.3} -> {:.3}",
        base.accuracy(),
        boosted.accuracy()
    );
}

/// Fig. 8's claim: scheduling raises pseudo-label utilization on real
/// (heterogeneous) graph structure — strongly in the 2-hop / M=10 setting.
#[test]
fn scheduling_raises_utilization_on_synthetic_cora() {
    let (bundle, split, _) = setup(DatasetId::Cora, 0.5, 300, ModelProfile::gpt35(), 13);
    let tag = &bundle.tag;
    let labels = LabelStore::from_split(tag, &split);
    let mut sched = 0u64;
    let mut unsched = 0u64;
    for seed in 0..3 {
        sched += pseudo_label_utilization(tag, &labels, split.queries(), 2, 10, 50, true, seed);
        unsched +=
            pseudo_label_utilization(tag, &labels, split.queries(), 2, 10, 50, false, seed);
    }
    assert!(unsched > 0, "no utilization at all");
    // At this reduced scale the lift is modest (the paper-scale curves
    // live in the fig8_scheduling bench binary); require a clear non-loss.
    assert!(
        sched as f64 >= unsched as f64 * 1.05,
        "scheduling did not raise utilization: {sched} vs {unsched}"
    );
}

/// Table VIII's claim: the joint strategy cuts neighbor-equipped queries
/// by ~τ while keeping accuracy within noise of the baseline.
#[test]
fn joint_strategy_cuts_cost_and_keeps_accuracy() {
    let (bundle, split, llm) = setup(DatasetId::Citeseer, 0.5, 300, ModelProfile::gpt35(), 14);
    let tag = &bundle.tag;
    let exec = Executor::new(tag, &llm, 4, 2);
    let scorer =
        InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(1), 10, 5).unwrap();
    let predictor = KhopRandom::new(2, tag.num_nodes());
    let labels = LabelStore::from_split(tag, &split);
    let base = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
    let mut jl = LabelStore::from_split(tag, &split);
    let (joint, _) = run_joint(
        &exec,
        &predictor,
        &mut jl,
        split.queries(),
        &scorer,
        0.2,
        BoostConfig::default(),
    )
    .unwrap();
    assert!(joint.queries_with_neighbors() <= base.queries_with_neighbors() - 40);
    assert!(joint.prompt_tokens() < base.prompt_tokens());
    assert!(
        joint.accuracy() >= base.accuracy() - 0.04,
        "joint collapsed accuracy: {:.3} -> {:.3}",
        base.accuracy(),
        joint.accuracy()
    );
}

/// Table IX's claim: prune/boost compose with instruction-tuned backbones,
/// and inadequacy-ranked pruning beats random pruning there too.
#[test]
fn strategies_compose_with_tuned_backbones() {
    let (bundle, split, _) = setup(DatasetId::Cora, 0.5, 250, ModelProfile::gpt35(), 15);
    let tag = &bundle.tag;
    let backbone = instructglm_backbones()[1]; // 2-hop, w/ raw, no path
    let llm = SimLlm::new(
        bundle.lexicon.clone(),
        tag.class_names().to_vec(),
        tuned_profile(&backbone),
    );
    let exec = Executor::new(tag, &llm, 4, 2);
    let predictor = TunedPredictor::new(backbone, tag.num_nodes());
    let scorer =
        InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(1), 10, 5).unwrap();
    let labels = LabelStore::from_split(tag, &split);

    let base = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
    assert!(base.accuracy() > 0.6, "tuned backbone too weak: {}", base.accuracy());

    let ours = mqo_core::pruning::run_with_pruning(
        &exec,
        &predictor,
        &labels,
        split.queries(),
        &PrunePlan::by_inadequacy(&scorer, tag, split.queries(), 0.3),
    )
    .unwrap();
    let mut rnd_acc = 0.0;
    for seed in 0..3 {
        rnd_acc += mqo_core::pruning::run_with_pruning(
            &exec,
            &predictor,
            &labels,
            split.queries(),
            &PrunePlan::random(split.queries(), 0.3, seed),
        )
        .unwrap()
        .accuracy();
    }
    rnd_acc /= 3.0;
    assert!(
        ours.accuracy() >= rnd_acc - 0.01,
        "ranked pruning ({:.3}) fell below random ({:.3}) on tuned backbone",
        ours.accuracy(),
        rnd_acc
    );
}

/// Table X's claim: boosting helps link prediction; pruning keeps accuracy.
#[test]
fn link_prediction_strategies_hold_shape() {
    let bundle = dataset(DatasetId::Citeseer, Some(0.5), 16);
    let tag = &bundle.tag;
    let data = LinkDataset::build(tag, 150, 150, 2);
    let run = |s: LinkStrategy| {
        let llm =
            SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35()).with_threshold(1.05);
        run_link_task(tag, &llm, &data, s, 4, 3).unwrap()
    };
    let gamma1 = data.support_quantile(0.75);
    let base = run(LinkStrategy::Base);
    let boost = run(LinkStrategy::Boost { gamma1 });
    let prune = run(LinkStrategy::Prune { tau: 0.2 });
    assert!(base.accuracy() > 0.7, "base {}", base.accuracy());
    assert!(
        boost.accuracy() >= base.accuracy() - 0.02,
        "boost regressed: {:.3} vs {:.3}",
        boost.accuracy(),
        base.accuracy()
    );
    assert!(prune.with_links < base.with_links);
    assert!(
        prune.accuracy() >= base.accuracy() - 0.06,
        "prune collapsed: {:.3} vs {:.3}",
        prune.accuracy(),
        base.accuracy()
    );
}

/// Footnote 1: different models disagree on which nodes are saturated.
#[test]
fn models_have_different_saturation_sets() {
    let (bundle, split, _) = setup(DatasetId::Cora, 0.4, 200, ModelProfile::gpt35(), 17);
    let tag = &bundle.tag;
    let labels = LabelStore::from_split(tag, &split);
    let correct_set = |profile: ModelProfile| -> Vec<bool> {
        let llm = SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), profile);
        let exec = Executor::new(tag, &llm, 4, 2);
        exec.run_all(&mqo_core::ZeroShot, &labels, split.queries(), |_| false)
            .unwrap()
            .records
            .iter()
            .map(|r| r.correct)
            .collect()
    };
    let a = correct_set(ModelProfile::gpt35());
    let b = correct_set(ModelProfile::gpt4o_mini());
    let disagreements = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert!(disagreements > 10, "saturation sets identical across models");
}
