//! Sharded scale-out end-to-end tests: partitioner invariants
//! (determinism, exact edge accounting, boundary symmetry), router
//! degradation against *real* shard workers (eject on death mid-burst,
//! survivors answer, probe re-admits a restarted worker), and the
//! acceptance path for cross-shard boosting — a routed query whose
//! γ₁/γ₂ readiness is satisfied *only* by pseudo-labels that traveled
//! worker → router → worker over the label exchange.

use mqo_core::journal::record_from_json;
use mqo_core::QueryRecord;
use mqo_data::{dataset, DatasetBundle, DatasetId};
use mqo_graph::NodeId;
use mqo_obs::{http_get, http_post};
use mqo_serve::{Engine, LabelExchanger, ServeConfig, Server, ServerOptions};
use mqo_shard::{extract_shard, partition, PartitionStrategy, Router, RouterConfig, ShardMap};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn full_bundle() -> DatasetBundle {
    dataset(DatasetId::Cora, Some(0.3), 42)
}

fn worker_cfg() -> ServeConfig {
    ServeConfig { split_queries: 60, ..ServeConfig::default() }
}

/// Extract shard `shard` of `full` under `map` and serve it on `addr`
/// (`127.0.0.1:0` picks a port; a concrete address restarts a worker in
/// place for the re-admission test).
fn start_worker(
    full: &DatasetBundle,
    map: &ShardMap,
    shard: u32,
    addr: &str,
    cfg: ServeConfig,
) -> std::io::Result<(Arc<Engine>, Server)> {
    let sb = extract_shard(full, map, shard);
    let engine =
        Engine::new_sharded(sb, map.clone(), cfg).map(Arc::new).expect("sharded engine");
    let options = ServerOptions {
        addr: addr.into(),
        workers: 2,
        queue_capacity: 16,
        ..ServerOptions::default()
    };
    let server = Server::start(Arc::clone(&engine), options)?;
    Ok((engine, server))
}

fn classify(addr: SocketAddr, body: &str) -> (String, serde_json::Value) {
    let (status, text) = http_post(addr, "/v1/classify", body).expect("classify round-trip");
    let value = serde_json::from_str(text.trim()).expect("classify response is JSON");
    (status, value)
}

fn records_of(response: &serde_json::Value) -> Vec<QueryRecord> {
    response
        .get("records")
        .and_then(|r| r.as_array())
        .expect("response has records")
        .iter()
        .map(|v| record_from_json(v).expect("record parses"))
        .collect()
}

fn nodes_json(nodes: &[u32]) -> String {
    let list: Vec<String> = nodes.iter().map(u32::to_string).collect();
    format!("{{\"nodes\": [{}]}}", list.join(", "))
}

/// Same graph + same seed must yield byte-identical shard maps (the
/// partitioner runs once at deploy time; every later run must agree on
/// ownership), and the bytes must round-trip.
#[test]
fn partition_is_deterministic_per_seed_and_roundtrips() {
    let full = full_bundle();
    let csr = full.tag.graph();
    for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::Ring] {
        let a = partition(csr, 4, 11, strategy);
        let b = partition(csr, 4, 11, strategy);
        assert_eq!(a, b, "{strategy:?} partition must be deterministic");
        assert_eq!(
            &a.to_bytes()[..],
            &b.to_bytes()[..],
            "{strategy:?} serialization must be byte-identical"
        );
        let back = ShardMap::from_bytes(a.to_bytes()).expect("shard map round-trips");
        assert_eq!(a, back);
        for v in (0..csr.num_nodes() as u32).step_by(97) {
            assert_eq!(a.owner(v), back.owner(v), "ownership survives the round-trip");
        }
    }
}

/// Every node is owned exactly once and every edge lands in exactly one
/// accounting bucket: interior to one shard, or cut (counted once in
/// `total_cut`, incident to both endpoint shards' `cut_edges`).
#[test]
fn every_edge_is_accounted_exactly_once() {
    let full = full_bundle();
    let csr = full.tag.graph();
    for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::Ring] {
        let map = partition(csr, 3, 5, strategy);
        let mut owned = 0u64;
        let mut internal = 0u64;
        let mut cut_incidence = 0u64;
        for s in 0..map.num_shards() {
            let st = map.stats(s);
            owned += u64::from(st.owned_nodes);
            internal += st.internal_edges;
            cut_incidence += st.cut_edges;
        }
        assert_eq!(owned, full.tag.num_nodes() as u64, "every node owned exactly once");
        assert_eq!(
            internal + map.total_cut(),
            full.tag.num_edges(),
            "{strategy:?}: internal + cut must partition the edge set"
        );
        assert_eq!(
            cut_incidence,
            2 * map.total_cut(),
            "each cut edge is incident to exactly its two endpoint shards"
        );
        // Recount the cut directly from the edge list.
        let direct =
            csr.edges().filter(|(u, v)| map.owner(u.0) != map.owner(v.0)).count() as u64;
        assert_eq!(direct, map.total_cut());
    }
}

/// Boundary lists are symmetric: a cut edge (u, v) puts `u` on its
/// owner's boundary and `v` on *its* owner's boundary — which is what
/// guarantees a pushed pseudo-label always has a halo copy waiting on
/// the receiving shard. And conversely: every listed boundary node
/// really has an off-shard neighbor.
#[test]
fn boundary_lists_are_symmetric_across_cut_edges() {
    let full = full_bundle();
    let csr = full.tag.graph();
    let map = partition(csr, 3, 9, PartitionStrategy::EdgeCut);
    let boundary_sets: Vec<HashSet<u32>> =
        (0..map.num_shards()).map(|s| map.boundary(s).iter().copied().collect()).collect();
    let mut cut_seen = false;
    for (u, v) in csr.edges() {
        let (su, sv) = (map.owner(u.0), map.owner(v.0));
        if su != sv {
            cut_seen = true;
            assert!(
                boundary_sets[su as usize].contains(&u.0),
                "cut edge ({}, {}): {} missing from shard {su}'s boundary",
                u.0,
                v.0,
                u.0
            );
            assert!(
                boundary_sets[sv as usize].contains(&v.0),
                "cut edge ({}, {}): {} missing from shard {sv}'s boundary",
                u.0,
                v.0,
                v.0
            );
        }
    }
    assert!(cut_seen, "a 3-way partition of Cora must cut something");
    for s in 0..map.num_shards() {
        let b = map.boundary(s);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "boundary sorted and duplicate-free");
        for &u in b {
            assert_eq!(map.owner(u), s, "boundary nodes are owned nodes");
            assert!(
                csr.neighbors(NodeId(u)).iter().any(|&v| map.owner(v) != s),
                "boundary node {u} has no off-shard neighbor"
            );
        }
    }
}

/// A worker drain must not wait out the idle-read timeout of parked
/// keep-alive connections (the router keeps one per worker open at all
/// times) — drain half-closes them and finishes promptly.
#[test]
fn drain_is_prompt_with_an_idle_keep_alive_connection() {
    let full = full_bundle();
    let map = partition(full.tag.graph(), 2, 7, PartitionStrategy::EdgeCut);
    let (_e0, s0) = start_worker(&full, &map, 0, "127.0.0.1:0", worker_cfg()).unwrap();
    // Park a persistent connection the way the router does: one request,
    // then leave it idle.
    let mut client = mqo_obs::httpd::HttpClient::connect(s0.addr()).unwrap();
    let (status, _) = client.get("/v1/healthz").unwrap();
    assert!(status.contains("200"), "warm-up over the kept-alive connection: {status}");
    let started = Instant::now();
    s0.drain();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "drain stalled {:?} behind an idle keep-alive connection",
        started.elapsed()
    );
}

/// Real-worker degradation: a 2-shard cluster answers mixed batches;
/// killing one worker mid-burst ejects it (requests needing it fail
/// fast, survivors answer, healthz reports degraded); restarting it on
/// the same port lets the probe re-admit it and full service resumes.
#[test]
fn dead_worker_ejects_survivors_serve_and_restart_readmits() {
    let full = full_bundle();
    let map = partition(full.tag.graph(), 2, 7, PartitionStrategy::EdgeCut);
    let (_e0, s0) = start_worker(&full, &map, 0, "127.0.0.1:0", worker_cfg()).unwrap();
    let (_e1, s1) = start_worker(&full, &map, 1, "127.0.0.1:0", worker_cfg()).unwrap();
    let mut rcfg = RouterConfig::new(vec![s0.addr(), s1.addr()]);
    rcfg.eject_after = 2;
    rcfg.probe_interval = Duration::from_millis(25);
    let router = Router::start("127.0.0.1:0", map.clone(), rcfg).unwrap();
    let addr = router.addr();

    // Shard workers identify themselves.
    let (status, health) = http_get(s0.addr(), "/v1/healthz").unwrap();
    assert!(status.contains("200") && health.contains("\"shard\""), "worker healthz: {health}");

    // A batch straddling the ownership split reassembles in request order.
    let (lo, _) = map.owned_range(0).unwrap();
    let (hi, _) = map.owned_range(1).unwrap();
    let mixed = vec![hi, lo, hi + 1, lo + 1];
    let (status, response) = classify(addr, &nodes_json(&mixed));
    assert!(status.contains("200"), "mixed batch: {status}");
    let order: Vec<u32> = records_of(&response).iter().map(|r| r.node.0).collect();
    assert_eq!(order, mixed, "records come back in the caller's order, in global ids");
    assert_eq!(
        response.get("shards").and_then(|s| s.as_array()).map(Vec::len),
        Some(2),
        "the batch consulted both shards"
    );

    // Kill worker 1 while a burst is in flight.
    let w1_addr = s1.addr();
    let burst = {
        let mixed = mixed.clone();
        std::thread::spawn(move || {
            for _ in 0..20 {
                let _ = http_post(addr, "/v1/classify", &nodes_json(&mixed));
            }
        })
    };
    std::thread::sleep(Duration::from_millis(10));
    s1.drain();
    burst.join().unwrap();

    // The failure streak ejects shard 1; requests needing it fail fast.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !router.is_ejected(1) && Instant::now() < deadline {
        let _ = http_post(addr, "/v1/classify", &nodes_json(&[hi]));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(router.is_ejected(1), "consecutive failures must eject the dead shard");
    let (status, body) = http_post(addr, "/v1/classify", &nodes_json(&[hi])).unwrap();
    assert!(status.contains("503"), "ejected shard fails fast: {status} {body}");

    // Survivors answer; the cluster is degraded, not dark.
    let (status, survivor) = classify(addr, &nodes_json(&[lo]));
    assert!(
        status.contains("200"),
        "survivor shard must keep answering: {status} {}",
        serde_json::to_string(&survivor).unwrap_or_default()
    );
    let (status, health) = http_get(addr, "/v1/healthz").unwrap();
    assert!(status.contains("200"), "degraded is still 200: {status}");
    assert!(health.contains("\"degraded\""), "healthz: {health}");

    // Restart worker 1 on its old port; the probe re-admits it.
    let restarted = loop {
        match start_worker(&full, &map, 1, &w1_addr.to_string(), worker_cfg()) {
            Ok(pair) => break pair,
            Err(_) if Instant::now() < deadline + Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("cannot rebind worker 1 on {w1_addr}: {e}"),
        }
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.is_ejected(1) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!router.is_ejected(1), "a healthy probe must re-admit the restarted shard");
    let (status, _) = classify(addr, &nodes_json(&[hi]));
    assert!(status.contains("200"), "re-admitted shard serves again: {status}");
    let (_, health) = http_get(addr, "/v1/healthz").unwrap();
    assert!(health.contains("\"ok\""), "healthz after re-admission: {health}");
    let metrics = router.registry().render_prometheus();
    assert!(metrics.contains("mqo_shard_ejections_total{shard=\"1\"}"), "{metrics}");
    assert!(metrics.contains("mqo_shard_readmissions_total{shard=\"1\"}"), "{metrics}");

    router.shutdown();
    s0.drain();
    restarted.1.drain();
}

/// The acceptance path: boosted serving over a routed 2-shard cluster
/// where at least one query's γ₁/γ₂ readiness is satisfied *only* by
/// pseudo-labels that crossed shards — minted on shard 1, pushed to the
/// router by the exchanger, forwarded to shard 0, ingested into its
/// halo, and finally used as prompt cues by a shard-0 query whose
/// record proves it (`remote_neighbors > 0` and every labeled cue
/// remote).
#[test]
fn cross_shard_labels_satisfy_gamma_readiness_end_to_end() {
    let full = full_bundle();
    let map = partition(full.tag.graph(), 2, 7, PartitionStrategy::EdgeCut);
    let cfg = || ServeConfig { boost: true, cache_cap: 0, ..worker_cfg() };
    let (e0, s0) = start_worker(&full, &map, 0, "127.0.0.1:0", cfg()).unwrap();
    let (e1, s1) = start_worker(&full, &map, 1, "127.0.0.1:0", cfg()).unwrap();
    let router = Router::start(
        "127.0.0.1:0",
        map.clone(),
        RouterConfig::new(vec![s0.addr(), s1.addr()]),
    )
    .unwrap();
    let addr = router.addr();
    let ex0 = LabelExchanger::start(Arc::clone(&e0), addr, Duration::from_millis(20));
    let ex1 = LabelExchanger::start(Arc::clone(&e1), addr, Duration::from_millis(20));

    // One mixed batch up front so the fan-out path is exercised too.
    let (lo, _) = map.owned_range(0).unwrap();
    let (hi, _) = map.owned_range(1).unwrap();
    let (status, _) = classify(addr, &nodes_json(&[lo, hi]));
    assert!(status.contains("200"), "mixed batch: {status}");

    // Phase 1: classify shard-1 boundary nodes through the router. With
    // boosting on, clean predictions become pseudo-labels; since these
    // nodes have shard-0 neighbors, the exchanger queues and pushes them.
    let phase1: Vec<u32> = map.boundary(1).iter().copied().take(48).collect();
    assert!(phase1.len() >= 8, "shard 1 must have a real boundary, got {}", phase1.len());
    for chunk in phase1.chunks(12) {
        let (status, _) = classify(addr, &nodes_json(chunk));
        assert!(status.contains("200"), "phase-1 chunk: {status}");
    }

    // Wait for worker 0 to ingest exchanged labels into its halo.
    let deadline = Instant::now() + Duration::from_secs(10);
    while e0.labels().num_remote() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        e0.labels().num_remote() > 0,
        "cross-shard pseudo-labels never arrived at worker 0"
    );

    // Phase 2: find shard-0 owned nodes whose entire (≤ max_neighbors)
    // neighborhood carries no label except exchange-delivered ones —
    // for them, γ readiness can only come from remote cues — and query
    // until one record proves the remote label was used. Provenance is
    // re-checked immediately before each query because boosting keeps
    // minting local pseudo-labels as phase 2 itself runs.
    let sb0 = extract_shard(&full, &map, 0);
    let graph0 = sb0.data.tag.graph();
    let candidates: Vec<u32> = (0..sb0.num_owned())
        .filter(|&l| {
            let neigh = graph0.neighbors(NodeId(l));
            !neigh.is_empty() && neigh.len() <= 4
        })
        .collect();
    let mut proof: Option<QueryRecord> = None;
    for l in candidates {
        {
            let labels = e0.labels();
            let neigh = graph0.neighbors(NodeId(l));
            let clean = !labels.is_labeled(NodeId(l))
                && neigh.iter().any(|&n| labels.is_remote(NodeId(n)))
                && !neigh
                    .iter()
                    .any(|&n| labels.is_labeled(NodeId(n)) && !labels.is_remote(NodeId(n)));
            if !clean {
                continue;
            }
        }
        let global = sb0.global_of(l);
        let (status, response) = classify(addr, &nodes_json(&[global]));
        assert!(status.contains("200"), "phase-2 query: {status}");
        let rec = records_of(&response).remove(0);
        assert_eq!(rec.node.0, global, "records speak global ids through the router");
        if rec.remote_neighbors > 0 {
            assert_eq!(
                rec.labeled_neighbors, rec.remote_neighbors,
                "every labeled cue of this query must be exchange-delivered"
            );
            assert!(
                rec.pseudo_neighbors >= rec.remote_neighbors,
                "remote cues are pseudo-labels"
            );
            proof = Some(rec);
            break;
        }
    }
    let proof = proof
        .expect("no routed query had its γ readiness satisfied by cross-shard labels alone");
    assert!(proof.neighbors_included > 0, "the proving prompt carried neighbor cues");

    // The exchange is visible end to end in metrics: pushes on worker 1,
    // relay counters on the router, ingest counters on worker 0.
    let (_, w1_metrics) = http_get(s1.addr(), "/metrics").unwrap();
    let pushes: u64 = w1_metrics
        .lines()
        .find_map(|l| l.strip_prefix("mqo_shard_exchange_pushes_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("worker 1 exports exchange pushes");
    assert!(pushes >= 1, "worker 1 must have pushed at least one batch");
    let router_metrics = router.registry().render_prometheus();
    assert!(router_metrics.contains("mqo_shard_label_pushes_total"), "{router_metrics}");
    assert!(
        router_metrics.contains("mqo_shard_labels_forwarded_total{shard=\"0\"}"),
        "labels must have been forwarded to shard 0:\n{router_metrics}"
    );
    assert!(
        router_metrics.contains("mqo_shard_fanout_batches_total 1"),
        "the mixed batch must be counted:\n{router_metrics}"
    );
    let (_, w0_metrics) = http_get(s0.addr(), "/metrics").unwrap();
    let ingested: u64 = w0_metrics
        .lines()
        .find_map(|l| l.strip_prefix("mqo_shard_labels_ingested_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("worker 0 exports label ingests");
    assert!(ingested >= 1, "worker 0 must have ingested exchanged labels");

    // Worker stats surface the shard identity and remote-label count,
    // and the router aggregates them.
    let (_, text) = http_get(s0.addr(), "/v1/stats").unwrap();
    let stats: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let shard = stats.get("shard").expect("worker stats embed the shard object");
    assert_eq!(shard.get("id").and_then(|v| v.as_u64()), Some(0));
    assert!(shard.get("remote_labels").and_then(|v| v.as_u64()).unwrap() >= 1);
    assert!(stats.get("peak_rss_mb").and_then(|v| v.as_u64()).unwrap() > 0);
    let (_, text) = http_get(addr, "/v1/stats").unwrap();
    let rstats: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(rstats.get("num_shards").and_then(|v| v.as_u64()), Some(2));
    assert!(rstats.get("peak_rss_mb").and_then(|v| v.as_u64()).unwrap() > 0);

    ex0.stop();
    ex1.stop();
    router.shutdown();
    s0.drain();
    s1.drain();
}
