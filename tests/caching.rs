//! Cross-crate integration tests for the response-cache layer: correctness
//! under query boosting (round-based invalidation), and the end-to-end
//! token-savings contract the `--cache-cap`/`--no-cache` CLI arms and the
//! `BENCH_PR2.json` bench gate rely on.

use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::parallel::run_all_batched;
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{GraphBuilder, LabeledSplit, NodeId, NodeText, SplitConfig, Tag};
use mqo_llm::{CachedLlm, LanguageModel, ModelProfile, ScriptedLlm, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 5-node fixture: query node 4 sits between clique A (0–1–2, class
/// Alpha) and node 3 (class Beta). Node 0 is both node 4's neighbor and a
/// boosting query, so executing it changes what node 4's prompt renders.
fn bridge_tag() -> Tag {
    let mut b = GraphBuilder::new(5);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (4, 0), (4, 3)] {
        b.add_edge(u, v).unwrap();
    }
    let texts = (0..5)
        .map(|i| NodeText::new(format!("paper {i}"), format!("body of paper {i}")))
        .collect();
    let labels = [0u16, 0, 0, 1, 0].map(mqo_graph::ClassId).to_vec();
    Tag::new("bridge", b.build(), texts, labels, vec!["Alpha".into(), "Beta".into()]).unwrap()
}

/// The ISSUE's staleness scenario, end to end: a query is answered and
/// cached; a boosting round then pseudo-labels one of its neighbors; when
/// the query re-renders, the enriched prompt must reach the model (a miss)
/// instead of being served from the pre-round cache entry.
#[test]
fn boosting_round_invalidates_dependent_cached_queries() {
    let tag = bridge_tag();
    let llm = CachedLlm::new(ScriptedLlm::new(vec!["Category: ['Alpha']"; 8]), 64);
    let invalidator = llm.round_invalidator();
    let exec = Executor::new(&tag, &llm, 4, 9).with_sink(&invalidator);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let labels = LabelStore::empty(tag.num_nodes());

    // Serve node 4 twice before any boosting: the repeat is a cache hit.
    let mut rng = exec.query_rng(NodeId(4));
    exec.run_one(&predictor, &labels, NodeId(4), &mut rng, false).unwrap();
    let mut rng = exec.query_rng(NodeId(4));
    exec.run_one(&predictor, &labels, NodeId(4), &mut rng, false).unwrap();
    assert_eq!(llm.meter().totals().requests, 1, "identical re-query must be served");
    assert_eq!(llm.stats().cache.hits, 1);
    let pre_round_prompt = llm.inner().prompts_seen().pop().unwrap();
    assert!(
        !pre_round_prompt.contains("Category: Alpha"),
        "no neighbor had a label before boosting"
    );

    // One boosting round executes node 0 and folds its pseudo-label in;
    // the RoundCompleted event reaches the invalidator via the exec sink.
    let mut mut_labels = LabelStore::empty(tag.num_nodes());
    let (out, rounds) = run_with_boosting(
        &exec,
        &predictor,
        &mut mut_labels,
        &[NodeId(0)],
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();
    assert_eq!(out.records.len(), 1);
    assert!(mut_labels.is_pseudo(NodeId(0)));
    assert_eq!(llm.cache().epoch(), rounds.len() as u64, "each round advances the epoch");

    // Node 4 depends on node 0: its re-render now carries the pseudo-label
    // cue, and the request must reach the model — no stale pre-round hit.
    let requests_before = llm.meter().totals().requests;
    let hits_before = llm.stats().cache.hits;
    let mut rng = exec.query_rng(NodeId(4));
    let rec = exec.run_one(&predictor, &mut_labels, NodeId(4), &mut rng, false).unwrap();
    assert_eq!(rec.pseudo_neighbors, 1, "the enriched prompt saw the pseudo-label");
    assert_eq!(
        llm.meter().totals().requests,
        requests_before + 1,
        "the post-round query must be sent, not served from cache"
    );
    assert_eq!(llm.stats().cache.hits, hits_before, "no stale hit");
    let post_round_prompt = llm.inner().prompts_seen().pop().unwrap();
    assert!(
        post_round_prompt.contains("Category: Alpha"),
        "sent prompt must carry the neighbor's pseudo-label cue:\n{post_round_prompt}"
    );

    // And the epoch guard holds even for *byte-identical* prompts: replay
    // the pre-round prompt after another round boundary — stale entries
    // are dropped, not served.
    llm.complete(&pre_round_prompt).unwrap();
    let stale_before = llm.stats().cache.stale_drops;
    llm.cache().advance_epoch();
    llm.complete(&pre_round_prompt).unwrap();
    assert_eq!(llm.stats().cache.stale_drops, stale_before + 1);
}

/// The acceptance scenario: a serving-style workload (each query asked
/// three times) through the cached stack sends strictly fewer metered
/// prompt tokens than the uncached baseline, with identical predictions.
#[test]
fn cached_repeat_run_sends_fewer_tokens_with_equal_accuracy() {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 21);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 80 },
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let queries: Vec<NodeId> = split.queries().repeat(3);
    let labels = LabelStore::from_split(tag, &split);
    let predictor = KhopRandom::new(1, tag.num_nodes());

    let run = |capacity: usize| {
        let llm = CachedLlm::new(
            SimLlm::new(
                bundle.lexicon.clone(),
                tag.class_names().to_vec(),
                ModelProfile::gpt35(),
            ),
            capacity,
        );
        let exec = Executor::new(tag, &llm, 4, 5);
        let out = exec.run_all(&predictor, &labels, &queries, |_| false).unwrap();
        (out, llm.meter().totals().prompt_tokens, llm.stats())
    };
    let (cached, cached_tokens, stats) = run(4096);
    let (uncached, uncached_tokens, _) = run(0);

    assert!(stats.cache.hits > 0, "repeat workload must produce cache hits");
    assert!(
        cached_tokens < uncached_tokens,
        "cache must send strictly fewer metered tokens: {cached_tokens} vs {uncached_tokens}"
    );
    assert_eq!(cached.accuracy(), uncached.accuracy(), "caching must not change accuracy");
    for (c, u) in cached.records.iter().zip(&uncached.records) {
        assert_eq!((c.node, c.predicted), (u.node, u.predicted));
    }
}

/// The batched scheduler composes with the cache: prefix-coherent batches
/// place identical prompts adjacently, and the run still matches the
/// sequential records prediction-for-prediction.
#[test]
fn batched_execution_composes_with_the_cache() {
    let bundle = dataset(DatasetId::Citeseer, Some(0.3), 22);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 60 },
        &mut StdRng::seed_from_u64(4),
    )
    .unwrap();
    let queries: Vec<NodeId> = split.queries().repeat(2);
    let labels = LabelStore::from_split(tag, &split);
    let predictor = KhopRandom::new(1, tag.num_nodes());

    let llm = CachedLlm::new(
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35()),
        4096,
    );
    let exec = Executor::new(tag, &llm, 4, 5);
    let out = run_all_batched(&exec, &predictor, &labels, &queries, |_| false, 4, 16).unwrap();
    let s = llm.stats();
    assert!(
        s.cache.hits + s.coalesced >= split.queries().len() as u64,
        "every repeated prompt must be served or coalesced: {s:?}"
    );
    assert_eq!(llm.meter().totals().requests, split.queries().len() as u64);

    let llm2 = CachedLlm::new(
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35()),
        0,
    );
    let exec2 = Executor::new(tag, &llm2, 4, 5);
    let seq = exec2.run_all(&predictor, &labels, &queries, |_| false).unwrap();
    for (b, s) in out.records.iter().zip(&seq.records) {
        assert_eq!((b.node, b.predicted, b.correct), (s.node, s.predicted, s.correct));
    }
}
