//! Property-based integration tests: invariants that must hold for *any*
//! generated dataset, seed, and strategy configuration.

use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, LabelStore};
use mqo_data::{generate, DatasetSpec};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLlm};
use mqo_text::DocumentSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_spec(classes: usize, homophily: f64, saturated: f64) -> DatasetSpec {
    DatasetSpec {
        name: "prop",
        nodes: 400,
        edges: 1400,
        class_names: (0..classes).map(|c| format!("Topic {c}")).collect(),
        homophily,
        saturated_frac: saturated,
        adversarial_frac: 0.05,
        alpha_high: (0.25, 0.7),
        alpha_low: (0.0, 0.1),
        doc: DocumentSpec { title_words: 7, body_words: 30, cross_noise: 0.25, zipf_s: 1.05 },
        degree_tail: 2.5,
        closure_frac: 0.2,
        lexicon_per_class: 80,
        lexicon_shared: 800,
        lexicon_markers: 300,
        link_marker_prob: 0.5,
        split: SplitConfig::PerClass { per_class: 10, num_queries: 60 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the configuration: every query is answered exactly once,
    /// accuracy is a valid fraction, tokens are conserved, and pruning a
    /// τ fraction prunes exactly that many queries.
    #[test]
    fn execution_invariants(
        seed in 0u64..1000,
        classes in 3usize..8,
        homophily in 0.5f64..0.95,
        saturated in 0.3f64..0.9,
        tau in 0.0f64..1.0,
    ) {
        let spec = tiny_spec(classes, homophily, saturated);
        let bundle = generate(&spec, 1.0, seed);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            spec.split,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, seed);
        let labels = LabelStore::from_split(tag, &split);
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let plan = PrunePlan::random(split.queries(), tau, seed);

        use mqo_llm::LanguageModel;
        llm.meter().reset();
        let out = exec
            .run_all(&predictor, &labels, split.queries(), |v| plan.is_pruned(v))
            .unwrap();

        prop_assert_eq!(out.records.len(), split.queries().len());
        prop_assert!((0.0..=1.0).contains(&out.accuracy()));
        prop_assert_eq!(out.prompt_tokens(), llm.meter().totals().prompt_tokens);
        let expected_pruned = (split.queries().len() as f64 * tau).round() as usize;
        prop_assert_eq!(
            out.records.iter().filter(|r| plan.is_pruned(r.node)).count(),
            expected_pruned
        );
        // Predicted classes are always in range.
        for r in &out.records {
            prop_assert!((r.predicted.index()) < tag.num_classes());
        }
    }

    /// Query boosting terminates for any thresholds, executes every query
    /// exactly once, and leaves every query pseudo-labeled.
    #[test]
    fn boosting_invariants(
        seed in 0u64..1000,
        gamma1 in 0usize..6,
        gamma2 in 0usize..6,
    ) {
        let spec = tiny_spec(5, 0.8, 0.6);
        let bundle = generate(&spec, 1.0, seed);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            spec.split,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, seed);
        let mut labels = LabelStore::from_split(tag, &split);
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let (out, traces) = run_with_boosting(
            &exec,
            &predictor,
            &mut labels,
            split.queries(),
            BoostConfig { gamma1, gamma2 },
            &PrunePlan::default(),
        ).unwrap();

        prop_assert_eq!(out.records.len(), split.queries().len());
        let mut nodes: Vec<u32> = out.records.iter().map(|r| r.node.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), split.queries().len(), "a query ran twice");
        prop_assert!(!traces.is_empty());
        prop_assert_eq!(
            traces.iter().map(|t| t.executed).sum::<usize>(),
            split.queries().len()
        );
        for v in split.queries() {
            prop_assert!(labels.is_labeled(*v));
        }
    }
}
