//! Cross-crate integration tests for the observability layer: causal span
//! nesting (run → round → query → llm_call / retry) on real pipeline
//! runs, the Chrome trace artifact, the live metrics endpoint mid-run,
//! exact token-cost reconciliation between the ledger and the usage
//! meter, and deterministic wall times under an injected clock.

use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{GraphBuilder, LabeledSplit, NodeId, NodeText, SplitConfig, Tag};
use mqo_llm::{
    CachedLlm, Completion, LanguageModel, ModelProfile, RetryingLlm, ScriptedLlm, SimLlm,
    ValidatingLlm,
};
use mqo_obs::{
    http_get, ChromeTraceSink, Clock, CostLedger, Event, EventSink, Fanout, ManualClock,
    MetricsServer, MetricsSink, MonotonicClock, Recorder, SpanId, Tee, Tracer,
};
use mqo_token::UsageMeter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A 5-node fixture: clique 0–1–2 (Alpha), node 3 (Beta), query node 4
/// bridging both.
fn bridge_tag() -> Tag {
    let mut b = GraphBuilder::new(5);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (4, 0), (4, 3)] {
        b.add_edge(u, v).unwrap();
    }
    let texts = (0..5)
        .map(|i| NodeText::new(format!("paper {i}"), format!("body of paper {i}")))
        .collect();
    let labels = [0u16, 0, 0, 1, 0].map(mqo_graph::ClassId).to_vec();
    Tag::new("bridge", b.build(), texts, labels, vec!["Alpha".into(), "Beta".into()]).unwrap()
}

/// Span tree collected from recorded `span_enter` events: id → (name, parent).
fn span_tree(rec: &Recorder) -> HashMap<u64, (String, u64)> {
    rec.of_kind("span_enter")
        .into_iter()
        .map(|e| match e {
            Event::SpanEnter { id, parent, name, .. } => (id, (name, parent)),
            _ => unreachable!(),
        })
        .collect()
}

/// Names on the ancestor path of `id` (the span itself excluded).
fn ancestors(tree: &HashMap<u64, (String, u64)>, id: u64) -> Vec<String> {
    let mut names = Vec::new();
    let mut cur = tree[&id].1;
    while cur != 0 {
        let (name, parent) = &tree[&cur];
        names.push(name.clone());
        cur = *parent;
    }
    names
}

/// The acceptance scenario: a deterministic SimLLM boosting run under an
/// enabled tracer yields a causally correct span tree — every query inside
/// a round inside the run, every llm_call inside a query — and the Chrome
/// export is valid trace-event JSON carrying the same structure.
#[test]
fn boosted_run_produces_a_causal_span_tree_and_a_loadable_chrome_trace() {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 11);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 30 },
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let predictor = KhopRandom::new(1, tag.num_nodes());

    let chrome_path =
        std::env::temp_dir().join(format!("mqo_obs_trace_{}.json", std::process::id()));
    let chrome = ChromeTraceSink::create(&chrome_path).unwrap();
    let recorder = Recorder::new();
    let tee = Tee::new(&recorder, &chrome);
    let tracer = Tracer::new(Arc::new(MonotonicClock));

    let exec = Executor::new(tag, &llm, 4, 11).with_sink(&tee).with_tracer(&tracer);
    let run_span = tracer.span(&tee, "run", || "test run".into(), SpanId::NONE);
    exec.set_span_scope(run_span.id());
    let mut labels = LabelStore::from_split(tag, &split);
    let (out, rounds) = run_with_boosting(
        &exec,
        &predictor,
        &mut labels,
        split.queries(),
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();
    drop(run_span);
    assert!(!rounds.is_empty());

    let tree = span_tree(&recorder);
    assert_eq!(recorder.of_kind("span_exit").len(), tree.len(), "every opened span must close");
    let count = |name: &str| tree.values().filter(|(n, _)| n == name).count();
    assert_eq!(count("run"), 1);
    assert_eq!(count("round"), rounds.len());
    assert_eq!(count("query"), out.records.len(), "one query span per executed query");
    assert_eq!(count("llm_call"), out.records.len());
    for (&id, (name, parent)) in &tree {
        let up = ancestors(&tree, id);
        match name.as_str() {
            "query" => {
                assert!(up.contains(&"round".to_string()), "query {id} outside rounds: {up:?}");
                assert!(up.contains(&"run".to_string()), "query {id} outside the run");
            }
            "llm_call" => {
                assert_eq!(tree[parent].0, "query", "llm_call {id} must parent to its query");
            }
            _ => {}
        }
    }

    // The Chrome artifact parses, carries the same spans as complete
    // events, and names at least the main-thread track.
    EventSink::flush(&chrome);
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&chrome_path).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let complete: Vec<_> = events.iter().filter(|e| e["ph"].as_str() == Some("X")).collect();
    assert_eq!(complete.len(), tree.len());
    for ev in &complete {
        let parent = ev["args"]["parent"].as_u64().unwrap();
        if parent != 0 {
            assert!(
                complete.iter().any(|p| p["args"]["id"].as_u64() == Some(parent)),
                "parent {parent} missing from the export"
            );
        }
    }
    assert!(events
        .iter()
        .any(|e| e["ph"].as_str() == Some("M") && e["args"]["name"].as_str() == Some("main")));
    std::fs::remove_file(&chrome_path).ok();
}

/// Retries nest inside the query they belong to: a malformed first
/// response forces one re-attempt, whose `retry` span parents to the
/// `llm_call` span of the same query.
#[test]
fn retry_spans_nest_inside_their_query() {
    let tag = bridge_tag();
    let recorder = Arc::new(Recorder::new());
    let tracer = Arc::new(Tracer::new(Arc::new(MonotonicClock)));
    let scripted = ScriptedLlm::new(vec!["garbage", "Category: ['Alpha']"]);
    let llm =
        RetryingLlm::new(ValidatingLlm::new(scripted, vec!["Alpha".into(), "Beta".into()]), 3)
            .with_sink(recorder.clone())
            .with_tracer(tracer.clone());

    let exec = Executor::new(&tag, &llm, 4, 3).with_sink(&*recorder).with_tracer(&tracer);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let labels = LabelStore::empty(tag.num_nodes());
    let mut rng = exec.query_rng(NodeId(4));
    let rec = exec.run_one(&predictor, &labels, NodeId(4), &mut rng, false).unwrap();
    assert!(!rec.parse_failed);

    let tree = span_tree(&recorder);
    let (retry_id, _) = tree
        .iter()
        .find(|(_, (name, _))| name == "retry")
        .expect("the re-attempt must open a retry span");
    let up = ancestors(&tree, *retry_id);
    assert_eq!(up.first().map(String::as_str), Some("llm_call"));
    assert!(up.contains(&"query".to_string()), "retry outside its query: {up:?}");
}

/// A model wrapper that parks the run after the first completion until the
/// test releases it — the window in which `/metrics` and `/progress` are
/// scraped mid-run.
struct GatedLlm {
    inner: ScriptedLlm,
    state: Mutex<(u32, bool)>, // (completions, released)
    cv: Condvar,
}

impl GatedLlm {
    fn new(inner: ScriptedLlm) -> Self {
        GatedLlm { inner, state: Mutex::new((0, false)), cv: Condvar::new() }
    }

    fn wait_parked(&self) {
        let mut s = self.state.lock().unwrap();
        while s.0 < 2 {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn release(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

impl LanguageModel for GatedLlm {
    fn name(&self) -> &str {
        "gated"
    }
    fn complete(&self, prompt: &str) -> mqo_llm::Result<Completion> {
        let mut s = self.state.lock().unwrap();
        s.0 += 1;
        if s.0 == 2 {
            self.cv.notify_all();
            while !s.1 {
                s = self.cv.wait(s).unwrap();
            }
        }
        drop(s);
        self.inner.complete(prompt)
    }
    fn meter(&self) -> &UsageMeter {
        self.inner.meter()
    }
}

/// While a run is parked mid-flight, `GET /metrics` serves non-zero
/// Prometheus series and `GET /progress` reflects completed work; after a
/// boosting round both reflect the round count.
#[test]
fn live_endpoint_serves_metrics_and_progress_mid_run() {
    let tag = bridge_tag();
    let llm = GatedLlm::new(ScriptedLlm::new(vec!["Category: ['Alpha']"; 16]));
    let metrics = Arc::new(MetricsSink::new());
    let server = MetricsServer::start("127.0.0.1:0", metrics.clone()).unwrap();
    let exec = Executor::new(&tag, &llm, 4, 7).with_sink(&*metrics);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let labels = LabelStore::empty(tag.num_nodes());
    let queries = [NodeId(0), NodeId(1), NodeId(3), NodeId(4)];

    std::thread::scope(|s| {
        let handle =
            s.spawn(|| exec.run_all(&predictor, &labels, &queries, |_| false).unwrap());
        llm.wait_parked();
        // Query 1 finished, query 2 is parked inside the model: the scrape
        // must see exactly the completed work, live.
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("mqo_queries_total 1"), "mid-run scrape: {body}");
        assert!(body.contains("mqo_prompt_tokens_total"));
        // Fleet-identification series every scrape carries: which build
        // is running, and for how long.
        assert!(body.contains("mqo_build_info{version=\""), "build info: {body}");
        assert!(
            body.contains("mqo_build_info{") && body.contains("\"} 1"),
            "build info: {body}"
        );
        assert!(body.contains("mqo_uptime_seconds "), "uptime gauge: {body}");
        let (_, progress) = http_get(server.addr(), "/progress").unwrap();
        let p: serde_json::Value = serde_json::from_str(&progress).unwrap();
        assert_eq!(p["queries"].as_u64(), Some(1), "progress mid-run: {progress}");
        assert_eq!(p["rounds_completed"].as_u64(), Some(0));
        llm.release();
        handle.join().unwrap()
    });

    // A boosting round afterwards moves the round gauges.
    let mut labels = LabelStore::empty(tag.num_nodes());
    run_with_boosting(
        &exec,
        &predictor,
        &mut labels,
        &[NodeId(4)],
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();
    let (_, progress) = http_get(server.addr(), "/progress").unwrap();
    let p: serde_json::Value = serde_json::from_str(&progress).unwrap();
    assert!(p["rounds_completed"].as_u64().unwrap() >= 1, "after boosting: {progress}");
    assert!(p["queries"].as_u64().unwrap() >= 5);
}

/// On a clean run (no retries, no parse recoveries) the ledger reconciles
/// *exactly* with the usage meter, per round and in total — the
/// conservation identity billed == rendered − pruned − cached − starved
/// with zero unattributed tokens.
#[test]
fn cost_ledger_reconciles_exactly_with_the_meter_under_boosting() {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 13);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 40 },
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    let sim =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let llm = CachedLlm::new(sim, 1024);
    let ledger = Arc::new(CostLedger::new());
    let fanout = Fanout::new();
    fanout.push(Arc::new(llm.round_invalidator()));
    fanout.push(ledger.clone());
    let exec = Executor::new(tag, &llm, 4, 13).with_sink(&fanout);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let mut labels = LabelStore::from_split(tag, &split);
    let (out, rounds) = run_with_boosting(
        &exec,
        &predictor,
        &mut labels,
        split.queries(),
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();

    let report = ledger.report();
    assert_eq!(report.rounds.len(), rounds.len(), "one ledger row per boosting round");
    assert_eq!(report.total.queries as usize, out.records.len());
    assert!(report.total.rendered_tokens > 0);
    for (i, round) in report.rounds.iter().enumerate() {
        assert!(round.conserves(), "round {i} violates conservation: {round:?}");
    }
    let meter_billed = llm.meter().totals().prompt_tokens;
    assert_eq!(report.total.billed_tokens, meter_billed, "ledger != meter");
    assert!(report.reconciles_with(meter_billed));
    assert_eq!(report.unattributed(meter_billed), 0);
}

/// Cache serves and budget starvation land in their own ledger buckets —
/// and the identity still reconciles exactly, because neither bucket ever
/// reaches the meter.
#[test]
fn cache_serves_and_starvation_fill_their_ledger_buckets() {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 17);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 30 },
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    let labels = LabelStore::from_split(tag, &split);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let repeated: Vec<NodeId> = split.queries().repeat(2);

    // Serving-style workload: the second pass is served from cache, so the
    // saved tokens shift from `billed` to `cache_saved`.
    {
        let sim = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let llm = CachedLlm::new(sim, 1024);
        let ledger = CostLedger::new();
        let exec = Executor::new(tag, &llm, 4, 17).with_sink(&ledger);
        exec.run_all(&predictor, &labels, &repeated, |_| false).unwrap();
        let report = ledger.report();
        assert!(report.total.cache_saved_tokens > 0, "second pass must be served");
        let meter_billed = llm.meter().totals().prompt_tokens;
        assert!(report.reconciles_with(meter_billed), "cache serves break nothing");
        assert_eq!(
            report.total.billed_tokens + report.total.cache_saved_tokens,
            report.total.rendered_tokens - report.total.pruned_saved_tokens,
        );
    }

    // A hard budget at roughly a third of the unconstrained spend starves
    // the tail; starved prompts were never sent, so the meter agrees.
    {
        let sim = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let probe = Executor::new(tag, &sim, 4, 17);
        probe.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        let unconstrained = sim.meter().totals().prompt_tokens;

        let sim = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let ledger = CostLedger::new();
        let exec =
            Executor::new(tag, &sim, 4, 17).with_sink(&ledger).with_budget(unconstrained / 3);
        let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        assert!(out.budget_starved() > 0, "the budget must bite");
        let report = ledger.report();
        assert!(report.total.starved_tokens > 0);
        assert!(report.reconciles_with(sim.meter().totals().prompt_tokens));
    }
}

/// A clock wrapper advancing a [`ManualClock`] by a fixed amount per
/// completion, making `wall_micros` exactly reproducible.
struct SteppingLlm {
    inner: ScriptedLlm,
    clock: Arc<ManualClock>,
}

impl LanguageModel for SteppingLlm {
    fn name(&self) -> &str {
        "stepping"
    }
    fn complete(&self, prompt: &str) -> mqo_llm::Result<Completion> {
        self.clock.advance(7);
        self.inner.complete(prompt)
    }
    fn meter(&self) -> &UsageMeter {
        self.inner.meter()
    }
}

/// With an injected [`ManualClock`] every query reports the same exact
/// wall time — timing telemetry is deterministic under test.
#[test]
fn manual_clock_makes_query_wall_times_deterministic() {
    let tag = bridge_tag();
    let clock = Arc::new(ManualClock::new());
    let llm = SteppingLlm {
        inner: ScriptedLlm::new(vec!["Category: ['Alpha']"; 8]),
        clock: clock.clone(),
    };
    let recorder = Recorder::new();
    let exec =
        Executor::new(&tag, &llm, 4, 5).with_sink(&recorder).with_clock(&*clock as &dyn Clock);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let labels = LabelStore::empty(tag.num_nodes());
    exec.run_all(&predictor, &labels, &[NodeId(0), NodeId(3), NodeId(4)], |_| false).unwrap();

    let executed = recorder.of_kind("query_executed");
    assert_eq!(executed.len(), 3);
    for e in executed {
        match e {
            Event::QueryExecuted { wall_micros, .. } => {
                assert_eq!(wall_micros, 7, "wall time is exactly the injected step")
            }
            _ => unreachable!(),
        }
    }
}
