//! Failure-injection tests: the pipeline's behaviour when the model
//! misbehaves — transport failures, malformed completions, and budget
//! exhaustion mid-run.

use mqo_core::predictor::KhopRandom;
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{Completion, Error as LlmError, LanguageModel, RetryingLlm, SimLlm};
use mqo_llm::{ModelProfile, ScriptedLlm};
use mqo_token::{Tokenizer, Usage, UsageMeter};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A model that fails every `period`-th call with a transport-style error,
/// otherwise delegating to an inner simulator.
struct Flaky<'a> {
    inner: &'a SimLlm,
    calls: Mutex<u64>,
    period: u64,
}

impl LanguageModel for Flaky<'_> {
    fn name(&self) -> &str {
        "flaky-sim"
    }
    fn complete(&self, prompt: &str) -> mqo_llm::Result<Completion> {
        let mut calls = self.calls.lock();
        *calls += 1;
        if (*calls).is_multiple_of(self.period) {
            return Err(LlmError::MalformedResponse { response: "HTTP 500".into() });
        }
        drop(calls);
        self.inner.complete(prompt)
    }
    fn meter(&self) -> &UsageMeter {
        self.inner.meter()
    }
}

fn world() -> (mqo_data::DatasetBundle, LabeledSplit, SimLlm) {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 81);
    let split = LabeledSplit::generate(
        &bundle.tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 120 },
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let llm = SimLlm::new(
        bundle.lexicon.clone(),
        bundle.tag.class_names().to_vec(),
        ModelProfile::gpt35(),
    );
    (bundle, split, llm)
}

/// A raw flaky model aborts the run with the underlying error — no silent
/// data corruption.
#[test]
fn transport_failures_propagate_without_corruption() {
    let (bundle, split, sim) = world();
    let flaky = Flaky { inner: &sim, calls: Mutex::new(0), period: 7 };
    let exec = Executor::new(&bundle.tag, &flaky, 4, 1);
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let err = exec.run_all(&predictor, &labels, split.queries(), |_| false);
    assert!(err.is_err(), "seventh call must surface the failure");
}

/// Wrapped in the retrying decorator, the same flaky model completes the
/// whole run (period-7 failures never survive two retries).
#[test]
fn retrying_decorator_rides_through_intermittent_failures() {
    let (bundle, split, sim) = world();
    let flaky = Flaky { inner: &sim, calls: Mutex::new(0), period: 7 };
    let retrying = RetryingLlm::new(flaky, 3);
    let exec = Executor::new(&bundle.tag, &retrying, 4, 1);
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
    assert_eq!(out.records.len(), 120);
    assert!(out.accuracy() > 0.4, "accuracy survived the flakiness: {}", out.accuracy());
}

/// Garbage completions never panic the executor: every record falls back
/// deterministically and is flagged.
#[test]
fn garbage_completions_are_flagged_not_fatal() {
    let (bundle, split, _) = world();
    let garbage = ScriptedLlm::new(vec!["%$#@! no category here at all +++"; 120]);
    let exec = Executor::new(&bundle.tag, &garbage, 4, 1);
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
    assert!(out.records.iter().all(|r| r.parse_failed));
    assert!(out.records.iter().all(|r| r.predicted.index() < bundle.tag.num_classes()));
}

/// A budget far below one full prompt still answers every query (all
/// neighbor-free), never refusing work.
#[test]
fn starvation_budget_degrades_to_zero_shot_not_refusal() {
    let (bundle, split, sim) = world();
    let exec = Executor::new(&bundle.tag, &sim, 4, 1).with_budget(1);
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let queries: Vec<_> = split.queries().iter().take(20).copied().collect();
    let out = exec.run_all(&predictor, &labels, &queries, |_| false).unwrap();
    assert_eq!(out.records.len(), 20);
    assert!(out.records.iter().all(|r| r.pruned), "all prompts must be neighbor-free");
}

/// Usage accounting is exact even when completions vary in length.
#[test]
fn completion_tokens_are_metered_exactly() {
    let (bundle, split, _) = world();
    let responses =
        ["Category: ['Theory'].", "The most likely category for the target paper is Theory."];
    let llm = ScriptedLlm::new(responses.iter().cycle().take(40).copied());
    let exec = Executor::new(&bundle.tag, &llm, 4, 1);
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let queries: Vec<_> = split.queries().iter().take(40).copied().collect();
    exec.run_all(&predictor, &labels, &queries, |_| false).unwrap();
    let expected: u64 =
        responses.iter().cycle().take(40).map(|r| Tokenizer.count(r) as u64).sum();
    assert_eq!(llm.meter().totals().completion_tokens, expected);
    // Usage structs agree with the meter on the prompt side too.
    let _ = Usage::default();
}
