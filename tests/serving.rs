//! Serving end-to-end tests over loopback HTTP: bit-identical records
//! versus a batch run (under worker concurrency and overlapping client
//! node sets), tenant admission that bills nothing on refusal, queue
//! backpressure with computed `Retry-After`, deadline propagation
//! (`x-mqo-deadline-ms` → `504`, zero billing, ledger conservation),
//! brown-out degradation, slow-loris isolation, graceful drain, and
//! journal-backed restart that re-bills zero tokens.

use mqo_core::journal::record_from_json;
use mqo_core::QueryRecord;
use mqo_data::{dataset, DatasetBundle, DatasetId};
use mqo_graph::NodeId;
use mqo_obs::httpd::HttpClient;
use mqo_obs::{http_get, http_post};
use mqo_serve::{Engine, OverloadConfig, Rejection, ServeConfig, Server, ServerOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn bundle() -> DatasetBundle {
    dataset(DatasetId::Cora, Some(0.3), 42)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { split_queries: 60, ..ServeConfig::default() }
}

fn start(engine: Arc<Engine>, workers: usize, queue_capacity: usize) -> Server {
    start_with(engine, workers, queue_capacity, OverloadConfig::default())
}

fn start_with(
    engine: Arc<Engine>,
    workers: usize,
    queue_capacity: usize,
    overload: OverloadConfig,
) -> Server {
    let options =
        ServerOptions { addr: "127.0.0.1:0".into(), workers, queue_capacity, overload };
    Server::start(engine, options).expect("bind loopback server")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mqo-serving-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// POST a classify body and parse `(status line, response JSON)`.
fn classify(addr: std::net::SocketAddr, body: &str) -> (String, serde_json::Value) {
    let (status, text) = http_post(addr, "/v1/classify", body).expect("classify round-trip");
    let value = serde_json::from_str(text.trim()).expect("classify response is JSON");
    (status, value)
}

fn records_of(response: &serde_json::Value) -> Vec<QueryRecord> {
    response
        .get("records")
        .and_then(|r| r.as_array())
        .expect("response has records")
        .iter()
        .map(|v| record_from_json(v).expect("record parses"))
        .collect()
}

fn nodes_json(nodes: &[u32]) -> String {
    let list: Vec<String> = nodes.iter().map(u32::to_string).collect();
    format!("{{\"nodes\": [{}]}}", list.join(", "))
}

/// POST and return the raw response (status line + headers + body), for
/// assertions on headers that [`http_post`] strips.
fn raw_post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: mqo\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// Concurrent loopback clients with *overlapping* node sets must produce
/// exactly the records a single batch run produces — worker
/// interleaving, request order, and duplicate nodes cannot perturb them.
#[test]
fn served_records_are_bit_identical_to_a_batch_run() {
    // Caching (like boosting) is order-dependent by design — a hit
    // zeroes billed usage — so the bit-identity guarantee is stated for
    // cache-off, boost-off engines.
    let cfg = || ServeConfig { cache_cap: 0, ..serve_cfg() };
    // Batch arm: one engine, one sequential pass over the union.
    let union: Vec<NodeId> = (0..30).map(NodeId).collect();
    let batch_engine = Engine::new(bundle(), cfg()).unwrap();
    let batch = batch_engine.process(&union, "default");
    let expected: HashMap<u32, QueryRecord> =
        union.iter().map(|n| n.0).zip(batch.records.iter().cloned()).collect();

    // Serve arm: fresh engine, 4 workers, 3 clients on overlapping sets.
    let engine = Engine::new(bundle(), cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 4, 16);
    let addr = server.addr();
    let client_sets: [Vec<u32>; 3] = [(0..20).collect(), (10..30).collect(), (5..25).collect()];
    let mut clients = Vec::new();
    for set in client_sets {
        clients.push(std::thread::spawn(move || {
            let mut served: Vec<(u32, QueryRecord)> = Vec::new();
            for chunk in set.chunks(5) {
                let (status, response) = classify(addr, &nodes_json(chunk));
                assert!(status.contains("200"), "expected 200, got {status}");
                for (node, rec) in chunk.iter().zip(records_of(&response)) {
                    served.push((*node, rec));
                }
            }
            served
        }));
    }
    let mut served = Vec::new();
    for c in clients {
        served.extend(c.join().expect("client thread"));
    }
    server.drain();

    assert_eq!(served.len(), 60, "3 clients x 20 nodes each");
    for (node, rec) in &served {
        assert_eq!(
            rec, &expected[node],
            "served record for node {node} diverged from the batch run"
        );
    }
}

/// One keep-alive connection carrying a whole session of classify
/// requests produces records bit-identical to a sequential batch run —
/// connection reuse is a transport optimization, never a behavioral one.
#[test]
fn keep_alive_session_is_bit_identical_to_batch() {
    let cfg = || ServeConfig { cache_cap: 0, ..serve_cfg() };
    let union: Vec<NodeId> = (0..20).map(NodeId).collect();
    let batch_engine = Engine::new(bundle(), cfg()).unwrap();
    let batch = batch_engine.process(&union, "default");

    let engine = Engine::new(bundle(), cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    // One persistent connection for the whole session: every request
    // rides the same socket unless the server closes it (it must not).
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let mut served: Vec<QueryRecord> = Vec::new();
    for chunk in (0..20u32).collect::<Vec<_>>().chunks(4) {
        let (status, text) =
            client.post("/v1/classify", &nodes_json(chunk)).expect("keep-alive round-trip");
        assert!(status.contains("200"), "got {status}");
        let response: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        served.extend(records_of(&response));
    }
    drop(client);
    server.drain();

    assert_eq!(served.len(), union.len());
    for (rec, expected) in served.iter().zip(&batch.records) {
        assert_eq!(rec, expected, "keep-alive session diverged from the batch run");
    }
}

/// Two requests written on one raw socket both get answered — the server
/// really does keep HTTP/1.1 connections alive rather than closing after
/// the first response.
#[test]
fn one_socket_carries_multiple_requests() {
    use std::io::{Read, Write};
    let engine = Engine::new(bundle(), serve_cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 4);
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET /v1/healthz HTTP/1.1\r\nHost: mqo\r\n\r\n").unwrap();
    write!(stream, "GET /v1/healthz HTTP/1.1\r\nHost: mqo\r\nConnection: close\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read both responses");
    assert_eq!(raw.matches("HTTP/1.1 200 OK").count(), 2, "got: {raw}");
    assert!(raw.contains("Connection: keep-alive"), "first response keeps alive: {raw}");
    assert!(raw.contains("Connection: close"), "second response closes: {raw}");
    server.drain();
}

/// Malformed framing — conflicting duplicate `Content-Length`, truncated
/// header blocks — earns a `400`, lands in `mqo_http_errors_total`, and
/// leaves the server fully alive for well-formed clients.
#[test]
fn malformed_framing_gets_400_and_server_stays_up() {
    use std::io::{Read, Write};
    let engine = Engine::new(bundle(), serve_cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 4);
    let addr = server.addr();

    // Request-smuggling shape: two different Content-Length framings.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(
            b"POST /v1/classify HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\nhello",
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("400 Bad Request"), "got: {raw}");
    assert!(raw.contains("conflicting"), "got: {raw}");

    // Truncated mid-headers: EOF before the blank line is not a request.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(b"POST /v1/classify HTTP/1.1\r\nHost: x\r\nContent-Le").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("400 Bad Request"), "got: {raw}");

    // Both abuses are visible in metrics, and the server still serves.
    let mut errors_seen = 0u64;
    for _ in 0..200 {
        let (_, text) = http_get(addr, "/metrics").unwrap();
        errors_seen = text
            .lines()
            .find_map(|l| l.strip_prefix("mqo_http_errors_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if errors_seen >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(errors_seen >= 2, "framing abuse must be counted, saw {errors_seen}");
    let (status, _) = classify(addr, "{\"node\": 1}");
    assert!(status.contains("200"), "server must survive abuse, got {status}");
    server.drain();
}

/// A tenant over its admission budget gets `429` before any queue slot
/// or LLM call — global billed tokens must not move at all.
#[test]
fn exhausted_tenant_gets_429_and_bills_nothing() {
    let cfg = ServeConfig {
        tenant_budgets: HashMap::from([("broke".to_string(), 0), ("acme".to_string(), 1)]),
        ..serve_cfg()
    };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let addr = server.addr();

    // Zero budget: refused outright, nothing ever billed.
    let (status, body) = classify(addr, "{\"node\": 1, \"tenant\": \"broke\"}");
    assert!(status.contains("429"), "got {status}");
    assert_eq!(body.get("error").and_then(|e| e.as_str()), Some("tenant budget exhausted"));
    assert_eq!(engine.totals().prompt_tokens, 0, "refusal must not reach the model");

    // One-token budget: first request admitted (spend starts at 0) and
    // charged; the second finds the budget exhausted.
    let (status, response) = classify(addr, "{\"node\": 2, \"tenant\": \"acme\"}");
    assert!(status.contains("200"), "got {status}");
    let billed = response.get("billed_tokens").and_then(|b| b.as_u64()).unwrap();
    assert!(billed > 0, "a real query bills tokens");
    let before = engine.totals().prompt_tokens;

    let (status, body) = classify(addr, "{\"node\": 3, \"tenant\": \"acme\"}");
    assert!(status.contains("429"), "got {status}");
    assert_eq!(body.get("spent_tokens").and_then(|b| b.as_u64()), Some(billed));
    assert_eq!(body.get("budget").and_then(|b| b.as_u64()), Some(1));
    assert_eq!(
        engine.totals().prompt_tokens,
        before,
        "a tenant refusal must not bill a single global token"
    );
    server.drain();
}

/// With one worker and a one-slot queue, a long-running batch plus a
/// queued request saturates admission: the next request bounces with
/// `429` + `Retry-After` and is billed nothing.
#[test]
fn saturated_queue_answers_429_retry_after() {
    // Inject a 30ms latency spike into *every* LLM call (spent on the
    // real wait clock; cache off so every call reaches the injector): a
    // 5-node batch holds the single worker ~150ms, long enough to
    // observe saturation without racing the scheduler.
    let cfg = ServeConfig {
        faults: Some("latency=1.0,latency-micros=30000".into()),
        cache_cap: 0,
        ..serve_cfg()
    };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 1);
    let addr = server.addr();

    // Occupy the worker, then the single queue slot.
    let long = std::thread::spawn(move || classify(addr, &nodes_json(&[0, 1, 2, 3, 4])));
    std::thread::sleep(Duration::from_millis(20));
    let queued = std::thread::spawn(move || classify(addr, "{\"node\": 5}"));
    std::thread::sleep(Duration::from_millis(20));

    // Worker busy + queue full: probes bounce with 429 until the long
    // batch finishes. Probe over a raw socket so the Retry-After header
    // is visible too.
    let mut saw_saturation = false;
    while !long.is_finished() {
        let raw = raw_post(addr, "/v1/classify", "{\"node\": 6}");
        if raw.contains("429") {
            assert!(raw.contains("\"saturated\""), "got {raw}");
            // The Retry-After value is computed from observed service
            // time and queue depth — assert it parses and sits in the
            // documented [1, 30] band rather than pinning a constant.
            let retry_after: u64 = raw
                .lines()
                .find_map(|l| l.strip_prefix("Retry-After: "))
                .expect("429 must carry Retry-After")
                .trim()
                .parse()
                .expect("Retry-After is integral seconds");
            assert!(
                (1..=30).contains(&retry_after),
                "Retry-After {retry_after} outside [1, 30], got {raw}"
            );
            saw_saturation = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_saturation, "never observed queue backpressure");

    // Backpressure refused work without losing admitted work.
    let (status, _) = long.join().expect("long client");
    assert!(status.contains("200"), "long batch must complete, got {status}");
    let (status, _) = queued.join().expect("queued client");
    assert!(status.contains("200"), "queued request must complete, got {status}");
    server.drain();
}

/// Graceful drain: work in flight at drain time completes and is
/// answered; once drained, late requests are refused at the socket.
#[test]
fn drain_completes_in_flight_work_then_refuses_connections() {
    let journal = tmp("drain.journal");
    let cfg = ServeConfig { journal: Some(journal.clone()), ..serve_cfg() };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let addr = server.addr();

    // A healthy server answers healthz and classify.
    let (status, _) = http_get(addr, "/v1/healthz").unwrap();
    assert!(status.contains("200"), "got {status}");

    // Put a large batch in flight, then drain while it runs.
    let in_flight: Vec<u32> = (0..120).collect();
    let client = std::thread::spawn(move || classify(addr, &nodes_json(&in_flight)));
    std::thread::sleep(Duration::from_millis(5));
    let report = server.drain();

    let (status, response) = client.join().expect("in-flight client");
    assert!(status.contains("200"), "in-flight work must complete, got {status}");
    assert_eq!(records_of(&response).len(), 120);
    assert!(report.journal_sealed, "drain must seal the journal");
    assert_eq!(report.queries, 120 + engine.journal().map_or(0, |j| j.replayed()));

    // The listener is gone: late requests are refused at the socket.
    let late = http_post(addr, "/v1/classify", "{\"node\": 1}");
    assert!(late.is_err(), "drained server must refuse connections, got {late:?}");
    std::fs::remove_file(&journal).ok();
}

/// While draining, admission answers `503` (and healthz reports it)
/// instead of accepting work it could not finish.
#[test]
fn draining_server_rejects_new_work_with_503() {
    let engine = Engine::new(bundle(), serve_cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 4);
    let addr = server.addr();

    // `POST /v1/drain` only *requests* a drain — the lifecycle owner
    // runs it. Until then the server still serves.
    let (status, body) = http_post(addr, "/v1/drain", "{}").unwrap();
    assert!(status.contains("202"), "got {status}");
    assert!(body.contains("\"draining\":true"), "got {body}");
    assert!(engine.drain_requested());

    // Flip the admission gate the way drain step 1 does: requests racing
    // the drain get a clean 503, not a dead socket.
    engine.set_draining();
    let (status, body) = classify(addr, "{\"node\": 1}");
    assert!(status.contains("503"), "got {status}");
    assert_eq!(body.get("error").and_then(|e| e.as_str()), Some("draining"));
    assert_eq!(engine.admit("default"), Err(Rejection::Draining));
    let (status, _) = http_get(addr, "/v1/healthz").unwrap();
    assert!(status.contains("503"), "got {status}");
    server.drain();
}

/// A drained server's sealed journal lets a restart answer the same
/// nodes with *zero* re-billing — and byte-identical records.
#[test]
fn restart_resumes_sealed_journal_and_rebills_zero_tokens() {
    let journal = tmp("resume.journal");
    std::fs::remove_file(&journal).ok();
    let nodes: Vec<u32> = (0..25).collect();

    // First life: serve, then drain (which seals the journal).
    let cfg = ServeConfig { journal: Some(journal.clone()), ..serve_cfg() };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let (status, first_response) = classify(server.addr(), &nodes_json(&nodes));
    assert!(status.contains("200"), "got {status}");
    let first_records = records_of(&first_response);
    let first_billed = engine.totals().prompt_tokens;
    assert!(first_billed > 0);
    server.drain();

    // Second life: resume the journal; the same nodes replay for free.
    let cfg = ServeConfig { journal: Some(journal.clone()), resume: true, ..serve_cfg() };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let (status, second_response) = classify(server.addr(), &nodes_json(&nodes));
    assert!(status.contains("200"), "got {status}");
    assert_eq!(
        second_response.get("replayed").and_then(|r| r.as_u64()),
        Some(nodes.len() as u64),
        "every node must replay from the journal"
    );
    assert_eq!(records_of(&second_response), first_records);
    assert_eq!(
        engine.totals().prompt_tokens,
        0,
        "a resumed server re-bills zero tokens for journaled nodes"
    );
    let report = server.drain();
    assert_eq!(report.replayed, nodes.len() as u64);
    std::fs::remove_file(&journal).ok();
}

/// `/v1/stats` and `/metrics` reflect serving activity, and malformed
/// classify bodies are client errors, not connection drops.
#[test]
fn stats_metrics_and_client_errors() {
    let engine = Engine::new(bundle(), serve_cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let addr = server.addr();

    let (status, _) = classify(addr, "{\"nodes\": [1, 2, 3]}");
    assert!(status.contains("200"), "got {status}");

    let (status, text) = http_get(addr, "/v1/stats").unwrap();
    assert!(status.contains("200"), "got {status}");
    let stats: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(stats.get("queries").and_then(|q| q.as_u64()), Some(3));
    assert_eq!(stats.get("requests").and_then(|q| q.as_u64()), Some(1));
    assert!(stats.get("nodes").and_then(|n| n.as_u64()).unwrap() > 0);
    assert!(stats.get("queue").is_some(), "live stats embed queue depth");

    let (status, text) = http_get(addr, "/metrics").unwrap();
    assert!(status.contains("200"), "got {status}");
    assert!(text.contains("mqo_serve_queries_total 3"), "got:\n{text}");

    for bad in [
        "not json",
        "{}",
        "{\"node\": 1, \"nodes\": [2]}",
        "{\"nodes\": []}",
        "{\"node\": 99999999}",
    ] {
        let (status, _) = http_post(addr, "/v1/classify", bad).unwrap();
        assert!(status.contains("400"), "body {bad:?} should 400, got {status}");
    }
    let (status, _) = http_get(addr, "/nope").unwrap();
    assert!(status.contains("404"), "got {status}");
    server.drain();
}

/// A caller-supplied trace id round-trips through the response header
/// and JSON, the flight recorder's span tree, and the journal line; W3C
/// `traceparent` is honored; requests without either get a minted
/// 16-hex id; and error responses land in the flight error ring.
#[test]
fn trace_ids_round_trip_response_flight_and_journal() {
    let journal = tmp("trace.journal");
    std::fs::remove_file(&journal).ok();
    let cfg = ServeConfig { journal: Some(journal.clone()), ..serve_cfg() };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).expect("connect");

    // Caller-supplied id (uppercase in, normalized lowercase out).
    let (status, text) = client
        .post_with_header(
            "/v1/classify",
            "{\"nodes\": [1, 2, 3]}",
            ("x-mqo-trace-id", "00F1E2D3C4B5A697"),
        )
        .expect("traced classify");
    assert!(status.contains("200"), "got {status}");
    assert_eq!(
        client.last_header("x-mqo-trace-id"),
        Some("00f1e2d3c4b5a697"),
        "response header echoes the id"
    );
    let response: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(response.get("trace").and_then(|t| t.as_str()), Some("00f1e2d3c4b5a697"));

    // W3C traceparent: first 16 hex of the 32-hex trace-id field.
    let (status, text) = client
        .post_with_header(
            "/v1/classify",
            "{\"node\": 5}",
            ("traceparent", "00-abcdef0123456789aaaaaaaaaaaaaaaa-b7ad6b7169203331-01"),
        )
        .expect("traceparent classify");
    assert!(status.contains("200"), "got {status}");
    let response: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(response.get("trace").and_then(|t| t.as_str()), Some("abcdef0123456789"));

    // No header at all: a 16-hex id is minted.
    let (status, text) = client.post("/v1/classify", "{\"node\": 6}").expect("plain classify");
    assert!(status.contains("200"), "got {status}");
    let response: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let minted = response.get("trace").and_then(|t| t.as_str()).expect("minted trace");
    assert_eq!(minted.len(), 16, "minted id {minted:?}");
    assert!(minted.bytes().all(|b| b.is_ascii_hexdigit()), "minted id {minted:?}");

    // A client error is tail-sampled into the flight error ring, with
    // its own echoed trace id.
    let (status, text) = client
        .post_with_header("/v1/classify", "not json", ("x-mqo-trace-id", "aaaabbbbccccdddd"))
        .expect("bad classify");
    assert!(status.contains("400"), "got {status}");
    let response: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(response.get("trace").and_then(|t| t.as_str()), Some("aaaabbbbccccdddd"));

    // The flight recorder retains the traced request with a causally
    // well-formed span tree: request → query → llm_call.
    let (status, text) = http_get(addr, "/v1/debug/flight").unwrap();
    assert!(status.contains("200"), "got {status}");
    let flight: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let slow = flight.get("slow").and_then(|s| s.as_array()).expect("slow ring");
    let entry = slow
        .iter()
        .find(|e| e.get("trace").and_then(|t| t.as_str()) == Some("00f1e2d3c4b5a697"))
        .expect("traced request retained in the slow ring");
    assert_eq!(entry.get("status").and_then(|s| s.as_u64()), Some(200));
    let spans = entry.get("spans").and_then(|s| s.as_array()).expect("entry spans");
    let request_id = spans
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("request"))
        .and_then(|s| s.get("id").and_then(|i| i.as_u64()))
        .expect("request span");
    let query_ids: Vec<u64> = spans
        .iter()
        .filter(|s| {
            s.get("name").and_then(|n| n.as_str()) == Some("query")
                && s.get("parent").and_then(|p| p.as_u64()) == Some(request_id)
        })
        .map(|s| s.get("id").and_then(|i| i.as_u64()).unwrap())
        .collect();
    assert_eq!(query_ids.len(), 3, "one query span per node under the request span");
    let llm_calls = spans
        .iter()
        .filter(|s| s.get("name").and_then(|n| n.as_str()) == Some("llm_call"))
        .filter(|s| query_ids.contains(&s.get("parent").and_then(|p| p.as_u64()).unwrap_or(0)))
        .count();
    assert!(llm_calls >= 1, "llm_call spans hang off query spans");
    let errors = flight.get("errors").and_then(|e| e.as_array()).expect("error ring");
    let bad = errors
        .iter()
        .find(|e| e.get("trace").and_then(|t| t.as_str()) == Some("aaaabbbbccccdddd"))
        .expect("400 retained in the error ring");
    assert_eq!(bad.get("status").and_then(|s| s.as_u64()), Some(400));

    server.drain();
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(
        journal_text.contains("\"trace\":\"00f1e2d3c4b5a697\""),
        "journal lines carry the trace id"
    );
    std::fs::remove_file(&journal).ok();
}

/// `/v1/slo` tracks per-tenant windows; a clean run burns no error
/// budget and the registry exports the per-tenant series.
#[test]
fn slo_endpoint_reports_clean_burn_for_served_tenants() {
    // A 10s latency objective nothing breaches in a sim-backed test.
    let cfg = ServeConfig { slo_p99_ms: Some(10_000), ..serve_cfg() };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 2, 8);
    let addr = server.addr();

    let (status, _) = classify(addr, "{\"nodes\": [1, 2], \"tenant\": \"acme\"}");
    assert!(status.contains("200"), "got {status}");
    let (status, _) = classify(addr, "{\"node\": 3, \"tenant\": \"acme\"}");
    assert!(status.contains("200"), "got {status}");
    let (status, _) = classify(addr, "{\"node\": 4}");
    assert!(status.contains("200"), "got {status}");

    let (status, text) = http_get(addr, "/v1/slo").unwrap();
    assert!(status.contains("200"), "got {status}");
    let slo: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(slo.get("p99_target_micros").and_then(|p| p.as_u64()), Some(10_000_000));
    let tenants = slo.get("tenants").and_then(|t| t.as_array()).expect("tenants");
    let acme = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(|n| n.as_str()) == Some("acme"))
        .expect("acme tracked");
    let short = acme.get("short").expect("short window");
    assert_eq!(short.get("good").and_then(|g| g.as_u64()), Some(2), "2 acme requests");
    assert_eq!(short.get("bad").and_then(|b| b.as_u64()), Some(0));
    assert_eq!(short.get("burn_rate").and_then(|b| b.as_f64()), Some(0.0));
    assert!(
        tenants.iter().any(|t| t.get("tenant").and_then(|n| n.as_str()) == Some("default")),
        "untagged requests track under the default tenant"
    );

    let (status, text) = http_get(addr, "/metrics").unwrap();
    assert!(status.contains("200"), "got {status}");
    assert!(text.contains("mqo_slo_good_total{tenant=\"acme\"} 2"), "got:\n{text}");
    assert!(
        text.contains(
            "mqo_server_request_micros_count{route=\"/v1/classify\",tenant=\"acme\"} 2"
        ),
        "labeled request histogram, got:\n{text}"
    );
    server.drain();
}

/// A request arriving with `x-mqo-deadline-ms: 1` under a 30ms latency
/// fault cannot finish in time: the server answers `504`, the request
/// bills zero tokens, and the cost ledger still conserves — a discarded
/// late completion surfaces as unattributed spend, never as billing.
#[test]
fn expired_deadline_answers_504_bills_zero_and_conserves() {
    let cfg = ServeConfig {
        faults: Some("latency=1.0,latency-micros=30000".into()),
        cache_cap: 0,
        ..serve_cfg()
    };
    let engine = Engine::new(bundle(), cfg).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 4);
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).expect("connect");

    let (status, text) = client
        .post_with_header("/v1/classify", &nodes_json(&[1, 2, 3]), ("x-mqo-deadline-ms", "1"))
        .expect("deadlined classify");
    assert!(status.contains("504"), "got {status}: {text}");
    let body: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    assert_eq!(body.get("error").and_then(|e| e.as_str()), Some("deadline exceeded"));
    let stage = body.get("stage").and_then(|s| s.as_str()).expect("504 names its stage");
    assert!(["queue", "admitted", "executing"].contains(&stage), "unexpected stage {stage:?}");

    // Nothing was billed, and the ledger's conservation identity holds:
    // rendered − pruned − cache-saved − starved − failed == billed for
    // every round. Tokens metered by a discarded completion show up as
    // non-negative unattributed spend, not as billing.
    let report = engine.ledger().report();
    assert_eq!(report.total.billed_tokens, 0, "an expired request bills nothing");
    assert!(report.total.conserves(), "ledger conservation broke: {report:?}");
    assert!(report.rounds.iter().all(|r| r.conserves()), "round conservation broke");
    assert!(
        report.unattributed(engine.totals().prompt_tokens) >= 0,
        "unattributed spend went negative"
    );

    // The expiry is visible in stats and metrics.
    let (_, text) = http_get(addr, "/v1/stats").unwrap();
    let stats: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let expired = stats
        .get("overload")
        .and_then(|o| o.get("deadline_expired"))
        .and_then(|d| d.as_u64())
        .expect("stats report overload.deadline_expired");
    assert!(expired >= 1, "the 504 must be counted, saw {expired}");
    let (_, text) = http_get(addr, "/metrics").unwrap();
    let metric: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("mqo_deadline_expired_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("mqo_deadline_expired_total exported");
    assert!(metric >= 1, "metrics must count the expiry");
    server.drain();
}

/// Two slow-loris clients trickling request bodies must not starve the
/// server: `/v1/healthz` and classify answer promptly from fresh
/// connections while the stalled sockets sit half-written.
#[test]
fn stalled_clients_leave_healthz_responsive() {
    use std::io::Write;
    let engine = Engine::new(bundle(), serve_cfg()).map(Arc::new).unwrap();
    let server = start(Arc::clone(&engine), 1, 4);
    let addr = server.addr();

    // Each stalled client promises a 400-byte body and sends 11 bytes.
    let mut stalled = Vec::new();
    for _ in 0..2 {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "POST /v1/classify HTTP/1.1\r\nHost: mqo\r\nContent-Type: application/json\r\n\
             Content-Length: 400\r\n\r\n{{\"nodes\": ["
        )
        .expect("send partial request");
        s.flush().unwrap();
        stalled.push(s);
    }
    std::thread::sleep(Duration::from_millis(50));

    // Fresh connections are served while the stalled ones hold nothing.
    let t0 = std::time::Instant::now();
    let (status, _) = http_get(addr, "/v1/healthz").expect("healthz while stalled");
    assert!(status.contains("200"), "got {status}");
    let (status, _) = classify(addr, "{\"node\": 1}");
    assert!(status.contains("200"), "got {status}");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "stalled clients delayed live traffic by {:?}",
        t0.elapsed()
    );
    drop(stalled);
    server.drain();
}

/// With the brown-out thresholds floored, every admitted request runs
/// degraded: pruned neighbor-free prompts, `"degraded": true` in the
/// response, fewer billed tokens than the full-prompt run, and the
/// transition visible in stats and metrics.
#[test]
fn brownout_serves_degraded_responses_and_bills_fewer_tokens() {
    let nodes: Vec<u32> = (0..8).collect();
    // Reference arm: same nodes through a full-prompt engine.
    let full_engine =
        Engine::new(bundle(), ServeConfig { cache_cap: 0, ..serve_cfg() }).unwrap();
    full_engine.process(&nodes.iter().map(|n| NodeId(*n)).collect::<Vec<_>>(), "default");
    let full_billed = full_engine.totals().prompt_tokens;
    assert!(full_billed > 0);

    // Brown-out arm: enter at pressure 0 (always), never exit.
    let engine = Engine::new(bundle(), ServeConfig { cache_cap: 0, ..serve_cfg() })
        .map(Arc::new)
        .unwrap();
    let overload = OverloadConfig {
        brownout_enter_milli: 0,
        brownout_exit_milli: 0,
        ..Default::default()
    };
    let server = start_with(Arc::clone(&engine), 2, 8, overload);
    let addr = server.addr();

    let (status, response) = classify(addr, &nodes_json(&nodes));
    assert!(status.contains("200"), "got {status}");
    assert_eq!(
        response.get("degraded").and_then(|d| d.as_bool()),
        Some(true),
        "brown-out must flag the response degraded"
    );
    assert_eq!(records_of(&response).len(), nodes.len(), "degraded batches still answer");
    let degraded_billed = engine.totals().prompt_tokens;
    assert!(
        degraded_billed < full_billed,
        "pruned prompts must bill fewer tokens ({degraded_billed} vs {full_billed})"
    );

    let (_, text) = http_get(addr, "/v1/stats").unwrap();
    let stats: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let degraded = stats
        .get("overload")
        .and_then(|o| o.get("degraded"))
        .and_then(|d| d.as_u64())
        .expect("stats report overload.degraded");
    assert!(degraded >= 1, "degraded work must be counted, saw {degraded}");
    let (_, text) = http_get(addr, "/metrics").unwrap();
    assert!(text.contains("mqo_brownout 1"), "brown-out gauge must read 1, got:\n{text}");
    let transitions: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("mqo_brownout_transitions_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("transition counter exported");
    assert!(transitions >= 1, "the enter transition must be counted");
    server.drain();
}

/// The trace id rides the batch's `QueryCost` telemetry events, so the
/// cost of a served request is attributable from any event sink.
#[test]
fn query_cost_events_carry_the_request_trace() {
    use mqo_obs::{Event, Recorder};
    let engine = Engine::new(bundle(), serve_cfg()).unwrap();
    let collector = Recorder::new();
    let batch =
        engine.process_traced(&[NodeId(3)], "default", "deadbeefdeadbeef", Some(&collector));
    assert_eq!(batch.trace, "deadbeefdeadbeef");
    let traced_costs = collector
        .events()
        .iter()
        .filter(|e| matches!(e, Event::QueryCost { trace, .. } if trace == "deadbeefdeadbeef"))
        .count();
    assert_eq!(traced_costs, 1, "the query's cost event carries the trace id");
}
