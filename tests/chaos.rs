//! Chaos tests: seeded fault schedules driven through the full
//! resilience stack, crash-safe journaling, and cost-ledger conservation
//! under faults, retries, and breaker trips.
//!
//! Every wait in these tests runs on a [`ManualClock`]: latency spikes,
//! backoff, rate-limit pacing, and breaker cooldowns advance simulated
//! time, so the whole suite finishes in real milliseconds.

use mqo_core::journal::record_to_json;
use mqo_core::predictor::KhopRandom;
use mqo_core::{Executor, LabelStore, RunHeader, RunJournal};
use mqo_data::{dataset, DatasetBundle, DatasetId};
use mqo_fault::{FaultConfig, FaultSchedule, FaultyLlm};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{
    LanguageModel, ModelProfile, ResilienceConfig, ResilientLlm, RetryingLlm, ScriptedLlm,
    SimLlm, ValidatingLlm,
};
use mqo_obs::{CostLedger, ManualClock, WaitClock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

fn world(queries: usize) -> (DatasetBundle, LabeledSplit, SimLlm) {
    let bundle = dataset(DatasetId::Cora, Some(0.3), 81);
    let split = LabeledSplit::generate(
        &bundle.tag,
        SplitConfig::PerClass { per_class: 20, num_queries: queries },
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let llm = SimLlm::new(
        bundle.lexicon.clone(),
        bundle.tag.class_names().to_vec(),
        ModelProfile::gpt35(),
    );
    (bundle, split, llm)
}

/// The CLI's transport + resilience + validation + retry stack (cache
/// omitted: chaos tests want every call to reach the fault injector).
fn stack<L: LanguageModel>(
    inner: L,
    fault_seed: u64,
    cfg: FaultConfig,
    clock: &Arc<ManualClock>,
    class_names: Vec<String>,
) -> RetryingLlm<ValidatingLlm<ResilientLlm<FaultyLlm<L>>>> {
    let wait: Arc<dyn WaitClock> = clock.clone();
    let faulty = FaultyLlm::new(inner, FaultSchedule::seeded(fault_seed, cfg), wait.clone());
    let resilient = ResilientLlm::new(
        faulty,
        ResilienceConfig { seed: fault_seed, ..ResilienceConfig::default() },
        wait,
    );
    RetryingLlm::new(ValidatingLlm::new(resilient, class_names), 3)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mqo-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn dump(records: &[mqo_core::QueryRecord]) -> Vec<String> {
    let mut sorted: Vec<_> = records.to_vec();
    sorted.sort_by_key(|r| (r.node.0, r.prompt_tokens));
    sorted.iter().map(|r| serde_json::to_string(&record_to_json(r)).unwrap()).collect()
}

/// A 10%-error / 5%-malformed run completes every query through the
/// resilience stack, and the cost ledger still conserves to the token.
#[test]
fn chaos_run_completes_with_conserved_ledger() {
    let (bundle, split, sim) = world(120);
    let clock = Arc::new(ManualClock::new());
    let cfg = FaultConfig {
        transient_rate: 0.10,
        malformed_rate: 0.05,
        rate_limited_rate: 0.03,
        latency_rate: 0.03,
        ..FaultConfig::default()
    };
    let llm = stack(sim, 17, cfg, &clock, bundle.tag.class_names().to_vec());
    let ledger = CostLedger::new();
    let exec = Executor::new(&bundle.tag, &llm, 4, 1).with_sink(&ledger).with_degrade();
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();

    assert_eq!(out.records.len(), 120, "degraded mode must answer every query");
    let report = ledger.report();
    assert!(report.total.conserves(), "ledger must conserve under faults: {report}");
    let billed = llm.meter().totals().prompt_tokens;
    assert!(
        report.unattributed(billed) >= 0,
        "attribution can never exceed the meter ({billed} billed)"
    );
    // Failed queries never bill: their tokens land in the failed bucket
    // and their records carry no spend.
    for r in out.records.iter().filter(|r| r.failed()) {
        assert_eq!(r.prompt_tokens, 0, "failed query {:?} claims tokens", r.node);
    }
    assert!(out.accuracy() > 0.4, "accuracy survived the chaos: {}", out.accuracy());
}

/// A hard outage aborts a non-degraded run mid-campaign; resuming the
/// journal finishes the run and lands on exactly the records a clean,
/// never-crashed run produces. Resuming the *completed* journal replays
/// everything without a single model call.
#[test]
fn aborted_run_resumes_to_the_clean_run_records() {
    let (bundle, split, sim) = world(60);
    let header = RunHeader {
        dataset: bundle.tag.name().to_string(),
        method: "1hop".to_string(),
        seed: 1,
        queries: 60,
        boost: false,
        budget: None,
    };
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
    let path = tmp("outage-resume.jsonl");

    // The reference: the same campaign through the same stack, with no
    // faults and no crash. (The stack shape matters — format retries
    // lengthen prompts, so the crashed and clean legs must share it.)
    let clean = {
        let clock = Arc::new(ManualClock::new());
        let llm =
            stack(sim, 0, FaultConfig::default(), &clock, bundle.tag.class_names().to_vec());
        let exec = Executor::new(&bundle.tag, &llm, 4, 1);
        exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap()
    };

    // Crash leg: a permanent outage from call 30 on; without degraded
    // mode the retries drain and the run aborts, journal half-written.
    let journaled = {
        let (_, _, sim) = world(60);
        let clock = Arc::new(ManualClock::new());
        let cfg = FaultConfig { outage: Some((30, u64::MAX - 30)), ..FaultConfig::default() };
        let llm = stack(sim, 5, cfg, &clock, bundle.tag.class_names().to_vec());
        let journal = RunJournal::create(&path, &header).unwrap();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1).with_journal(&journal);
        let err = exec.run_all(&predictor, &labels, split.queries(), |_| false);
        assert!(err.is_err(), "the outage must abort the non-degraded run");
        let recorded = journal.recorded();
        assert!(recorded > 0 && recorded < 60, "crash left a partial journal: {recorded}");
        recorded
    };

    // Resume leg: clean transport, journal replayed, remainder executed.
    let resumed = {
        let (_, _, sim) = world(60);
        let clock = Arc::new(ManualClock::new());
        let llm =
            stack(sim, 0, FaultConfig::default(), &clock, bundle.tag.class_names().to_vec());
        let journal = RunJournal::resume(&path, &header).unwrap();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1).with_journal(&journal).with_degrade();
        let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        assert_eq!(journal.replayed(), journaled, "every journaled record replays");
        out
    };
    assert_eq!(dump(&resumed.records), dump(&clean.records), "resume must be bit-identical");

    // Replay-only leg: the journal is now complete, so an empty scripted
    // model proves zero model calls and zero re-billed tokens.
    let replayed = {
        let scripted = ScriptedLlm::new(Vec::<&str>::new());
        let journal = RunJournal::resume(&path, &header).unwrap();
        let exec =
            Executor::new(&bundle.tag, &scripted, 4, 1).with_journal(&journal).with_degrade();
        let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        assert_eq!(journal.replayed(), 60);
        assert_eq!(scripted.meter().totals().requests, 0, "replay must not touch the model");
        assert_eq!(scripted.meter().totals().prompt_tokens, 0, "replay re-bills nothing");
        out
    };
    assert_eq!(dump(&replayed.records), dump(&clean.records));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ledger conservation is seed-independent: whatever mix of
    /// transients, rate limits, malformed replies, and outage windows a
    /// schedule throws (including ones long enough to trip the breaker),
    /// every query gets a final record, conservation holds, and the
    /// attributed spend never exceeds the meter.
    #[test]
    fn ledger_conserves_under_any_fault_schedule(
        fault_seed in 0u64..1_000_000,
        transient in 0.0f64..0.30,
        malformed in 0.0f64..0.15,
        rate_limited in 0.0f64..0.15,
        outage_start in 0u64..80,
        outage_len in 0u64..40,
    ) {
        let (bundle, split, sim) = world(40);
        let clock = Arc::new(ManualClock::new());
        let cfg = FaultConfig {
            transient_rate: transient,
            malformed_rate: malformed,
            rate_limited_rate: rate_limited,
            outage: Some((outage_start, outage_len)),
            ..FaultConfig::default()
        };
        let llm = stack(sim, fault_seed, cfg, &clock, bundle.tag.class_names().to_vec());
        let ledger = CostLedger::new();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1).with_sink(&ledger).with_degrade();
        let labels = LabelStore::from_split(&bundle.tag, &split);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
        let out = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();

        prop_assert_eq!(out.records.len(), 40);
        let report = ledger.report();
        prop_assert!(report.total.conserves(), "conservation violated: {}", report);
        let billed = llm.meter().totals().prompt_tokens;
        prop_assert!(report.unattributed(billed) >= 0);
        prop_assert_eq!(report.total.queries, 40);
        for r in out.records.iter().filter(|r| r.failed()) {
            prop_assert_eq!(r.prompt_tokens, 0);
            prop_assert!(!r.correct, "failed queries never score");
        }
    }
}
