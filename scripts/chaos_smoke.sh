#!/usr/bin/env bash
# Chaos smoke: the resilience stack and crash-safe resume, end to end on
# the release binary.
#
#   scripts/chaos_smoke.sh
#
# Four gated legs:
#
#   1. A seeded 10%-error / 5%-malformed run must complete every query
#      (degraded mode), and its Chrome trace + cost ledger must pass
#      obs_check — span nesting intact (backoff/retry under llm_call)
#      and token conservation to the token.
#   2. A journaled run killed mid-campaign (--fault-kill-after) must die
#      with the fault injector's exit code and leave a non-empty,
#      resumable journal.
#   3. `--resume` must finish that campaign and produce record-for-record
#      the same dump as a never-crashed run of the same seed.
#   4. Resuming the *completed* journal must replay everything: zero
#      requests, zero re-billed tokens, identical records again.
#
# Everything is seeded, so each gate is exact — no tolerances.
set -euo pipefail
cd "$(dirname "$0")/.."

KILL_EXIT=86 # mqo_fault::KILL_EXIT_CODE
OUT=target/chaos
mkdir -p "$OUT"

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin obs_check

echo "==> leg 1: chaos run (10% transient, 5% malformed) completes and conserves"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --faults error=0.10,malformed=0.05 \
  --journal "$OUT/chaos.jsonl" \
  --trace-chrome "$OUT/chaos_trace.json" --cost-json "$OUT/chaos_cost.json" \
  --stats-json "$OUT/chaos_stats.json"
./target/release/obs_check "$OUT/chaos_trace.json" "$OUT/chaos_cost.json"

echo "==> leg 2: kill the run mid-campaign"
rc=0
./target/release/mqo classify cora \
  --queries 120 --seed 42 --fault-kill-after 60 \
  --journal "$OUT/killed.jsonl" >"$OUT/killed.log" 2>&1 || rc=$?
if [[ "$rc" -ne "$KILL_EXIT" ]]; then
  echo "FAIL: expected kill exit $KILL_EXIT, got $rc" >&2
  exit 1
fi
lines=$(wc -l <"$OUT/killed.jsonl")
if [[ "$lines" -lt 2 ]]; then
  echo "FAIL: killed journal holds no records ($lines lines)" >&2
  exit 1
fi
echo "    killed at exit $rc with $((lines - 1)) records journaled"

echo "==> leg 3: resume matches the never-crashed run"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --dump-records "$OUT/clean_records.jsonl" >/dev/null
./target/release/mqo classify cora \
  --queries 120 --seed 42 --journal "$OUT/killed.jsonl" --resume \
  --dump-records "$OUT/resumed_records.jsonl" >/dev/null
diff "$OUT/clean_records.jsonl" "$OUT/resumed_records.jsonl" >/dev/null || {
  echo "FAIL: resumed records differ from the clean run" >&2
  exit 1
}
echo "    resumed records are bit-identical to the clean run"

echo "==> leg 4: replaying the completed journal re-bills nothing"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --journal "$OUT/killed.jsonl" --resume \
  --dump-records "$OUT/replayed_records.jsonl" \
  --stats-json "$OUT/replay_stats.json" >/dev/null
grep -q '"requests_sent": 0' "$OUT/replay_stats.json" || {
  echo "FAIL: full replay still sent requests" >&2
  cat "$OUT/replay_stats.json" >&2
  exit 1
}
grep -q '"tokens_sent": 0' "$OUT/replay_stats.json" || {
  echo "FAIL: full replay re-billed tokens" >&2
  cat "$OUT/replay_stats.json" >&2
  exit 1
}
diff "$OUT/clean_records.jsonl" "$OUT/replayed_records.jsonl" >/dev/null || {
  echo "FAIL: replayed records differ from the clean run" >&2
  exit 1
}
echo "    full replay: 0 requests, 0 tokens, records identical"

echo "chaos smoke: PASS"
