#!/usr/bin/env bash
# Chaos smoke: the resilience stack and crash-safe resume, end to end on
# the release binary.
#
#   scripts/chaos_smoke.sh
#
# Five gated legs:
#
#   1. A seeded 10%-error / 5%-malformed run must complete every query
#      (degraded mode), and its Chrome trace + cost ledger must pass
#      obs_check — span nesting intact (backoff/retry under llm_call)
#      and token conservation to the token.
#   2. A journaled run killed mid-campaign (--fault-kill-after) must die
#      with the fault injector's exit code and leave a non-empty,
#      resumable journal.
#   3. `--resume` must finish that campaign and produce record-for-record
#      the same dump as a never-crashed run of the same seed.
#   4. Resuming the *completed* journal must replay everything: zero
#      requests, zero re-billed tokens, identical records again.
#   5. A server fronted by the seeded network-chaos proxy (connection
#      resets, slow-loris stalls, truncated responses, keep-alive aborts)
#      must keep serving: the direct listener answers healthz 200 for the
#      whole burst, injected faults land in /metrics, the drain is clean,
#      and the server log holds no panics.
#
# Everything is seeded, so each gate is exact — no tolerances.
set -euo pipefail
cd "$(dirname "$0")/.."

KILL_EXIT=86 # mqo_fault::KILL_EXIT_CODE
OUT=target/chaos
mkdir -p "$OUT"

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin obs_check --bin loadgen

echo "==> leg 1: chaos run (10% transient, 5% malformed) completes and conserves"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --faults error=0.10,malformed=0.05 \
  --journal "$OUT/chaos.jsonl" \
  --trace-chrome "$OUT/chaos_trace.json" --cost-json "$OUT/chaos_cost.json" \
  --stats-json "$OUT/chaos_stats.json"
./target/release/obs_check "$OUT/chaos_trace.json" "$OUT/chaos_cost.json"

echo "==> leg 2: kill the run mid-campaign"
rc=0
./target/release/mqo classify cora \
  --queries 120 --seed 42 --fault-kill-after 60 \
  --journal "$OUT/killed.jsonl" >"$OUT/killed.log" 2>&1 || rc=$?
if [[ "$rc" -ne "$KILL_EXIT" ]]; then
  echo "FAIL: expected kill exit $KILL_EXIT, got $rc" >&2
  exit 1
fi
lines=$(wc -l <"$OUT/killed.jsonl")
if [[ "$lines" -lt 2 ]]; then
  echo "FAIL: killed journal holds no records ($lines lines)" >&2
  exit 1
fi
echo "    killed at exit $rc with $((lines - 1)) records journaled"

echo "==> leg 3: resume matches the never-crashed run"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --dump-records "$OUT/clean_records.jsonl" >/dev/null
./target/release/mqo classify cora \
  --queries 120 --seed 42 --journal "$OUT/killed.jsonl" --resume \
  --dump-records "$OUT/resumed_records.jsonl" >/dev/null
diff "$OUT/clean_records.jsonl" "$OUT/resumed_records.jsonl" >/dev/null || {
  echo "FAIL: resumed records differ from the clean run" >&2
  exit 1
}
echo "    resumed records are bit-identical to the clean run"

echo "==> leg 4: replaying the completed journal re-bills nothing"
./target/release/mqo classify cora \
  --queries 120 --seed 42 --journal "$OUT/killed.jsonl" --resume \
  --dump-records "$OUT/replayed_records.jsonl" \
  --stats-json "$OUT/replay_stats.json" >/dev/null
grep -q '"requests_sent": 0' "$OUT/replay_stats.json" || {
  echo "FAIL: full replay still sent requests" >&2
  cat "$OUT/replay_stats.json" >&2
  exit 1
}
grep -q '"tokens_sent": 0' "$OUT/replay_stats.json" || {
  echo "FAIL: full replay re-billed tokens" >&2
  cat "$OUT/replay_stats.json" >&2
  exit 1
}
diff "$OUT/clean_records.jsonl" "$OUT/replayed_records.jsonl" >/dev/null || {
  echo "FAIL: replayed records differ from the clean run" >&2
  exit 1
}
echo "    full replay: 0 requests, 0 tokens, records identical"

echo "==> leg 5: network chaos — serving survives resets, stalls, and aborts"
PROXY_ADDR_FILE="$OUT/chaos_proxy_addr"
DIRECT_ADDR_FILE="$OUT/chaos_direct_addr"
rm -f "$PROXY_ADDR_FILE" "$DIRECT_ADDR_FILE"
./target/release/mqo serve cora \
  --addr 127.0.0.1:0 --addr-file "$PROXY_ADDR_FILE" \
  --chaos reset=0.15,stall=0.05,partial=0.15,abort=0.15,stall-millis=50 \
  --chaos-seed 42 --chaos-addr-file "$DIRECT_ADDR_FILE" \
  --workers 4 --queue-cap 32 --queries 120 --seed 42 \
  >"$OUT/chaos_serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do
  [ -s "$PROXY_ADDR_FILE" ] && [ -s "$DIRECT_ADDR_FILE" ] && break
  sleep 0.1
done
if [[ ! -s "$PROXY_ADDR_FILE" || ! -s "$DIRECT_ADDR_FILE" ]]; then
  echo "FAIL: chaos server never bound" >&2
  cat "$OUT/chaos_serve.log" >&2
  exit 1
fi
DIRECT=$(cat "$DIRECT_ADDR_FILE")
DIRECT_HOST=${DIRECT%:*}
DIRECT_PORT=${DIRECT##*:}

# One HTTP request to the direct (fault-free) listener over /dev/tcp.
http_direct() { # METHOD PATH [BODY]
  local method=$1 path=$2 body=${3:-}
  exec 3<>"/dev/tcp/$DIRECT_HOST/$DIRECT_PORT"
  printf '%s %s HTTP/1.1\r\nHost: mqo\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$path" "${#body}" "$body" >&3
  cat <&3
  exec 3>&-
}

# Burst through the faulty proxy while probing the direct listener:
# healthz must answer 200 the whole time, or chaos starved the server.
./target/release/loadgen --addr-file "$PROXY_ADDR_FILE" \
  --requests 600 --concurrency 8 --batch 2 --seed 42 \
  >"$OUT/chaos_loadgen.log" 2>&1 &
LOADGEN_PID=$!
while kill -0 "$LOADGEN_PID" 2>/dev/null; do
  status=$(http_direct GET /v1/healthz | head -1)
  case "$status" in
    *200*) ;;
    *)
      echo "FAIL: healthz degraded under network chaos: $status" >&2
      exit 1
      ;;
  esac
  sleep 0.2
done
wait "$LOADGEN_PID" || {
  echo "FAIL: loadgen through the chaos proxy" >&2
  cat "$OUT/chaos_loadgen.log" >&2
  exit 1
}
status=$(http_direct GET /v1/healthz | head -1)
case "$status" in
  *200*) ;;
  *)
    echo "FAIL: healthz unhealthy after the chaos burst: $status" >&2
    exit 1
    ;;
esac

# The injected faults are visible in metrics (seeded, so some fired).
http_direct GET /metrics >"$OUT/chaos_metrics.txt"
grep -Eq 'mqo_chaos_injected_total\{action="[a-z_]+"\} [1-9]' "$OUT/chaos_metrics.txt" || {
  echo "FAIL: no injected chaos fault surfaced in /metrics" >&2
  grep 'mqo_chaos' "$OUT/chaos_metrics.txt" >&2 || true
  exit 1
}

# Clean drain through the direct listener, and a panic-free log.
http_direct POST /v1/drain '{}' | head -1 | grep -q 202 || {
  echo "FAIL: drain refused after chaos" >&2
  exit 1
}
wait "$SERVE_PID" || {
  echo "FAIL: chaos-fronted server exited non-zero" >&2
  cat "$OUT/chaos_serve.log" >&2
  exit 1
}
if grep -qi panic "$OUT/chaos_serve.log"; then
  echo "FAIL: server panicked under network chaos" >&2
  grep -i panic "$OUT/chaos_serve.log" >&2
  exit 1
fi
injected=$(grep -Eo 'mqo_chaos_injected_total\{action="[a-z_]+"\} [0-9]+' \
  "$OUT/chaos_metrics.txt" | awk '{sum += $2} END {print sum}')
echo "    survived the burst with $injected injected fault(s), healthz 200 throughout"

echo "chaos smoke: PASS"
