#!/usr/bin/env bash
# Scheduler smoke: the event-driven execution core's two contracts, end
# to end on a real seeded workload.
#
#   1. Determinism — the same boosted Cora run through the cue-gated
#      policy twice under --deterministic (width 4, cache off so the
#      model sees every call) must dump byte-identical record files.
#      Any scheduler change that lets pool width, lock timing, or
#      completion order leak into results fails this diff.
#   2. Invariants under reordering — a traced deterministic wave run AND
#      a traced free-running run (out-of-order completions folding
#      pseudo-labels mid-flight) both go through obs_check: span nesting
#      with an intact run → round/wave → query → llm_call causal chain,
#      and a cost ledger whose conservation identity holds.
#
# Artifacts land under target/sched/ for CI to upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/sched
mkdir -p "$OUT"

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin obs_check

echo "==> determinism: seeded boosted workload, cue-gated scheduler, twice"
for leg in a b; do
  ./target/release/mqo classify cora \
    --queries 120 --boost --deterministic --threads 4 --seed 42 --no-cache \
    --dump-records "$OUT/records_$leg.jsonl" > "$OUT/run_$leg.log"
done
if ! cmp "$OUT/records_a.jsonl" "$OUT/records_b.jsonl"; then
  echo "sched_smoke: FAIL — deterministic record dumps differ byte-wise" >&2
  exit 1
fi
echo "record dumps byte-identical ($(wc -l < "$OUT/records_a.jsonl") records)"

echo "==> invariants: traced deterministic wave run"
./target/release/mqo classify cora \
  --queries 60 --boost --deterministic --threads 4 --seed 42 --no-cache \
  --trace-chrome "$OUT/wave_trace.json" --cost-json "$OUT/wave_cost.json" > /dev/null
./target/release/obs_check "$OUT/wave_trace.json" "$OUT/wave_cost.json"

echo "==> invariants: traced free-running run (out-of-order completion)"
./target/release/mqo classify cora \
  --queries 60 --boost --threads 4 --seed 43 --no-cache \
  --trace-chrome "$OUT/free_trace.json" --cost-json "$OUT/free_cost.json" > /dev/null
./target/release/obs_check "$OUT/free_trace.json" "$OUT/free_cost.json"

echo "sched smoke: PASS"
