#!/usr/bin/env bash
# Deterministic cache-efficiency smoke bench + regression gate.
#
#   scripts/bench_smoke.sh            # run and gate against BENCH_PR2.json
#   scripts/bench_smoke.sh --update   # run and (re)write BENCH_PR2.json
#
# The workload replays a fixed Cora query set three times through the
# simulated LLM with the response cache on, so tokens_sent and serve_rate
# are bit-deterministic (in-flight dedup guarantees one send per unique
# prompt regardless of thread interleaving). The gate fails when metered
# tokens rise or the serve rate drops by more than 5% vs the committed
# baseline — i.e. when a change quietly breaks the cache.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR2.json
CURRENT=target/bench_smoke_current.json

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin bench_gate

echo "==> smoke workload (cora x3, cached, batched)"
./target/release/mqo classify cora \
  --queries 120 --repeat 3 --seed 42 --threads 4 --batch 16 \
  --stats-json "$CURRENT"

if [[ "${1:-}" == "--update" ]]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
else
  ./target/release/bench_gate "$BASELINE" "$CURRENT"
fi
