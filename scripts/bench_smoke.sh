#!/usr/bin/env bash
# Deterministic cache-efficiency smoke bench + regression gate, plus the
# observability artifact check.
#
#   scripts/bench_smoke.sh            # run and gate against BENCH_PR4.json
#   scripts/bench_smoke.sh --update   # run and (re)write BENCH_PR4.json
#
# The gated workload replays a fixed Cora query set three times through
# the simulated LLM with the response cache on, so tokens_sent and
# serve_rate are bit-deterministic (in-flight dedup guarantees one send
# per unique prompt regardless of thread interleaving). The gate fails
# when metered tokens rise or the serve rate drops by more than 5% vs the
# committed baseline — i.e. when a change quietly breaks the cache.
#
# The second, boosted run exercises the observability layer end to end:
# it must produce a loadable Chrome trace with an intact causal chain and
# a cost ledger whose conservation identity holds (obs_check exits
# non-zero otherwise). Both artifacts are left under target/ for CI to
# upload.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR4.json
CURRENT=target/bench_smoke_current.json
OBS_TRACE=target/obs_trace.json
OBS_COST=target/obs_cost.json

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin bench_gate --bin obs_check

echo "==> smoke workload (cora x3, cached, batched)"
./target/release/mqo classify cora \
  --queries 120 --repeat 3 --seed 42 --threads 4 --batch 16 \
  --stats-json "$CURRENT"

echo "==> observability workload (cora, boosted, traced + cost ledger)"
./target/release/mqo classify cora \
  --queries 60 --boost --seed 42 \
  --trace-chrome "$OBS_TRACE" --cost-json "$OBS_COST"
./target/release/obs_check "$OBS_TRACE" "$OBS_COST"

if [[ "${1:-}" == "--update" ]]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE"
else
  ./target/release/bench_gate "$BASELINE" "$CURRENT"
fi
