#!/usr/bin/env bash
# Deterministic cache-efficiency smoke bench + regression gate, the
# observability artifact check, the serving throughput snapshot, and
# (unless BENCH_SKIP_SHARD=1) the products-scale sharded-cluster stage,
# which delegates to scripts/shard_smoke.sh for the routed-throughput
# floor and the cluster peak-RSS ceiling.
#
#   scripts/bench_smoke.sh            # run and gate against BENCH_PR10.json
#   scripts/bench_smoke.sh --update   # run and (re)write BENCH_PR10.json
#                                     # (shard_smoke --update then folds in
#                                     # the routed fields)
#
# The gated workload replays a fixed Cora query set three times through
# the simulated LLM with the response cache on, so tokens_sent and
# serve_rate are bit-deterministic (in-flight dedup guarantees one send
# per unique prompt regardless of thread interleaving). The gate fails
# when metered tokens rise or the serve rate drops by more than 5% vs the
# committed baseline — i.e. when a change quietly breaks the cache.
#
# The second, boosted run exercises the observability layer end to end:
# it must produce a loadable Chrome trace with an intact causal chain and
# a cost ledger whose conservation identity holds (obs_check exits
# non-zero otherwise). Both artifacts are left under target/ for CI to
# upload.
#
# The third stage serves the same dataset over loopback HTTP and fires a
# seeded loadgen burst over keep-alive connections with a warmup window;
# loadgen folds serve_rps / serve_p50_ms / serve_p99_ms into the stats
# snapshot, and bench_gate checks them against the baseline at
# --serve-tolerance 65 (tightened from the pre-keep-alive 90): wall-clock
# numbers still gate structure, not runner speed, but a large regression
# now fails instead of hiding inside the slack. The remaining slack
# absorbs shared-runner noise (observed run-to-run spread is roughly 2x
# on rps and p99 tails on a single-core runner), not code regressions.
# The burst is 6000 requests after a 500-request warmup: the short
# pre-PR7 burst (400) measured mostly cold-start (thread spawn, page
# faults, connection setup) and undersold steady-state by 2-3x, and a
# sub-second measured window leaves 20-30% run-to-run jitter on rps.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR10.json
CURRENT=target/bench_smoke_current.json
OBS_TRACE=target/obs_trace.json
OBS_COST=target/obs_cost.json
SERVE_ADDR=target/bench_serve_addr

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin loadgen --bin bench_gate --bin obs_check

echo "==> smoke workload (cora x3, cached, batched)"
./target/release/mqo classify cora \
  --queries 120 --repeat 3 --seed 42 --threads 4 --batch 16 \
  --stats-json "$CURRENT"

echo "==> observability workload (cora, boosted, traced + cost ledger)"
./target/release/mqo classify cora \
  --queries 60 --boost --seed 42 \
  --trace-chrome "$OBS_TRACE" --cost-json "$OBS_COST"
./target/release/obs_check "$OBS_TRACE" "$OBS_COST"

echo "==> serving workload (loopback server + seeded loadgen burst)"
rm -f "$SERVE_ADDR"
./target/release/mqo serve cora \
  --addr 127.0.0.1:0 --addr-file "$SERVE_ADDR" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 > target/bench_serve.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$SERVE_ADDR" ] && break; sleep 0.1; done
[ -s "$SERVE_ADDR" ] || { echo "bench_smoke: server never bound" >&2; exit 1; }
./target/release/loadgen --addr-file "$SERVE_ADDR" \
  --requests 6000 --warmup 500 --concurrency 8 --batch 4 --seed 42 \
  --merge-into "$CURRENT" --drain > /dev/null
wait "$SERVE_PID" || { echo "bench_smoke: server exited non-zero" >&2; exit 1; }

echo "==> overload workload (open-loop burst past saturation, self-gating)"
# loadgen --overload calibrates sustainable throughput, then offers 5x
# open-loop. It exits non-zero itself when admitted goodput hits zero, a
# 429 lacks a well-formed Retry-After in [1, 30], or the admitted p99
# breaches the (deliberately generous, runner-noise-proof) SLO — the
# point is that admitted work still finishes while the excess sheds.
# A 20ms latency fault on every LLM call makes saturation real: without
# it the simulated model absorbs any open-loop burst a single runner can
# generate and the shedding path never fires.
rm -f "$SERVE_ADDR"
./target/release/mqo serve cora \
  --addr 127.0.0.1:0 --addr-file "$SERVE_ADDR" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 --no-cache \
  --faults latency=1.0,latency-micros=20000 > target/bench_overload_serve.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$SERVE_ADDR" ] && break; sleep 0.1; done
[ -s "$SERVE_ADDR" ] || { echo "bench_smoke: overload server never bound" >&2; exit 1; }
# Concurrency must exceed the server's slots + wait room (4 + 32) or the
# closed client population itself caps the in-flight count and the wait
# room never fills — shedding would be untestable.
./target/release/loadgen --addr-file "$SERVE_ADDR" \
  --overload --requests 1200 --concurrency 48 --batch 2 --seed 42 \
  --slo-p99-ms 10000 --out target/bench_overload.json --drain
wait "$SERVE_PID" || { echo "bench_smoke: overload server exited non-zero" >&2; exit 1; }
grep -q '"shed_429": 0,' target/bench_overload.json && {
  echo "bench_smoke: a 5x overload burst shed nothing — controller asleep" >&2
  exit 1
}

if [[ "${1:-}" == "--update" ]]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $BASELINE (cache + serving fields)"
else
  ./target/release/bench_gate "$BASELINE" "$CURRENT" --serve-tolerance 65
fi

# Products-scale sharded cluster: partition, 4 workers + router, routed
# burst, cross-shard label exchange, peak-RSS ceiling + routed-rps floor.
# CI runs shard_smoke.sh as its own step and sets BENCH_SKIP_SHARD=1 here
# to avoid paying the multi-minute graph generation twice. Under
# --update the delegate folds the routed fields into the baseline the
# cp above just rewrote.
if [[ "${BENCH_SKIP_SHARD:-0}" != 1 ]]; then
  echo "==> products-scale sharded cluster (delegating to shard_smoke.sh)"
  scripts/shard_smoke.sh "${1:-}"
fi
