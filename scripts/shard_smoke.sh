#!/usr/bin/env bash
# 4-shard scale-out smoke: partition a products-calibrated TAG (>= 1M
# nodes at the default scale), serve it from four shard workers behind
# the consistent-hash router, drive a mixed-shard burst through the
# router, and verify the cross-shard pseudo-label exchange end to end:
#
#   * every worker reports its shard identity on /v1/healthz;
#   * the routed burst answers, with batches spanning shards and every
#     shard receiving node picks (loadgen --router attributes picks
#     per shard from the map);
#   * cross-shard label traffic is visible in Prometheus metrics on
#     both sides: the router's relay counters and the workers'
#     push/ingest counters all move;
#   * all workers drain cleanly, and worker 0's Chrome trace + cost
#     ledger pass obs_check;
#   * cluster peak RSS (max VmHWM across workers) and routed
#     throughput gate against BENCH_PR10.json via bench_gate
#     --routed-only. The RSS ceiling is the scale-out contract — a
#     worker quietly holding the whole graph instead of its partition
#     fails it — and the routed-rps floor catches a wedged router.
#
#   scripts/shard_smoke.sh            # run and gate against BENCH_PR10.json
#   scripts/shard_smoke.sh --update   # run and fold the routed fields
#                                     # into BENCH_PR10.json (after
#                                     # bench_smoke.sh --update wrote the
#                                     # cache/serving fields)
#
# SHARD_SMOKE_SCALE overrides the graph scale for quick local runs
# (default 0.41 ~= 1.00M nodes / 25.4M edges, the products-calibrated
# floor the acceptance demands).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR10.json
SCALE="${SHARD_SMOKE_SCALE:-0.41}"
SHARDS=4
DIR=target/shard_smoke
ROUTED="$DIR/routed.json"
# The workers need the router address at startup (they push boundary
# labels to it), and the router needs the worker addresses — so the
# script picks the router port up front and binds it last. Workers
# tolerate a not-yet-listening router: pushes fail, are counted, and
# the labels stay queued for the next exchange tick.
ROUTER_ADDR="127.0.0.1:$(( (RANDOM % 20000) + 24000 ))"

rm -rf "$DIR"
mkdir -p "$DIR"

cleanup() {
  kill "${WORKER_PIDS[@]:-}" "${ROUTER_PID:-}" 2> /dev/null || true
}
trap cleanup EXIT

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin loadgen --bin bench_gate --bin obs_check

echo "==> partitioning ogbn-products (scale $SCALE, seed 42) into $SHARDS shards"
./target/release/mqo partition ogbn-products --scale "$SCALE" --seed 42 \
  --shards "$SHARDS" --out-dir "$DIR" --stats-json "$DIR/partition.json" \
  | tee "$DIR/partition.txt"

echo "==> starting $SHARDS shard workers (boosted, exchange via $ROUTER_ADDR)"
WORKER_PIDS=()
for i in $(seq 0 $((SHARDS - 1))); do
  EXTRA=()
  if [[ "$i" == 0 ]]; then
    EXTRA+=(--trace-chrome "$DIR/worker0_trace.json" --cost-json "$DIR/worker0_cost.json")
  fi
  ./target/release/mqo serve "$DIR/shard-$i.bin" \
    --shard-id "$i" --shard-map "$DIR/shard-map.bin" --router "$ROUTER_ADDR" \
    --exchange-interval-ms 100 --boost --queries 400 --seed 42 \
    --addr 127.0.0.1:0 --addr-file "$DIR/worker-$i.addr" \
    --workers 2 --queue-cap 32 "${EXTRA[@]}" > "$DIR/worker-$i.log" 2>&1 &
  WORKER_PIDS+=($!)
done

WORKERS=""
for i in $(seq 0 $((SHARDS - 1))); do
  for _ in $(seq 1 600); do [ -s "$DIR/worker-$i.addr" ] && break; sleep 0.5; done
  [ -s "$DIR/worker-$i.addr" ] || {
    echo "shard_smoke: worker $i never bound (see $DIR/worker-$i.log)" >&2
    exit 1
  }
  ADDR=$(tr -d '[:space:]' < "$DIR/worker-$i.addr")
  WORKERS="${WORKERS:+$WORKERS,}$ADDR"
  # Shard identity on the worker's own healthz.
  curl -sf "http://$ADDR/v1/healthz" | grep -q "\"id\":$i" || {
    echo "shard_smoke: worker $i healthz does not carry shard id $i" >&2
    exit 1
  }
done

echo "==> starting router on $ROUTER_ADDR over workers $WORKERS"
./target/release/mqo route "$DIR/shard-map.bin" --workers "$WORKERS" \
  --addr "$ROUTER_ADDR" > "$DIR/router.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ROUTER_ADDR/v1/healthz" > /dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ROUTER_ADDR/v1/healthz" | grep -q "\"num_shards\":$SHARDS" || {
  echo "shard_smoke: router healthz does not report $SHARDS shards" >&2
  exit 1
}

echo "==> mixed-shard burst through the router"
# loadgen folds routed_serve_rps / routed_p99_ms / peak_rss_mb into the
# merge target: the scratch snapshot when gating, the committed baseline
# itself under --update.
echo '{}' > "$ROUTED"
MERGE_TARGET="$ROUTED"
if [[ "${1:-}" == "--update" ]]; then
  [ -f "$BASELINE" ] || echo '{}' > "$BASELINE"
  MERGE_TARGET="$BASELINE"
fi
./target/release/loadgen --addr "$ROUTER_ADDR" \
  --router --shard-map "$DIR/shard-map.bin" \
  --requests 300 --warmup 40 --concurrency 4 --batch 6 --seed 42 \
  --merge-into "$MERGE_TARGET" --out "$DIR/loadgen.json" | tee "$DIR/loadgen.txt"

grep -Eq "mixed batches   : [1-9]" "$DIR/loadgen.txt" || {
  echo "shard_smoke: no batch spanned a shard boundary — picks are not mixing" >&2
  exit 1
}
if grep -q ": 0 node picks" "$DIR/loadgen.txt"; then
  echo "shard_smoke: some shard saw zero node picks — routing is lopsided" >&2
  exit 1
fi

# Give the exchangers a couple of ticks to flush boundary labels that
# the burst's boosted queries minted, then check the exchange end to
# end in metrics: workers pushed, the router relayed, workers ingested.
sleep 2
ROUTER_METRICS=$(curl -sf "http://$ROUTER_ADDR/metrics")
echo "$ROUTER_METRICS" | grep -Eq "mqo_shard_label_pushes_total [1-9]" || {
  echo "shard_smoke: no worker pushed labels to the router" >&2
  exit 1
}
echo "$ROUTER_METRICS" | grep -Eq "mqo_shard_labels_forwarded_total\{[^}]*\} [1-9]" || {
  echo "shard_smoke: the router forwarded no cross-shard labels" >&2
  exit 1
}
INGESTED=0
for i in $(seq 0 $((SHARDS - 1))); do
  ADDR=$(tr -d '[:space:]' < "$DIR/worker-$i.addr")
  N=$(curl -sf "http://$ADDR/metrics" \
    | sed -n 's/^mqo_shard_labels_ingested_total \([0-9]*\).*/\1/p')
  INGESTED=$((INGESTED + ${N:-0}))
done
[ "$INGESTED" -gt 0 ] || {
  echo "shard_smoke: no worker ingested a remote label — exchange is dark" >&2
  exit 1
}
echo "cross-shard     : $INGESTED remote labels ingested across the cluster"

echo "==> draining workers and stopping the router"
for i in $(seq 0 $((SHARDS - 1))); do
  ADDR=$(tr -d '[:space:]' < "$DIR/worker-$i.addr")
  curl -sf -X POST "http://$ADDR/v1/drain" > /dev/null
done
for pid in "${WORKER_PIDS[@]}"; do
  wait "$pid" || { echo "shard_smoke: a worker exited non-zero" >&2; exit 1; }
done
WORKER_PIDS=()
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "shard_smoke: router exited non-zero" >&2; exit 1; }
ROUTER_PID=""

echo "==> obs_check on worker 0's trace + cost ledger"
./target/release/obs_check "$DIR/worker0_trace.json" "$DIR/worker0_cost.json"

if [[ "${1:-}" == "--update" ]]; then
  echo "baseline updated: routed fields of $BASELINE"
else
  ./target/release/bench_gate "$BASELINE" "$ROUTED" --routed-only
fi
