#!/usr/bin/env bash
# The full local gate: formatting, lints, tests. CI and pre-push both run
# exactly this, so "check.sh passes" == "the tree is green".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> toolchain"
rustc --version
cargo --version
cargo fmt --version
cargo clippy --version

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
