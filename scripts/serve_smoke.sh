#!/usr/bin/env bash
# Serving smoke: the online classification service end to end on the
# release binaries.
#
#   scripts/serve_smoke.sh
#
# Six gated legs, all seeded:
#
#   1. A server over a generated Cora file answers a seeded loadgen
#      burst with non-zero throughput (loadgen exits non-zero if no
#      request succeeds), then drains cleanly on request — the `mqo
#      serve` process must exit 0 with the journal sealed.
#   2. The drained run's Chrome trace and cost ledger must pass
#      obs_check: every query span under the run span, intervals
#      nested, and the token-conservation identity holding.
#   3. Malformed framing (conflicting duplicate Content-Length,
#      truncated headers, a header flood) must each draw a 400, the
#      rejections must be counted in mqo_http_errors_total, and the
#      server must keep answering /v1/healthz afterwards (loadgen
#      --malformed exits non-zero otherwise).
#   4. A tenant with an undersized admission budget must see 429s —
#      and the server must keep answering other work afterwards.
#   5. A restarted server (--resume) replaying the *same* seeded burst
#      must re-bill zero tokens: everything comes from the journal.
#   6. The resumed server must also drain cleanly (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/serve
mkdir -p "$OUT"
rm -f "$OUT"/addr "$OUT"/addr2 "$OUT"/serve.jsonl

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin loadgen --bin obs_check

echo "==> generating dataset"
./target/release/mqo generate cora --scale 0.5 --seed 42 --out "$OUT/cora.bin" > /dev/null

wait_for_file() { # path what
  for _ in $(seq 1 200); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "serve_smoke: timed out waiting for $2 ($1)" >&2
  return 1
}

echo "==> leg 1: serve + seeded burst + clean drain"
./target/release/mqo serve "$OUT/cora.bin" \
  --addr 127.0.0.1:0 --addr-file "$OUT/addr" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 \
  --tenants throttled=2000 \
  --journal "$OUT/serve.jsonl" \
  --trace-chrome "$OUT/serve_trace.json" --cost-json "$OUT/serve_cost.json" \
  --stats-json "$OUT/serve_stats.json" > "$OUT/serve.log" 2>&1 &
SERVE_PID=$!
wait_for_file "$OUT/addr" "server address"

./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 60 --concurrency 6 --batch 3 --seed 42 \
  --out "$OUT/load.json"

echo "==> leg 3: malformed framing draws 400s and the server stays up"
# Conflicting duplicate Content-Length, truncated headers, and a header
# flood must each be rejected with 400, the rejections must show in
# mqo_http_errors_total, and /v1/healthz must still answer 200.
./target/release/loadgen --addr-file "$OUT/addr" --malformed \
  --out "$OUT/load_malformed.json"

echo "==> leg 4: undersized tenant budget answers 429"
# 2000 tokens admit only the first few requests; the rest must bounce.
./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 20 --concurrency 4 --batch 2 --seed 43 --tenant throttled \
  --out "$OUT/load_throttled.json"
grep -Eq '"rejected_429": [1-9]' "$OUT/load_throttled.json" || {
  echo "serve_smoke: expected tenant-budget 429s, got:" >&2
  cat "$OUT/load_throttled.json" >&2
  exit 1
}
# The burst after the throttled one proves rejections didn't wedge the
# pool; --drain then asks for a graceful shutdown.
./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 20 --concurrency 4 --batch 3 --seed 44 --drain > /dev/null

wait "$SERVE_PID" || { echo "serve_smoke: server exited non-zero" >&2; exit 1; }
grep -q "journal sealed" "$OUT/serve.log" || {
  echo "serve_smoke: drain did not seal the journal" >&2
  cat "$OUT/serve.log" >&2
  exit 1
}

echo "==> leg 2: serving trace + ledger pass obs_check"
./target/release/obs_check "$OUT/serve_trace.json" "$OUT/serve_cost.json"

echo "==> leg 5: resumed server re-bills zero tokens for the same burst"
./target/release/mqo serve "$OUT/cora.bin" \
  --addr 127.0.0.1:0 --addr-file "$OUT/addr2" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 \
  --journal "$OUT/serve.jsonl" --resume \
  --stats-json "$OUT/resume_stats.json" > "$OUT/resume.log" 2>&1 &
RESUME_PID=$!
wait_for_file "$OUT/addr2" "resumed server address"

# Same seeds as legs 1 and 4's final burst: every node is journaled.
./target/release/loadgen --addr-file "$OUT/addr2" \
  --requests 60 --concurrency 6 --batch 3 --seed 42 > /dev/null
./target/release/loadgen --addr-file "$OUT/addr2" \
  --requests 20 --concurrency 4 --batch 3 --seed 44 --drain > /dev/null

echo "==> leg 6: resumed server drains cleanly"
wait "$RESUME_PID" || { echo "serve_smoke: resumed server exited non-zero" >&2; exit 1; }
grep -q '"tokens_billed":0' "$OUT/resume_stats.json" || {
  echo "serve_smoke: resume re-billed tokens:" >&2
  cat "$OUT/resume_stats.json" >&2
  exit 1
}
grep -Eq '"replayed":[1-9]' "$OUT/resume_stats.json" || {
  echo "serve_smoke: resume served nothing from the journal" >&2
  exit 1
}

echo "serve smoke: PASS"
