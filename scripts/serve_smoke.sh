#!/usr/bin/env bash
# Serving smoke: the online classification service end to end on the
# release binaries.
#
#   scripts/serve_smoke.sh
#
# Six gated legs, all seeded:
#
#   1. A server over a generated Cora file answers a seeded loadgen
#      burst with non-zero throughput (loadgen exits non-zero if no
#      request succeeds), then drains cleanly on request — the `mqo
#      serve` process must exit 0 with the journal sealed.
#   2. The drained run's Chrome trace and cost ledger must pass
#      obs_check: every query span under the run span, intervals
#      nested, and the token-conservation identity holding.
#   3. Malformed framing (conflicting duplicate Content-Length,
#      truncated headers, a header flood) must each draw a 400, the
#      rejections must be counted in mqo_http_errors_total, and the
#      server must keep answering /v1/healthz afterwards (loadgen
#      --malformed exits non-zero otherwise).
#   4. A tenant with an undersized admission budget must see 429s —
#      and the server must keep answering other work afterwards.
#   5. A restarted server (--resume) replaying the *same* seeded burst
#      must re-bill zero tokens: everything comes from the journal.
#   6. The resumed server must also drain cleanly (exit 0).
#   7. A caller-supplied trace id must round-trip: loadgen sends it in
#      x-mqo-trace-id, reads it back from the response header, and the
#      same id must then appear in the live /v1/debug/flight ring, the
#      Chrome trace export, and the journal record. /v1/slo must report
#      burn rate <= 1 for the clean run, and the drained flight dump
#      must pass obs_check's causal span-tree validation.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/serve
mkdir -p "$OUT"
rm -f "$OUT"/addr "$OUT"/addr2 "$OUT"/serve.jsonl

echo "==> building release binaries"
cargo build --release -q -p mqo-bench --bin mqo --bin loadgen --bin obs_check

echo "==> generating dataset"
./target/release/mqo generate cora --scale 0.5 --seed 42 --out "$OUT/cora.bin" > /dev/null

wait_for_file() { # path what
  for _ in $(seq 1 200); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "serve_smoke: timed out waiting for $2 ($1)" >&2
  return 1
}

echo "==> leg 1: serve + seeded burst + clean drain"
./target/release/mqo serve "$OUT/cora.bin" \
  --addr 127.0.0.1:0 --addr-file "$OUT/addr" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 \
  --tenants throttled=2000 \
  --journal "$OUT/serve.jsonl" \
  --slo-p99-ms 250 --flight-dump "$OUT/serve_flight.json" \
  --trace-chrome "$OUT/serve_trace.json" --cost-json "$OUT/serve_cost.json" \
  --stats-json "$OUT/serve_stats.json" > "$OUT/serve.log" 2>&1 &
SERVE_PID=$!
wait_for_file "$OUT/addr" "server address"

./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 60 --concurrency 6 --batch 3 --seed 42 \
  --out "$OUT/load.json"

http_get_raw() { # path outfile — tiny GET client over bash /dev/tcp
  local host port
  host=${ADDR%:*}; port=${ADDR##*:}
  exec 3<>"/dev/tcp/$host/$port"
  printf 'GET %s HTTP/1.1\r\nHost: mqo\r\nConnection: close\r\n\r\n' "$1" >&3
  cat <&3 > "$2"
  exec 3>&- 3<&-
}
ADDR=$(cat "$OUT/addr")

echo "==> leg 7: caller-supplied trace id round-trips live"
# loadgen stamps the id on its request, reads it back from the
# response's x-mqo-trace-id header, and prints it under "slowest" —
# so the grep fails unless the server echoed it. The oversized batch
# deliberately slows the request so tail sampling must retain it.
TRACE_ID=cafef00dcafef00d
./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 1 --concurrency 1 --batch 24 --seed 45 --trace-id "$TRACE_ID" \
  --out "$OUT/load_trace.json"
grep -q "$TRACE_ID" "$OUT/load_trace.json" || {
  echo "serve_smoke: trace id did not round-trip through the response header" >&2
  cat "$OUT/load_trace.json" >&2
  exit 1
}
# The same request must be retained in the live flight-recorder ring.
http_get_raw /v1/debug/flight "$OUT/flight_live.json"
grep -q "$TRACE_ID" "$OUT/flight_live.json" || {
  echo "serve_smoke: traced request missing from /v1/debug/flight" >&2
  cat "$OUT/flight_live.json" >&2
  exit 1
}

echo "==> leg 3: malformed framing draws 400s and the server stays up"
# Conflicting duplicate Content-Length, truncated headers, and a header
# flood must each be rejected with 400, the rejections must show in
# mqo_http_errors_total, and /v1/healthz must still answer 200.
./target/release/loadgen --addr-file "$OUT/addr" --malformed \
  --out "$OUT/load_malformed.json"

echo "==> leg 4: undersized tenant budget answers 429"
# 2000 tokens admit only the first few requests; the rest must bounce.
./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 20 --concurrency 4 --batch 2 --seed 43 --tenant throttled \
  --out "$OUT/load_throttled.json"
grep -Eq '"rejected_429": [1-9]' "$OUT/load_throttled.json" || {
  echo "serve_smoke: expected tenant-budget 429s, got:" >&2
  cat "$OUT/load_throttled.json" >&2
  exit 1
}
# A clean run must not burn error budget: every per-tenant burn rate on
# /v1/slo stays below 1 (429s are client errors and spend nothing).
http_get_raw /v1/slo "$OUT/slo_live.json"
grep -q '"tenants":\[' "$OUT/slo_live.json" || {
  echo "serve_smoke: /v1/slo reported no tenants" >&2
  cat "$OUT/slo_live.json" >&2
  exit 1
}
if grep -Eq '"burn_rate":[1-9]' "$OUT/slo_live.json"; then
  echo "serve_smoke: clean run burned error budget:" >&2
  cat "$OUT/slo_live.json" >&2
  exit 1
fi

# The burst after the throttled one proves rejections didn't wedge the
# pool; --drain then asks for a graceful shutdown.
./target/release/loadgen --addr-file "$OUT/addr" \
  --requests 20 --concurrency 4 --batch 3 --seed 44 --drain > /dev/null

wait "$SERVE_PID" || { echo "serve_smoke: server exited non-zero" >&2; exit 1; }
grep -q "journal sealed" "$OUT/serve.log" || {
  echo "serve_smoke: drain did not seal the journal" >&2
  cat "$OUT/serve.log" >&2
  exit 1
}

echo "==> leg 2: serving trace, ledger, and flight dump pass obs_check"
# The traced request must have reached the Chrome export (request-span
# detail carries "[<id>]") and the journal record ("trace":"<id>").
grep -q "$TRACE_ID" "$OUT/serve_trace.json" || {
  echo "serve_smoke: trace id missing from the Chrome trace export" >&2
  exit 1
}
grep -q "\"trace\":\"$TRACE_ID\"" "$OUT/serve.jsonl" || {
  echo "serve_smoke: trace id missing from the journal record" >&2
  exit 1
}
grep -q "flight recorder" "$OUT/serve.log" || {
  echo "serve_smoke: drain summary did not report the flight recorder" >&2
  cat "$OUT/serve.log" >&2
  exit 1
}
./target/release/obs_check "$OUT/serve_trace.json" "$OUT/serve_cost.json" \
  "$OUT/serve_flight.json"

echo "==> leg 5: resumed server re-bills zero tokens for the same burst"
./target/release/mqo serve "$OUT/cora.bin" \
  --addr 127.0.0.1:0 --addr-file "$OUT/addr2" --workers 4 --queue-cap 32 \
  --queries 120 --seed 42 \
  --journal "$OUT/serve.jsonl" --resume \
  --stats-json "$OUT/resume_stats.json" > "$OUT/resume.log" 2>&1 &
RESUME_PID=$!
wait_for_file "$OUT/addr2" "resumed server address"

# Same seeds as legs 1 and 4's final burst: every node is journaled.
./target/release/loadgen --addr-file "$OUT/addr2" \
  --requests 60 --concurrency 6 --batch 3 --seed 42 > /dev/null
./target/release/loadgen --addr-file "$OUT/addr2" \
  --requests 20 --concurrency 4 --batch 3 --seed 44 --drain > /dev/null

echo "==> leg 6: resumed server drains cleanly"
wait "$RESUME_PID" || { echo "serve_smoke: resumed server exited non-zero" >&2; exit 1; }
grep -q '"tokens_billed":0' "$OUT/resume_stats.json" || {
  echo "serve_smoke: resume re-billed tokens:" >&2
  cat "$OUT/resume_stats.json" >&2
  exit 1
}
grep -Eq '"replayed":[1-9]' "$OUT/resume_stats.json" || {
  echo "serve_smoke: resume served nothing from the journal" >&2
  exit 1
}

echo "serve smoke: PASS"
