//! Property tests for the tokenizer and budget arithmetic.

use mqo_token::budget::{budget_for_tau, tau_for_budget};
use mqo_token::Tokenizer;
use proptest::prelude::*;

proptest! {
    /// The fast counting path agrees with the materializing path on any
    /// input, including multi-byte unicode.
    #[test]
    fn count_equals_tokenize_len(text in "\\PC{0,200}") {
        prop_assert_eq!(Tokenizer.count(&text), Tokenizer.tokenize(&text).len());
    }

    /// Counting is additive across a whitespace join.
    #[test]
    fn count_additive_over_space(a in "[a-zA-Z0-9 ,.]{0,80}", b in "[a-zA-Z0-9 ,.]{0,80}") {
        let joined = format!("{a} {b}");
        prop_assert_eq!(
            Tokenizer.count(&joined),
            Tokenizer.count(&a) + Tokenizer.count(&b)
        );
    }

    /// Tokens are never longer than the subword width for words, and the
    /// total character mass is conserved (no token invents characters).
    #[test]
    fn tokens_cover_input(text in "[a-z ]{0,120}") {
        let tokens = Tokenizer.tokenize(&text);
        let token_chars: usize = tokens.iter().map(|t| t.chars().count()).sum();
        let input_chars = text.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert_eq!(token_chars, input_chars);
        for t in &tokens {
            prop_assert!(t.chars().count() <= 4);
        }
    }

    /// Budget ⇄ τ roundtrips wherever τ is interior.
    #[test]
    fn budget_tau_roundtrip(
        q in 1u64..100_000,
        tn in 1.0f64..5000.0,
        extra in 0.0f64..5000.0,
        tau in 0.0f64..1.0,
    ) {
        let tv = tn + extra;
        let b = budget_for_tau(q, tv, tn, tau);
        let back = tau_for_budget(q, tv, tn, b);
        prop_assert!((back - tau).abs() < 1e-6, "tau {} -> {}", tau, back);
    }

    /// τ is monotone non-increasing in the budget.
    #[test]
    fn tau_monotone_in_budget(
        q in 1u64..10_000,
        tn in 1.0f64..2000.0,
        extra in 0.0f64..2000.0,
        b1 in 0.0f64..1e8,
        delta in 0.0f64..1e8,
    ) {
        let tv = tn + extra;
        let t1 = tau_for_budget(q, tv, tn, b1);
        let t2 = tau_for_budget(q, tv, tn, b1 + delta);
        prop_assert!(t2 <= t1 + 1e-12);
    }
}
