//! # mqo-token — tokenization, accounting, pricing, and budget math
//!
//! Every cost number in the paper is denominated in LLM input tokens, so
//! this crate is the measurement substrate:
//!
//! * [`Tokenizer`] — a deterministic BPE-flavoured tokenizer (whitespace /
//!   punctuation split plus fixed-width subword chunking). It does not aim
//!   for byte parity with tiktoken — only the *ratios* between prompt
//!   variants matter for reproducing the paper's shape — but it has the
//!   right qualitative behaviour: longer words cost more tokens,
//!   punctuation is visible, counts are stable.
//! * [`UsageMeter`] — a thread-safe token ledger that LLM clients append to
//!   on every request; the execution engine reads it to enforce budgets
//!   (Eq. 2's constraint `Σ Tokens(π ∘ v_i) ≤ B`).
//! * [`pricing`] — per-model $ / 1k-token price tables (GPT-3.5-0125,
//!   GPT-4o-mini, GPT-4) used by the cost-planning example and Table V.
//! * [`budget`] — the running-example arithmetic (§V-C): converting a token
//!   budget `B` into the pruned fraction τ% and back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use mqo_token::{Tokenizer, budget::tau_for_budget, GPT_35_TURBO_0125};
//!
//! let prompt = "Target paper: Title: storage engines\nAbstract: compaction";
//! let tokens = Tokenizer.count(prompt);
//! assert!(tokens > 5);
//!
//! // 1,000 queries averaging 1,200 tokens, 800 of which are neighbor text,
//! // under a $0.40 budget at GPT-3.5 prices:
//! let budget_tokens = 0.40 / GPT_35_TURBO_0125.input_per_1k * 1000.0;
//! let tau = tau_for_budget(1000, 1200.0, 800.0, budget_tokens);
//! assert!(tau > 0.49 && tau < 0.51); // prune half the queries
//! ```

pub mod budget;
pub mod ledger;
pub mod pricing;
pub mod tokenizer;

pub use budget::{budget_for_tau, tau_for_budget};
pub use ledger::{Usage, UsageMeter};
pub use pricing::{ModelPricing, GPT_35_TURBO_0125, GPT_4, GPT_4O_MINI};
pub use tokenizer::Tokenizer;
