//! Per-model price tables (USD per 1,000 tokens).
//!
//! The intro's cost motivation uses GPT-3.5 at $0.0005 / 1k input tokens
//! and extrapolates to GPT-4; the constants here match the prices the paper
//! quotes (early-2024 OpenAI list prices).

use crate::ledger::Totals;

/// Prices for one model, in USD per 1,000 tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPricing {
    /// Model display name.
    pub name: &'static str,
    /// USD per 1k prompt tokens.
    pub input_per_1k: f64,
    /// USD per 1k completion tokens.
    pub output_per_1k: f64,
}

/// GPT-3.5-turbo-0125 — the paper's default LLM ($0.0005 / 1k input).
pub const GPT_35_TURBO_0125: ModelPricing =
    ModelPricing { name: "gpt-3.5-turbo-0125", input_per_1k: 0.0005, output_per_1k: 0.0015 };

/// GPT-4o-mini — the paper's second black-box LLM.
pub const GPT_4O_MINI: ModelPricing =
    ModelPricing { name: "gpt-4o-mini", input_per_1k: 0.00015, output_per_1k: 0.0006 };

/// GPT-4 — used in the intro's $360,000 extrapolation ($0.03 / 1k input).
pub const GPT_4: ModelPricing =
    ModelPricing { name: "gpt-4", input_per_1k: 0.03, output_per_1k: 0.06 };

impl ModelPricing {
    /// Dollar cost of the given accumulated usage.
    pub fn cost(&self, totals: Totals) -> f64 {
        totals.prompt_tokens as f64 / 1000.0 * self.input_per_1k
            + totals.completion_tokens as f64 / 1000.0 * self.output_per_1k
    }

    /// Dollar cost of `tokens` input tokens only (Table V style estimates).
    pub fn input_cost(&self, tokens: u64) -> f64 {
        tokens as f64 / 1000.0 * self.input_per_1k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_arithmetic_holds() {
        // "each query ... at least 1,200 tokens ... a single query would
        // cost at least $0.0006" with GPT-3.5.
        let per_query = GPT_35_TURBO_0125.input_cost(1200);
        assert!((per_query - 0.0006).abs() < 1e-12);
        // "10 million queries would cost at least $6,000"
        assert!((GPT_35_TURBO_0125.input_cost(1200) * 10_000_000.0 - 6000.0).abs() < 1e-6);
        // "while using GPT-4 would increase the cost to $360,000"
        assert!((GPT_4.input_cost(1200) * 10_000_000.0 - 360_000.0).abs() < 1e-6);
    }

    #[test]
    fn cost_combines_input_and_output() {
        let t = Totals { requests: 1, prompt_tokens: 1000, completion_tokens: 1000 };
        let c = GPT_35_TURBO_0125.cost(t);
        assert!((c - 0.002).abs() < 1e-12);
    }
}
