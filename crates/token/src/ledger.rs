//! Token usage accounting.
//!
//! [`UsageMeter`] is shared between an LLM client (which records every
//! request's prompt/completion token counts through `&self`) and the
//! execution engine (which reads totals to enforce the Eq. 2 budget
//! constraint). Interior mutability via `parking_lot::Mutex` keeps the
//! `LanguageModel` trait object-safe with `&self` methods.

use mqo_obs::{Event, EventSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Token usage of a single request (mirrors the OpenAI `usage` object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Usage {
    /// Tokens in the prompt (input).
    pub prompt_tokens: u64,
    /// Tokens in the generated completion (output).
    pub completion_tokens: u64,
}

impl Usage {
    /// Prompt + completion.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Accumulated usage across many requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Totals {
    /// Number of requests recorded.
    pub requests: u64,
    /// Sum of prompt tokens.
    pub prompt_tokens: u64,
    /// Sum of completion tokens.
    pub completion_tokens: u64,
}

impl Totals {
    /// Prompt + completion.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Thread-safe accumulating token ledger.
#[derive(Default)]
pub struct UsageMeter {
    inner: Mutex<Totals>,
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    pressure_reported: AtomicBool,
}

impl std::fmt::Debug for UsageMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UsageMeter").field("totals", &self.totals()).finish_non_exhaustive()
    }
}

impl UsageMeter {
    /// Fresh meter with zero totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry sink: the meter emits [`Event::BudgetPressure`]
    /// the first time a [`UsageMeter::would_exceed`] check binds (returns
    /// `true`), i.e. the moment the Eq. 2 budget starts shaping the run.
    pub fn attach_sink(&self, sink: Arc<dyn EventSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Record one request's usage.
    pub fn record(&self, usage: Usage) {
        let mut t = self.inner.lock();
        t.requests += 1;
        t.prompt_tokens += usage.prompt_tokens;
        t.completion_tokens += usage.completion_tokens;
    }

    /// Snapshot the running totals.
    pub fn totals(&self) -> Totals {
        *self.inner.lock()
    }

    /// Reset to zero (between experiment arms). Also re-arms the
    /// budget-pressure event.
    pub fn reset(&self) {
        *self.inner.lock() = Totals::default();
        self.pressure_reported.store(false, Ordering::Relaxed);
    }

    /// Whether recording `next` prompt tokens would exceed `budget` input
    /// tokens. The paper's budget B constrains *input* tokens (prompt side),
    /// since completions are single category names.
    pub fn would_exceed(&self, next_prompt_tokens: u64, budget: u64) -> bool {
        let used = self.inner.lock().prompt_tokens;
        let exceeds = used + next_prompt_tokens > budget;
        if exceeds && !self.pressure_reported.swap(true, Ordering::Relaxed) {
            if let Some(sink) = self.sink.lock().as_ref() {
                sink.emit(&Event::BudgetPressure {
                    budget,
                    prompt_tokens_used: used,
                    denied_cost: next_prompt_tokens,
                });
            }
        }
        exceeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = UsageMeter::new();
        m.record(Usage { prompt_tokens: 100, completion_tokens: 5 });
        m.record(Usage { prompt_tokens: 50, completion_tokens: 3 });
        let t = m.totals();
        assert_eq!(t.requests, 2);
        assert_eq!(t.prompt_tokens, 150);
        assert_eq!(t.completion_tokens, 8);
        assert_eq!(t.total_tokens(), 158);
    }

    #[test]
    fn reset_zeroes() {
        let m = UsageMeter::new();
        m.record(Usage { prompt_tokens: 10, completion_tokens: 1 });
        m.reset();
        assert_eq!(m.totals(), Totals::default());
    }

    #[test]
    fn budget_check() {
        let m = UsageMeter::new();
        m.record(Usage { prompt_tokens: 900, completion_tokens: 0 });
        assert!(!m.would_exceed(100, 1000));
        assert!(m.would_exceed(101, 1000));
    }

    #[test]
    fn budget_pressure_emitted_once_when_check_first_binds() {
        let m = UsageMeter::new();
        let sink = Arc::new(mqo_obs::Recorder::new());
        m.attach_sink(sink.clone());
        m.record(Usage { prompt_tokens: 900, completion_tokens: 0 });
        assert!(!m.would_exceed(50, 1000));
        assert!(sink.is_empty(), "no pressure below the budget");
        assert!(m.would_exceed(200, 1000));
        assert!(m.would_exceed(300, 1000));
        let events = sink.of_kind("budget_pressure");
        assert_eq!(events.len(), 1, "pressure reported once, on first bind");
        assert_eq!(
            events[0],
            Event::BudgetPressure { budget: 1000, prompt_tokens_used: 900, denied_cost: 200 }
        );
        // Reset re-arms the event for the next experiment arm.
        m.reset();
        assert!(m.would_exceed(2000, 1000));
        assert_eq!(sink.of_kind("budget_pressure").len(), 2);
    }

    #[test]
    fn meter_is_sync_across_threads() {
        let m = std::sync::Arc::new(UsageMeter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(Usage { prompt_tokens: 1, completion_tokens: 1 });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.totals().requests, 4000);
        assert_eq!(m.totals().prompt_tokens, 4000);
    }
}
