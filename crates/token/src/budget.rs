//! Budget ⇄ pruned-fraction arithmetic from the running example (§V-C).
//!
//! With `q = |V_Q|` queries, `tv` average tokens per *full* query and `tn`
//! average tokens of neighbor text, executing a τ fraction of queries
//! without neighbor text costs
//!
//! ```text
//! B(τ) = τ·q·(tv − tn) + (1 − τ)·q·tv = q·tv − τ·q·tn
//! ```
//!
//! so the fraction needed to fit a budget `B` is
//! `τ = (q·tv − B) / (q·tn)`, clamped to `[0, 1]`.

/// Fraction of queries that must omit neighbor text to fit budget `b`.
///
/// * `q` — number of queries,
/// * `tokens_full` — mean tokens of a full query (`Tokens(v)`),
/// * `tokens_neighbor` — mean tokens of the neighbor text (`Tokens(N)`).
///
/// Returns a value in `[0, 1]`. A budget too small even with every query
/// pruned saturates at 1.0 (the execution engine will then additionally
/// refuse queries once the meter hits the hard budget).
pub fn tau_for_budget(q: u64, tokens_full: f64, tokens_neighbor: f64, b: f64) -> f64 {
    assert!(tokens_neighbor > 0.0, "neighbor text must cost tokens");
    assert!(tokens_full >= tokens_neighbor, "full query must cost at least its neighbor text");
    let full_cost = q as f64 * tokens_full;
    let tau = (full_cost - b) / (q as f64 * tokens_neighbor);
    tau.clamp(0.0, 1.0)
}

/// Token budget implied by pruning a τ fraction of queries (inverse of
/// [`tau_for_budget`]).
pub fn budget_for_tau(q: u64, tokens_full: f64, tokens_neighbor: f64, tau: f64) -> f64 {
    assert!((0.0..=1.0).contains(&tau), "tau must be a fraction");
    q as f64 * tokens_full - tau * q as f64 * tokens_neighbor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let (q, tv, tn) = (1000, 1200.0, 800.0);
        for tau in [0.0, 0.2, 0.5, 1.0] {
            let b = budget_for_tau(q, tv, tn, tau);
            let back = tau_for_budget(q, tv, tn, b);
            assert!((back - tau).abs() < 1e-12, "tau {tau} -> {back}");
        }
    }

    #[test]
    fn generous_budget_needs_no_pruning() {
        assert_eq!(tau_for_budget(1000, 1200.0, 800.0, 2_000_000.0), 0.0);
    }

    #[test]
    fn tiny_budget_saturates() {
        assert_eq!(tau_for_budget(1000, 1200.0, 800.0, 0.0), 1.0);
    }

    #[test]
    fn paper_shape_twenty_percent() {
        // Pruning 20% of 1,000 queries with tv=1200, tn=800 saves 160k.
        let b = budget_for_tau(1000, 1200.0, 800.0, 0.2);
        assert!((b - (1_200_000.0 - 160_000.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "neighbor text must cost tokens")]
    fn rejects_zero_neighbor_tokens() {
        tau_for_budget(10, 100.0, 0.0, 50.0);
    }
}
