//! Deterministic BPE-flavoured tokenizer.
//!
//! Rules (chosen to mimic the qualitative behaviour of GPT tokenizers):
//!
//! * runs of alphanumeric characters are words; a word costs
//!   `ceil(len / SUBWORD)` tokens where `SUBWORD = 4` approximates the
//!   well-known "≈4 characters per token" heuristic;
//! * every punctuation / symbol character is its own token;
//! * whitespace is free (merged into the following token, as BPE does).
//!
//! Counting never allocates; [`Tokenizer::tokenize`] (used by tests and the
//! simulated LLM's prompt reader) yields borrowed word slices.

/// Characters per subword chunk.
const SUBWORD: usize = 4;

/// The workspace tokenizer. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tokenizer;

impl Tokenizer {
    /// Create a tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Number of tokens in `text`. O(len), zero allocation.
    pub fn count(&self, text: &str) -> usize {
        let mut tokens = 0usize;
        let mut word_len = 0usize;
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                word_len += 1;
            } else {
                if word_len > 0 {
                    tokens += word_len.div_ceil(SUBWORD);
                    word_len = 0;
                }
                if !ch.is_whitespace() {
                    tokens += 1;
                }
            }
        }
        if word_len > 0 {
            tokens += word_len.div_ceil(SUBWORD);
        }
        tokens
    }

    /// Iterate the alphanumeric words of `text` as borrowed slices
    /// (punctuation skipped). This is the view the simulated LLM reads.
    pub fn words<'a>(&self, text: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        text.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty())
    }

    /// Tokenize into subword pieces (owned); for debugging and tests.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut word = String::new();
        let flush = |word: &mut String, out: &mut Vec<String>| {
            if !word.is_empty() {
                let chars: Vec<char> = word.chars().collect();
                for chunk in chars.chunks(SUBWORD) {
                    out.push(chunk.iter().collect());
                }
                word.clear();
            }
        };
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                word.push(ch);
            } else {
                flush(&mut word, &mut out);
                if !ch.is_whitespace() {
                    out.push(ch.to_string());
                }
            }
        }
        flush(&mut word, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(Tokenizer.count(""), 0);
        assert_eq!(Tokenizer.count("   \n\t"), 0);
    }

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(Tokenizer.count("the"), 1);
        assert_eq!(Tokenizer.count("a b c"), 3);
    }

    #[test]
    fn long_words_split_into_subwords() {
        assert_eq!(Tokenizer.count("data"), 1); // 4 chars
        assert_eq!(Tokenizer.count("datab"), 2); // 5 chars
        assert_eq!(Tokenizer.count("databases"), 3); // 9 chars
    }

    #[test]
    fn punctuation_costs_one_each() {
        assert_eq!(Tokenizer.count("['XX']"), 5); // [ ' ] plus the word XX
        assert_eq!(Tokenizer.count("a, b."), 4);
    }

    #[test]
    fn count_matches_tokenize_len() {
        for text in [
            "Target paper: Title: foo\nAbstract: bar baz",
            "Category: ['Database']",
            "word punctuation-heavy, (parenthetical) text!",
            "",
        ] {
            assert_eq!(Tokenizer.count(text), Tokenizer.tokenize(text).len(), "{text:?}");
        }
    }

    #[test]
    fn words_iterator_strips_punctuation() {
        let words: Vec<&str> = Tokenizer.words("Title: hello, world-wide!").collect();
        assert_eq!(words, vec!["Title", "hello", "world", "wide"]);
    }

    #[test]
    fn unicode_does_not_panic() {
        assert!(Tokenizer.count("naïve café résumé — “quotes”") > 0);
    }

    #[test]
    fn count_is_additive_over_concatenation_with_space() {
        let a = "some words here";
        let b = "and more there";
        let joined = format!("{a} {b}");
        assert_eq!(Tokenizer.count(&joined), Tokenizer.count(a) + Tokenizer.count(b));
    }
}
