//! Error type for the MQO engine.

use std::fmt;

/// Errors surfaced by the MQO strategies and execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The LLM client failed.
    Llm(mqo_llm::Error),
    /// Graph/split operations failed.
    Graph(mqo_graph::Error),
    /// A strategy was configured inconsistently.
    Config {
        /// What is wrong.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Llm(e) => write!(f, "llm error: {e}"),
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Config { detail } => write!(f, "configuration error: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Llm(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Config { .. } => None,
        }
    }
}

impl From<mqo_llm::Error> for Error {
    fn from(e: mqo_llm::Error) -> Self {
        Error::Llm(e)
    }
}

impl From<mqo_graph::Error> for Error {
    fn from(e: mqo_graph::Error) -> Self {
        Error::Graph(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: Error = mqo_llm::Error::ScriptExhausted.into();
        assert!(e.to_string().contains("llm error"));
        assert!(std::error::Error::source(&e).is_some());
        let c = Error::Config { detail: "bad tau".into() };
        assert!(c.to_string().contains("bad tau"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
