//! The event-driven execution scheduler.
//!
//! One entry point — [`Scheduler::run`] — replaces the four historical
//! orchestration paths (`run_all`, `run_all_parallel`, `run_all_batched`,
//! and the boosting round loop), which survive as thin shims. A
//! [`SchedulePolicy`] picks how work becomes *ready*:
//!
//! * [`SchedulePolicy::Fifo`] — queries run inline, in input order, on the
//!   caller's thread. The only policy that supports the Eq. 2 hard budget
//!   (budget enforcement is meter-order-dependent) and the policy the
//!   serving hot path uses (no cross-thread hand-off per request).
//! * [`SchedulePolicy::Parallel`] — every query is ready immediately; a
//!   fixed worker pool pulls work from a bounded dispatch queue and pushes
//!   [`QueryRecord`]s back through a completion channel. Records are
//!   re-assembled in input order.
//! * [`SchedulePolicy::Batched`] — like `Parallel`, but prompts are
//!   pre-rendered and sorted so prefix-coherent batches dispatch as a
//!   unit (maximizing provider-side prefix-cache adjacency).
//! * [`SchedulePolicy::CueGated`] — Algorithm 2: a query becomes ready
//!   when its neighbor pseudo-label support satisfies the γ₁/γ₂ rule.
//!   In **deterministic** mode readiness is evaluated in waves (the
//!   paper's rounds): candidates are selected against a frozen label
//!   store, executed (inline at width 1, by the pool at width N), and
//!   their pseudo-labels folded in at a barrier — byte-identical record
//!   streams across runs. In **free-running** mode the barrier is gone:
//!   each completion folds its pseudo-label immediately and newly
//!   qualified queries dispatch while their siblings are still in
//!   flight, overlapping LLM latency with readiness evaluation.
//!
//! ## Determinism contract
//!
//! Under `CueGated { deterministic: true }` the ready queue is drained in
//! a stable order (input arrival order, which the CLI derives from the
//! seeded split; ties cannot arise because a node is pending at most
//! once), candidate waves see a frozen label store, and records are
//! assembled in candidate order — so two runs with the same seed produce
//! byte-identical record dumps whenever the model itself is
//! call-order-insensitive (the simulated backends are; a response cache
//! or call-indexed fault schedule is not, which is why the scheduler
//! smoke runs with `--no-cache` and no faults).
//!
//! ## Invariants preserved (checked by `obs_check` and the equivalence
//! proptests below)
//!
//! * Span causality: query spans parent to the round span in wave mode
//!   and to the run scope in free-running mode; `llm_call` under `query`.
//! * Ledger conservation: per-query cost accounting is untouched — any
//!   grouping of [`Executor::run_one_reusing`] calls conserves.
//! * Journal replay/resume: journaled queries replay before dispatch and
//!   fresh records are journaled on completion; cue-gated runs seal
//!   rounds (wave mode) or fold batches (free-running) with an fsync.
//! * Eq. 2 hard budget: order-dependent, so pooled policies reject it
//!   (`Error::Config`) and cue-gated runs clamp to the width-1 wave path.

use crate::boosting::{label_support, BoostConfig, DegradePolicy, RoundTrace};
use crate::error::{Error, Result};
use crate::executor::{ExecOutcome, Executor, QueryRecord, RenderScratch};
use crate::labels::LabelStore;
use crate::parallel::panic_message;
use crate::predictor::{Predictor, SelectCtx};
use crate::queue::BoundedQueue;
use mqo_graph::NodeId;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};

/// How the scheduler decides what is ready to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Run queries inline, in input order, on the caller's thread
    /// (recovers `Executor::run_all`). Supports the hard budget.
    Fifo,
    /// Dispatch every query immediately across a fixed worker pool
    /// (recovers `run_all_parallel`).
    Parallel {
        /// Worker-pool width (must be ≥ 1).
        threads: usize,
    },
    /// Dispatch prefix-coherent batches across a fixed worker pool
    /// (recovers `run_all_batched`).
    Batched {
        /// Worker-pool width (must be ≥ 1).
        threads: usize,
        /// Queries per dispatched batch (must be ≥ 1).
        batch_size: usize,
    },
    /// Algorithm 2 query boosting: readiness keyed by the γ₁/γ₂
    /// neighbor-cue rule, with incremental relaxation when nothing
    /// qualifies (recovers the boosting round loop).
    CueGated {
        /// Candidacy thresholds (γ₁/γ₂) before relaxation.
        config: BoostConfig,
        /// Failure escalation policy under a degraded executor.
        policy: DegradePolicy,
        /// Worker-pool width (clamped to 1 under a hard budget).
        threads: usize,
        /// `true` → wave (round) execution with a barrier per wave:
        /// byte-identical records across runs. `false` → free-running:
        /// completions fold immediately and newly ready queries dispatch
        /// without waiting for the wave to drain.
        deterministic: bool,
    },
}

/// The label knowledge a run reads (and, for cue-gated runs, writes).
pub enum Labels<'l> {
    /// A frozen label store: no pseudo-labels are folded back.
    Fixed(&'l LabelStore),
    /// A mutable label store: executed queries contribute pseudo-labels
    /// (required by [`SchedulePolicy::CueGated`]).
    Boosting(&'l mut LabelStore),
}

impl Labels<'_> {
    fn store(&self) -> &LabelStore {
        match self {
            Labels::Fixed(l) => l,
            Labels::Boosting(l) => l,
        }
    }
}

/// What a scheduled run produced.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Per-query records. Input order for `Fifo`/`Parallel`/`Batched`,
    /// candidate order per wave for deterministic cue-gated runs,
    /// completion order for free-running cue-gated runs.
    pub outcome: ExecOutcome,
    /// One trace per executed wave (cue-gated wave mode) or fold batch
    /// (free-running). Empty for the fixed policies.
    pub rounds: Vec<RoundTrace>,
    /// Queries replayed from the journal without touching the model.
    pub replayed: u64,
    /// Prompt tokens billed to freshly executed (non-replayed) records.
    pub fresh_billed_tokens: u64,
}

/// One unit of dispatched work: a single query, or a whole
/// prefix-coherent batch claimed by one worker.
struct Work {
    items: Vec<WorkItem>,
    batch: Option<BatchMeta>,
    /// Label snapshot for free-running cue-gated dispatch; pooled fixed
    /// policies read the caller's store directly instead.
    labels: Option<Arc<LabelStore>>,
}

struct WorkItem {
    slot: usize,
    node: NodeId,
    force_prune: bool,
}

struct BatchMeta {
    index: u32,
    /// Chunk size including journal-replayed members (the dispatch event
    /// reports planned coverage, as the pre-scheduler path did).
    queries: u64,
    shared_prefix_tokens: u64,
}

/// A completion pushed back through the completion channel.
struct Done {
    slot: usize,
    node: NodeId,
    record: Result<QueryRecord>,
}

/// The event-driven execution core: one readiness queue, one fixed
/// worker pool, one completion channel, pluggable [`SchedulePolicy`].
pub struct Scheduler<'s, 'e> {
    exec: &'s Executor<'e>,
    policy: SchedulePolicy,
}

impl<'s, 'e> Scheduler<'s, 'e> {
    /// A scheduler driving `exec` under `policy`.
    pub fn new(exec: &'s Executor<'e>, policy: SchedulePolicy) -> Self {
        Scheduler { exec, policy }
    }

    /// Execute `queries` to completion under the configured policy.
    ///
    /// `prune_set` marks queries that execute without neighbor text
    /// (Algorithm 1 pruning; cue-gated runs treat pruned queries as
    /// immediately ready since they cannot be enriched).
    ///
    /// # Panics
    ///
    /// Panics if a pooled policy is configured with zero threads or a
    /// zero batch size, or a cue-gated policy with `give_up_after == 0`.
    pub fn run(
        &self,
        predictor: &dyn Predictor,
        labels: Labels<'_>,
        queries: &[NodeId],
        prune_set: impl Fn(NodeId) -> bool + Sync,
    ) -> Result<RunReport> {
        match self.policy {
            SchedulePolicy::Fifo => {
                self.run_fifo(predictor, labels.store(), queries, &prune_set)
            }
            SchedulePolicy::Parallel { threads } => {
                self.run_pooled(predictor, labels.store(), queries, &prune_set, threads, None)
            }
            SchedulePolicy::Batched { threads, batch_size } => self.run_pooled(
                predictor,
                labels.store(),
                queries,
                &prune_set,
                threads,
                Some(batch_size),
            ),
            SchedulePolicy::CueGated { config, policy, threads, deterministic } => {
                let labels = match labels {
                    Labels::Boosting(l) => l,
                    Labels::Fixed(_) => {
                        return Err(Error::Config {
                            detail: "cue-gated scheduling needs a boosting label store".into(),
                        })
                    }
                };
                assert!(policy.give_up_after >= 1, "give_up_after must be positive");
                // The hard budget is meter-order-dependent: clamp to the
                // sequential wave path so spend order is reproducible.
                let width = if self.exec.budget.is_some() { 1 } else { threads.max(1) };
                if deterministic || width == 1 {
                    self.cue_gated_waves(
                        predictor, labels, queries, &prune_set, config, policy, width,
                    )
                } else {
                    self.cue_gated_free(
                        predictor, labels, queries, &prune_set, config, policy, width,
                    )
                }
            }
        }
    }

    /// Inline FIFO: the zero-hand-off hot path (and the only
    /// budget-capable one).
    fn run_fifo(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: &(impl Fn(NodeId) -> bool + Sync),
    ) -> Result<RunReport> {
        let exec = self.exec;
        let mut report = RunReport::default();
        let mut scratch = RenderScratch::new();
        for &v in queries {
            if let Some(rec) = exec.replay_journaled(v) {
                report.replayed += 1;
                report.outcome.records.push(rec);
                continue;
            }
            let mut rng = exec.query_rng(v);
            let rec = exec.run_one_reusing(
                predictor,
                labels,
                v,
                &mut rng,
                prune_set(v),
                &mut scratch,
            )?;
            exec.journal_record(&rec);
            report.fresh_billed_tokens += rec.prompt_tokens;
            report.outcome.records.push(rec);
        }
        Ok(report)
    }

    /// The pooled fixed policies: dispatch everything up front (one item
    /// per work unit, or prefix-coherent batches), then drain the
    /// completion channel and re-assemble in input order.
    fn run_pooled(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: &(impl Fn(NodeId) -> bool + Sync),
        threads: usize,
        batch_size: Option<usize>,
    ) -> Result<RunReport> {
        assert!(threads >= 1, "need at least one worker");
        if let Some(bs) = batch_size {
            assert!(bs >= 1, "need a positive batch size");
        }
        let exec = self.exec;
        if exec.budget.is_some() {
            // The hard-budget path is order-dependent (the meter decides
            // when to start stripping neighbor text); run it sequentially.
            return Err(Error::Config {
                detail: "hard budgets require sequential execution".into(),
            });
        }
        let mut report = RunReport::default();
        let mut slots: Vec<Option<Result<QueryRecord>>> =
            queries.iter().map(|_| None).collect();
        // Crash-safe resume: journaled queries replay before any worker
        // starts, so workers only ever see genuinely unfinished work.
        for (i, &v) in queries.iter().enumerate() {
            if let Some(rec) = exec.replay_journaled(v) {
                report.replayed += 1;
                slots[i] = Some(Ok(rec));
            }
        }

        let works: Vec<Work> = match batch_size {
            None => queries
                .iter()
                .enumerate()
                .filter(|(i, _)| slots[*i].is_none())
                .map(|(i, &v)| Work {
                    items: vec![WorkItem { slot: i, node: v, force_prune: prune_set(v) }],
                    batch: None,
                    labels: None,
                })
                .collect(),
            Some(bs) => {
                // Pre-render every prompt for ordering. A panicking
                // predictor is tolerated here (empty sort key); the
                // worker's `catch_unwind` contains it as a failed record.
                let prompts: Vec<String> = queries
                    .iter()
                    .map(|&v| {
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut rng = exec.query_rng(v);
                            exec.render_for_estimate(
                                predictor,
                                labels,
                                v,
                                &mut rng,
                                prune_set(v),
                            )
                        }))
                        .unwrap_or_default()
                    })
                    .collect();
                let mut order: Vec<usize> = (0..queries.len()).collect();
                order.sort_by(|&a, &b| prompts[a].cmp(&prompts[b]).then(a.cmp(&b)));
                order
                    .chunks(bs)
                    .enumerate()
                    .map(|(b, chunk)| Work {
                        items: chunk
                            .iter()
                            .filter(|&&i| slots[i].is_none())
                            .map(|&i| WorkItem {
                                slot: i,
                                node: queries[i],
                                force_prune: prune_set(queries[i]),
                            })
                            .collect(),
                        batch: Some(BatchMeta {
                            index: b as u32,
                            queries: chunk.len() as u64,
                            shared_prefix_tokens: chunk
                                .windows(2)
                                .map(|w| {
                                    mqo_cache::common_prefix_tokens(
                                        &prompts[w[0]],
                                        &prompts[w[1]],
                                    ) as u64
                                })
                                .sum(),
                        }),
                        labels: None,
                    })
                    .collect()
            }
        };
        let expected: usize = works.iter().map(|w| w.items.len()).sum();

        let dispatch = BoundedQueue::new(works.len().max(1));
        for w in works {
            dispatch.try_push(w).ok().expect("dispatch queue sized for all work");
        }
        dispatch.close();
        let (done_tx, done_rx) = mpsc::channel::<Done>();

        std::thread::scope(|scope| {
            let dispatch = &dispatch;
            for worker in 0..threads {
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    worker_loop(exec, predictor, Some(labels), dispatch, done_tx, worker as u32)
                });
            }
            drop(done_tx);
            for _ in 0..expected {
                let done = done_rx.recv().expect("worker pool hung up early");
                if let Ok(rec) = &done.record {
                    exec.journal_record(rec);
                    report.fresh_billed_tokens += rec.prompt_tokens;
                }
                slots[done.slot] = Some(done.record);
            }
        });

        for slot in slots {
            report.outcome.records.push(slot.expect("every slot filled")?);
        }
        Ok(report)
    }

    /// Deterministic cue-gated execution: Algorithm 2's rounds as waves.
    /// Candidate selection, relaxation, failure escalation, folding,
    /// journaling, and span structure match the pre-scheduler boosting
    /// loop exactly at width 1; width N executes each wave's candidates
    /// on the pool against a frozen label store and re-assembles them in
    /// candidate order at the wave barrier.
    #[allow(clippy::too_many_arguments)]
    fn cue_gated_waves(
        &self,
        predictor: &dyn Predictor,
        labels: &mut LabelStore,
        queries: &[NodeId],
        prune_set: &(impl Fn(NodeId) -> bool + Sync),
        config: BoostConfig,
        policy: DegradePolicy,
        width: usize,
    ) -> Result<RunReport> {
        let exec = self.exec;
        let mut report = RunReport::default();
        let mut pending: Vec<NodeId> = queries.to_vec();
        self.predrain_replays(labels, &mut pending, &mut report);

        let mut gamma1 = config.gamma1;
        let mut gamma2 = config.gamma2;
        let k = exec.tag.num_classes();
        // Consecutive failures per node, for the fallback/give-up escalation.
        let mut failures: HashMap<NodeId, usize> = HashMap::new();
        let force_prune = |failures: &HashMap<NodeId, usize>, v: NodeId| {
            prune_set(v) || failures.get(&v).is_some_and(|&n| n >= policy.fallback_after)
        };
        let mut scratch = RenderScratch::new();

        while !pending.is_empty() {
            // Readiness pass with incremental relaxation: pending is
            // drained in stable input order (a node is pending at most
            // once, so no tie-break is needed beyond queue position).
            let candidates: Vec<NodeId> = loop {
                let ctx =
                    SelectCtx { tag: exec.tag, labels, max_neighbors: exec.max_neighbors };
                let mut c = Vec::new();
                for &v in &pending {
                    if force_prune(&failures, v) {
                        // Pruned (or failure-downgraded) queries can't be
                        // enriched; run them now.
                        c.push(v);
                        continue;
                    }
                    // Per-node rng: N_i only changes when label knowledge does.
                    let mut rng = exec.query_rng(v);
                    let (n_l, lc) = label_support(predictor, &ctx, v, &mut rng);
                    if n_l >= gamma1 && lc <= gamma2 {
                        c.push(v);
                    }
                }
                if !c.is_empty() {
                    break c;
                }
                // Relax: γ1 down to zero first, then γ2 up to K (at (0, K)
                // every query qualifies, so this terminates).
                if gamma1 > 0 {
                    gamma1 -= 1;
                } else if gamma2 < k {
                    gamma2 += 1;
                } else {
                    break pending.clone();
                }
            };

            // Scope query spans under this wave's round span (restored
            // after the wave so a trailing caller-side scope survives).
            let round_index = report.rounds.len();
            let round_span = exec.tracer.span(
                exec.sink,
                "round",
                || format!("round {round_index}"),
                exec.tracer.current_or(exec.span_scope()),
            );
            let outer_scope = exec.span_scope();
            exec.set_span_scope(round_span.id());

            // Execute the wave. Labels are frozen until the barrier (all
            // candidates see the same knowledge state, as in Algorithm 2).
            // A failed candidate stays pending (no record yet) unless it
            // has exhausted its retries.
            let mut round_records = Vec::with_capacity(candidates.len());
            if width == 1 {
                for &v in &candidates {
                    let mut rng = exec.query_rng(v);
                    let record = exec.run_one_reusing(
                        predictor,
                        labels,
                        v,
                        &mut rng,
                        force_prune(&failures, v),
                        &mut scratch,
                    );
                    match record {
                        Ok(r) if r.failed() => {
                            let n = failures.entry(v).or_insert(0);
                            *n += 1;
                            if *n >= policy.give_up_after {
                                round_records.push(r); // permanent failed outcome
                            }
                        }
                        Ok(r) => {
                            failures.remove(&v);
                            round_records.push(r);
                        }
                        Err(e) => {
                            exec.set_span_scope(outer_scope);
                            return Err(e);
                        }
                    }
                }
            } else {
                let results = self.run_wave_pooled(
                    predictor,
                    labels,
                    &candidates,
                    &failures,
                    &force_prune,
                    width,
                );
                for (&v, record) in candidates.iter().zip(results) {
                    match record {
                        Ok(r) if r.failed() => {
                            let n = failures.entry(v).or_insert(0);
                            *n += 1;
                            if *n >= policy.give_up_after {
                                round_records.push(r);
                            }
                        }
                        Ok(r) => {
                            failures.remove(&v);
                            round_records.push(r);
                        }
                        Err(e) => {
                            exec.set_span_scope(outer_scope);
                            return Err(e);
                        }
                    }
                }
            }
            exec.set_span_scope(outer_scope);
            drop(round_span);
            report.rounds.push(RoundTrace { executed: round_records.len(), gamma1, gamma2 });
            for r in &round_records {
                if !r.failed() {
                    labels.add_pseudo(r.node, r.predicted);
                }
            }
            exec.sink.emit(&mqo_obs::Event::RoundCompleted {
                round: round_index as u32,
                executed: round_records.len() as u64,
                gamma1: gamma1 as u64,
                gamma2: gamma2 as u64,
                pseudo_label_uses: round_records
                    .iter()
                    .map(|r| r.pseudo_neighbors as u64)
                    .sum(),
            });
            // Journal the wave's *final* outcomes (retried failures are not
            // final), then seal: the seal fsyncs, making the wave durable.
            for r in &round_records {
                exec.journal_record(r);
                report.fresh_billed_tokens += r.prompt_tokens;
            }
            if let Some(j) = exec.journal {
                j.seal_round(round_index as u32);
            }
            let finished: HashSet<NodeId> = round_records.iter().map(|r| r.node).collect();
            report.outcome.records.extend(round_records);
            pending.retain(|v| !finished.contains(v));
        }
        Ok(report)
    }

    /// One deterministic wave on the worker pool: candidates execute
    /// against the frozen label store, results return in candidate order.
    fn run_wave_pooled(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        candidates: &[NodeId],
        failures: &HashMap<NodeId, usize>,
        force_prune: &impl Fn(&HashMap<NodeId, usize>, NodeId) -> bool,
        width: usize,
    ) -> Vec<Result<QueryRecord>> {
        let exec = self.exec;
        let dispatch = BoundedQueue::new(candidates.len().max(1));
        for (i, &v) in candidates.iter().enumerate() {
            let work = Work {
                items: vec![WorkItem {
                    slot: i,
                    node: v,
                    force_prune: force_prune(failures, v),
                }],
                batch: None,
                labels: None,
            };
            dispatch.try_push(work).ok().expect("dispatch queue sized for the wave");
        }
        dispatch.close();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let mut slots: Vec<Option<Result<QueryRecord>>> =
            candidates.iter().map(|_| None).collect();

        std::thread::scope(|scope| {
            let dispatch = &dispatch;
            for worker in 0..width.min(candidates.len()).max(1) {
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    worker_loop(exec, predictor, Some(labels), dispatch, done_tx, worker as u32)
                });
            }
            drop(done_tx);
            for _ in 0..candidates.len() {
                let done = done_rx.recv().expect("wave pool hung up early");
                slots[done.slot] = Some(done.record);
            }
        });
        slots.into_iter().map(|s| s.expect("every wave slot filled")).collect()
    }

    /// Free-running cue-gated execution: no wave barrier. Completions
    /// fold their pseudo-labels the moment they land, readiness is
    /// re-evaluated over the still-pending set, and newly qualified
    /// queries dispatch against a fresh label snapshot while earlier
    /// queries are still in flight. Thresholds relax only when nothing
    /// is ready *and* nothing is in flight — an in-flight completion may
    /// yet unlock a pending query at the current (γ1, γ2).
    #[allow(clippy::too_many_arguments)]
    fn cue_gated_free(
        &self,
        predictor: &dyn Predictor,
        labels: &mut LabelStore,
        queries: &[NodeId],
        prune_set: &(impl Fn(NodeId) -> bool + Sync),
        config: BoostConfig,
        policy: DegradePolicy,
        width: usize,
    ) -> Result<RunReport> {
        let exec = self.exec;
        let mut report = RunReport::default();
        let mut pending: Vec<NodeId> = queries.to_vec();
        self.predrain_replays(labels, &mut pending, &mut report);

        let mut gamma1 = config.gamma1;
        let mut gamma2 = config.gamma2;
        let k = exec.tag.num_classes();
        let mut failures: HashMap<NodeId, usize> = HashMap::new();
        let force_prune = |failures: &HashMap<NodeId, usize>, v: NodeId| {
            prune_set(v) || failures.get(&v).is_some_and(|&n| n >= policy.fallback_after)
        };

        // A node is pending, queued/in-flight, or final — never two at
        // once — so the dispatch queue can never hold more than the
        // query count even across give-up retries.
        let dispatch = BoundedQueue::<Work>::new(queries.len().max(1));
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let mut in_flight = 0usize;
        let mut snapshot = Arc::new(labels.clone());
        let mut dirty = false;
        let mut first_err: Option<Error> = None;

        std::thread::scope(|scope| {
            let dispatch_ref = &dispatch;
            for worker in 0..width {
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    worker_loop(exec, predictor, None, dispatch_ref, done_tx, worker as u32)
                });
            }
            drop(done_tx);

            loop {
                if first_err.is_none() && !pending.is_empty() {
                    let mut ready = ready_set(
                        exec,
                        predictor,
                        labels,
                        &pending,
                        &failures,
                        &force_prune,
                        gamma1,
                        gamma2,
                    );
                    while ready.is_empty() && in_flight == 0 {
                        // Nothing runnable and nothing that could unlock
                        // more: relax γ1 toward 0, then γ2 toward K.
                        if gamma1 > 0 {
                            gamma1 -= 1;
                        } else if gamma2 < k {
                            gamma2 += 1;
                        } else {
                            ready = pending.clone();
                            break;
                        }
                        ready = ready_set(
                            exec,
                            predictor,
                            labels,
                            &pending,
                            &failures,
                            &force_prune,
                            gamma1,
                            gamma2,
                        );
                    }
                    if !ready.is_empty() {
                        if dirty {
                            snapshot = Arc::new(labels.clone());
                            dirty = false;
                        }
                        let ready_lookup: HashSet<NodeId> = ready.iter().copied().collect();
                        pending.retain(|v| !ready_lookup.contains(v));
                        for v in ready {
                            let work = Work {
                                items: vec![WorkItem {
                                    slot: 0,
                                    node: v,
                                    force_prune: force_prune(&failures, v),
                                }],
                                batch: None,
                                labels: Some(snapshot.clone()),
                            };
                            in_flight += 1;
                            dispatch
                                .try_push(work)
                                .ok()
                                .expect("dispatch queue sized for all outstanding work");
                        }
                    }
                }
                if in_flight == 0 {
                    break; // drained (or error-aborted with nothing left in flight)
                }

                // Block for one completion, then opportunistically drain
                // whatever else has landed: one fold batch.
                let Ok(first) = done_rx.recv() else { break };
                let mut fold = vec![first];
                while let Ok(more) = done_rx.try_recv() {
                    fold.push(more);
                }
                in_flight -= fold.len();
                let mut executed = 0u64;
                let mut pseudo_uses = 0u64;
                for done in fold {
                    match done.record {
                        Ok(r) if r.failed() => {
                            let n = failures.entry(r.node).or_insert(0);
                            *n += 1;
                            if *n >= policy.give_up_after {
                                executed += 1;
                                pseudo_uses += r.pseudo_neighbors as u64;
                                exec.journal_record(&r);
                                report.outcome.records.push(r);
                            } else {
                                pending.push(done.node); // retry once re-ready
                            }
                        }
                        Ok(r) => {
                            failures.remove(&r.node);
                            executed += 1;
                            pseudo_uses += r.pseudo_neighbors as u64;
                            labels.add_pseudo(r.node, r.predicted);
                            dirty = true;
                            exec.journal_record(&r);
                            report.fresh_billed_tokens += r.prompt_tokens;
                            report.outcome.records.push(r);
                        }
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if executed > 0 {
                    // Each fold batch that produced final records is a
                    // "round" to downstream consumers: the cache-epoch
                    // invalidator and the per-round ledger both key on it.
                    let round_index = report.rounds.len();
                    report.rounds.push(RoundTrace {
                        executed: executed as usize,
                        gamma1,
                        gamma2,
                    });
                    exec.sink.emit(&mqo_obs::Event::RoundCompleted {
                        round: round_index as u32,
                        executed,
                        gamma1: gamma1 as u64,
                        gamma2: gamma2 as u64,
                        pseudo_label_uses: pseudo_uses,
                    });
                    if let Some(j) = exec.journal {
                        j.seal_round(round_index as u32);
                    }
                }
            }
            dispatch.close();
        });

        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Crash-safe resume shared by the cue-gated paths: queries the
    /// journal already holds replay with zero LLM requests, and their
    /// pseudo-labels fold in up front so the remaining waves see the
    /// same label knowledge they would have accumulated live (failed
    /// queries never pseudo-label).
    fn predrain_replays(
        &self,
        labels: &mut LabelStore,
        pending: &mut Vec<NodeId>,
        report: &mut RunReport,
    ) {
        let replayed: Vec<_> =
            pending.iter().filter_map(|&v| self.exec.replay_journaled(v)).collect();
        if !replayed.is_empty() {
            let done: HashSet<NodeId> = replayed.iter().map(|r| r.node).collect();
            pending.retain(|v| !done.contains(v));
            for r in &replayed {
                if !r.failed() {
                    labels.add_pseudo(r.node, r.predicted);
                }
            }
            report.replayed = replayed.len() as u64;
            report.outcome.records.extend(replayed);
        }
    }
}

/// The γ₁/γ₂ readiness pass for free-running dispatch: pending queries
/// that qualify right now, in stable input order.
#[allow(clippy::too_many_arguments)]
fn ready_set(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    pending: &[NodeId],
    failures: &HashMap<NodeId, usize>,
    force_prune: &impl Fn(&HashMap<NodeId, usize>, NodeId) -> bool,
    gamma1: usize,
    gamma2: usize,
) -> Vec<NodeId> {
    let ctx = SelectCtx { tag: exec.tag, labels, max_neighbors: exec.max_neighbors };
    let mut ready = Vec::new();
    for &v in pending {
        if force_prune(failures, v) {
            ready.push(v);
            continue;
        }
        let mut rng = exec.query_rng(v);
        let (n_l, lc) = label_support(predictor, &ctx, v, &mut rng);
        if n_l >= gamma1 && lc <= gamma2 {
            ready.push(v);
        }
    }
    ready
}

/// The worker side of the pool: pull work from the dispatch queue, run
/// each query with panic containment, push records back through the
/// completion channel, and report throughput on exit.
fn worker_loop(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    fixed_labels: Option<&LabelStore>,
    dispatch: &BoundedQueue<Work>,
    done_tx: mpsc::Sender<Done>,
    worker: u32,
) {
    // Fresh threads have no span stack: name their trace track (1-based;
    // 0 is the main thread) so query spans land on per-worker rows,
    // parented to the executor's span scope.
    mqo_obs::set_thread_track(worker + 1);
    let started = exec.clock.now_micros();
    let mut handled = 0u64;
    let mut scratch = RenderScratch::new();
    while let Some(work) = dispatch.pop() {
        // Queries executed while this guard is live nest under the batch
        // span via the worker's thread-local stack.
        let batch_span = work.batch.as_ref().map(|meta| {
            let span = exec.tracer.span(
                exec.sink,
                "batch",
                || format!("batch {} ({} queries)", meta.index, meta.queries),
                exec.tracer.current_or(exec.span_scope()),
            );
            exec.sink.emit(&mqo_obs::Event::BatchDispatched {
                batch: meta.index,
                queries: meta.queries,
                shared_prefix_tokens: meta.shared_prefix_tokens,
            });
            span
        });
        for item in &work.items {
            let labels = work
                .labels
                .as_deref()
                .or(fixed_labels)
                .expect("dispatched work carries no label store");
            // Contain per-query panics: a poisoned predictor or a bug in
            // one prompt path must not lose the other workers' completed
            // queries — the panicked query becomes a failed record and
            // the survivors drain the rest.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = exec.query_rng(item.node);
                exec.run_one_reusing(
                    predictor,
                    labels,
                    item.node,
                    &mut rng,
                    item.force_prune,
                    &mut scratch,
                )
            }));
            let record = match outcome {
                Ok(record) => record,
                Err(payload) => {
                    // The render buffers may hold a half-written prompt.
                    scratch = RenderScratch::new();
                    let detail = panic_message(payload);
                    exec.sink.emit(&mqo_obs::Event::WorkerLost {
                        worker,
                        node: item.node.0,
                        detail: detail.clone(),
                    });
                    Ok(exec.failed_record(item.node, format!("worker panicked: {detail}")))
                }
            };
            handled += 1;
            let _ = done_tx.send(Done { slot: item.slot, node: item.node, record });
        }
        drop(batch_span);
    }
    exec.sink.emit(&mqo_obs::Event::WorkerThroughput {
        worker,
        queries: handled,
        wall_micros: exec.clock.now_micros().saturating_sub(started),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boosting::{
        run_with_boosting_policy, run_with_boosting_policy_legacy, RoundTrace,
    };
    use crate::parallel::{legacy, run_all_batched, run_all_parallel};
    use crate::predictor::KhopRandom;
    use crate::pruning::PrunePlan;
    use mqo_fault::{FaultConfig, FaultSchedule, FaultyLlm};
    use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};
    use mqo_llm::{Completion, LanguageModel};
    use mqo_obs::{CostLedger, ManualClock, WaitClock};
    use mqo_token::{Tokenizer, Usage, UsageMeter};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// An order-insensitive test model: the answer is a pure function of
    /// the prompt (hash → class), so records cannot depend on the order
    /// in which concurrent schedulers happen to issue calls. (ScriptedLlm
    /// is call-order-sensitive, which would make every pooled comparison
    /// vacuously flaky.)
    struct HashLlm {
        classes: Vec<String>,
        meter: UsageMeter,
    }

    impl HashLlm {
        fn new(classes: Vec<String>) -> Self {
            HashLlm { classes, meter: UsageMeter::new() }
        }
    }

    impl LanguageModel for HashLlm {
        fn name(&self) -> &str {
            "hash"
        }

        fn complete(&self, prompt: &str) -> mqo_llm::Result<Completion> {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in prompt.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let class = &self.classes[(h % self.classes.len() as u64) as usize];
            let text = format!("Category: ['{class}']");
            let usage = Usage {
                prompt_tokens: Tokenizer.count(prompt) as u64,
                completion_tokens: Tokenizer.count(&text) as u64,
            };
            self.meter.record(usage);
            Ok(Completion::billed(text, usage))
        }

        fn meter(&self) -> &UsageMeter {
            &self.meter
        }
    }

    /// A random small TAG: `n` nodes, ~2n random edges, 2–4 classes.
    fn random_tag(seed: u64, n: usize, k: usize) -> Tag {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for _ in 0..(2 * n) {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                let _ = b.add_edge(u, v);
            }
        }
        let texts = (0..n)
            .map(|i| NodeText::new(format!("paper {i}"), format!("about topic {}", i % k)))
            .collect();
        let labels = (0..n).map(|i| ClassId((i % k) as u16)).collect();
        let class_names = (0..k).map(|c| format!("Topic{c}")).collect();
        Tag::new("random", b.build(), texts, labels, class_names).unwrap()
    }

    /// Queries (every other node) and a seed label on the rest.
    fn split(tag: &Tag) -> (Vec<NodeId>, LabelStore) {
        let mut labels = LabelStore::empty(tag.num_nodes());
        let mut queries = Vec::new();
        for i in 0..tag.num_nodes() {
            if i % 2 == 0 {
                queries.push(NodeId(i as u32));
            } else {
                labels.add_pseudo(NodeId(i as u32), tag.label(NodeId(i as u32)));
            }
        }
        (queries, labels)
    }

    fn trace_fields(traces: &[RoundTrace]) -> Vec<(usize, usize, usize)> {
        traces.iter().map(|t| (t.executed, t.gamma1, t.gamma2)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// FIFO scheduling is the legacy sequential loop, bit for bit —
        /// same records in the same order, same metered spend — for
        /// arbitrary small TAGs and prune sets.
        #[test]
        fn fifo_matches_legacy_run_all(seed in 0u64..10_000, n in 4usize..12, k in 2usize..4) {
            let tag = random_tag(seed, n, k);
            let (queries, labels) = split(&tag);
            let predictor = KhopRandom::new(1, tag.num_nodes());
            let prune = |v: NodeId| v.0.is_multiple_of(3);

            let llm_a = HashLlm::new(tag.class_names().to_vec());
            let exec_a = Executor::new(&tag, &llm_a, 3, seed);
            let legacy = exec_a.run_all_legacy(&predictor, &labels, &queries, prune).unwrap();

            let llm_b = HashLlm::new(tag.class_names().to_vec());
            let exec_b = Executor::new(&tag, &llm_b, 3, seed);
            let sched = Scheduler::new(&exec_b, SchedulePolicy::Fifo)
                .run(&predictor, Labels::Fixed(&labels), &queries, prune)
                .unwrap();

            prop_assert_eq!(&legacy.records, &sched.outcome.records);
            prop_assert_eq!(llm_a.meter().totals(), llm_b.meter().totals());
            prop_assert_eq!(sched.replayed, 0);
            prop_assert_eq!(
                sched.fresh_billed_tokens,
                sched.outcome.records.iter().map(|r| r.prompt_tokens).sum::<u64>()
            );
        }

        /// FIFO equivalence holds under arbitrary seeded fault schedules:
        /// the scheduler issues calls in the same sequential order, so the
        /// `(seed, call-index)`-keyed injector fires identically.
        #[test]
        fn fifo_matches_legacy_under_faults(
            seed in 0u64..10_000,
            fault_seed in 0u64..10_000,
            transient in 0.0f64..0.4,
            malformed in 0.0f64..0.3,
        ) {
            let tag = random_tag(seed, 8, 2);
            let (queries, labels) = split(&tag);
            let predictor = KhopRandom::new(1, tag.num_nodes());
            let cfg = FaultConfig {
                transient_rate: transient,
                malformed_rate: malformed,
                ..FaultConfig::default()
            };
            let clock = Arc::new(ManualClock::new());
            let wait: Arc<dyn WaitClock> = clock;

            let faulty_a = FaultyLlm::new(
                HashLlm::new(tag.class_names().to_vec()),
                FaultSchedule::seeded(fault_seed, cfg),
                wait.clone(),
            );
            let exec_a = Executor::new(&tag, &faulty_a, 3, seed).with_degrade();
            let legacy =
                exec_a.run_all_legacy(&predictor, &labels, &queries, |_| false).unwrap();

            let faulty_b = FaultyLlm::new(
                HashLlm::new(tag.class_names().to_vec()),
                FaultSchedule::seeded(fault_seed, cfg),
                wait.clone(),
            );
            let exec_b = Executor::new(&tag, &faulty_b, 3, seed).with_degrade();
            let sched = Scheduler::new(&exec_b, SchedulePolicy::Fifo)
                .run(&predictor, Labels::Fixed(&labels), &queries, |_| false)
                .unwrap();

            prop_assert_eq!(&legacy.records, &sched.outcome.records);
        }

        /// The pooled fixed policies produce the same input-order record
        /// stream as their pre-scheduler implementations (and the
        /// sequential path) for arbitrary TAGs and widths.
        #[test]
        fn pooled_policies_match_legacy(
            seed in 0u64..10_000,
            n in 4usize..12,
            threads in 1usize..4,
            batch in 1usize..5,
        ) {
            let tag = random_tag(seed, n, 3);
            let (queries, labels) = split(&tag);
            let predictor = KhopRandom::new(1, tag.num_nodes());
            let llm = HashLlm::new(tag.class_names().to_vec());
            let exec = Executor::new(&tag, &llm, 3, seed);

            let seq = exec.run_all_legacy(&predictor, &labels, &queries, |_| false).unwrap();
            let par_legacy = legacy::run_all_parallel(
                &exec, &predictor, &labels, &queries, |_| false, threads,
            )
            .unwrap();
            let par = run_all_parallel(&exec, &predictor, &labels, &queries, |_| false, threads)
                .unwrap();
            let bat_legacy = legacy::run_all_batched(
                &exec, &predictor, &labels, &queries, |_| false, threads, batch,
            )
            .unwrap();
            let bat =
                run_all_batched(&exec, &predictor, &labels, &queries, |_| false, threads, batch)
                    .unwrap();

            prop_assert_eq!(&seq.records, &par_legacy.records);
            prop_assert_eq!(&seq.records, &par.records);
            prop_assert_eq!(&seq.records, &bat_legacy.records);
            prop_assert_eq!(&seq.records, &bat.records);
        }

        /// Deterministic cue-gated scheduling at width 1 *is* the legacy
        /// boosting loop: same records in the same order, same round
        /// traces, same relaxation path.
        #[test]
        fn cue_gated_deterministic_matches_legacy_boosting(
            seed in 0u64..10_000,
            n in 4usize..12,
            gamma1 in 0usize..4,
            gamma2 in 1usize..3,
        ) {
            let tag = random_tag(seed, n, 3);
            let (queries, labels) = split(&tag);
            let config = BoostConfig { gamma1, gamma2 };
            let predictor = KhopRandom::new(1, tag.num_nodes());
            let plan = PrunePlan::default();

            let llm_a = HashLlm::new(tag.class_names().to_vec());
            let exec_a = Executor::new(&tag, &llm_a, 3, seed);
            let mut labels_a = labels.clone();
            let (out_a, traces_a) = run_with_boosting_policy_legacy(
                &exec_a, &predictor, &mut labels_a, &queries, config, &plan,
                DegradePolicy::default(),
            )
            .unwrap();

            let llm_b = HashLlm::new(tag.class_names().to_vec());
            let exec_b = Executor::new(&tag, &llm_b, 3, seed);
            let mut labels_b = labels.clone();
            let (out_b, traces_b) = run_with_boosting_policy(
                &exec_b, &predictor, &mut labels_b, &queries, config, &plan,
                DegradePolicy::default(),
            )
            .unwrap();

            prop_assert_eq!(&out_a.records, &out_b.records);
            prop_assert_eq!(trace_fields(&traces_a), trace_fields(&traces_b));
            prop_assert_eq!(llm_a.meter().totals(), llm_b.meter().totals());
        }

        /// Width-N deterministic waves reproduce the width-1 stream bit
        /// for bit: labels are frozen per wave and records re-assemble in
        /// candidate order, so the pool width is unobservable.
        #[test]
        fn deterministic_waves_are_width_invariant(
            seed in 0u64..10_000,
            n in 4usize..12,
            threads in 2usize..5,
        ) {
            let tag = random_tag(seed, n, 3);
            let (queries, labels) = split(&tag);
            let config = BoostConfig { gamma1: 2, gamma2: 2 };
            let predictor = KhopRandom::new(1, tag.num_nodes());

            let mut runs = Vec::new();
            for width in [1, threads, threads] {
                let llm = HashLlm::new(tag.class_names().to_vec());
                let exec = Executor::new(&tag, &llm, 3, seed);
                let mut l = labels.clone();
                let report = Scheduler::new(
                    &exec,
                    SchedulePolicy::CueGated {
                        config,
                        policy: DegradePolicy::default(),
                        threads: width,
                        deterministic: true,
                    },
                )
                .run(&predictor, Labels::Boosting(&mut l), &queries, |_| false)
                .unwrap();
                runs.push(report.outcome.records);
            }
            prop_assert_eq!(&runs[0], &runs[1], "width-N wave diverged from width 1");
            prop_assert_eq!(&runs[1], &runs[2], "two identical runs diverged");
        }

        /// Free-running cue-gated execution keeps the hard guarantees even
        /// though record order is timing-dependent: every query gets
        /// exactly one record and the cost ledger conserves.
        #[test]
        fn free_running_covers_every_query_and_conserves(
            seed in 0u64..10_000,
            n in 4usize..12,
            threads in 2usize..5,
        ) {
            let tag = random_tag(seed, n, 3);
            let (queries, labels) = split(&tag);
            let predictor = KhopRandom::new(1, tag.num_nodes());
            let llm = HashLlm::new(tag.class_names().to_vec());
            let ledger = CostLedger::new();
            let exec = Executor::new(&tag, &llm, 3, seed).with_sink(&ledger).with_degrade();
            let mut l = labels.clone();
            let report = Scheduler::new(
                &exec,
                SchedulePolicy::CueGated {
                    config: BoostConfig::default(),
                    policy: DegradePolicy::default(),
                    threads,
                    deterministic: false,
                },
            )
            .run(&predictor, Labels::Boosting(&mut l), &queries, |_| false)
            .unwrap();

            prop_assert_eq!(report.outcome.records.len(), queries.len());
            let mut nodes: Vec<u32> =
                report.outcome.records.iter().map(|r| r.node.0).collect();
            nodes.sort_unstable();
            let mut expected: Vec<u32> = queries.iter().map(|v| v.0).collect();
            expected.sort_unstable();
            prop_assert_eq!(nodes, expected, "a query was lost or duplicated");
            let cost = ledger.report();
            prop_assert!(cost.total.conserves(), "conservation violated: {}", cost);
            // Every executed (non-failed) query pseudo-labeled itself.
            for r in report.outcome.records.iter().filter(|r| !r.failed()) {
                prop_assert!(l.is_labeled(r.node));
            }
            prop_assert_eq!(
                report.rounds.iter().map(|t| t.executed).sum::<usize>(),
                queries.len()
            );
        }
    }

    /// Cue-gated scheduling without a boosting label store is a config
    /// error, not a silent fixed-label run.
    #[test]
    fn cue_gated_requires_boosting_labels() {
        let tag = random_tag(7, 6, 2);
        let (queries, labels) = split(&tag);
        let llm = HashLlm::new(tag.class_names().to_vec());
        let exec = Executor::new(&tag, &llm, 3, 7);
        let err = Scheduler::new(
            &exec,
            SchedulePolicy::CueGated {
                config: BoostConfig::default(),
                policy: DegradePolicy::default(),
                threads: 2,
                deterministic: false,
            },
        )
        .run(
            &KhopRandom::new(1, tag.num_nodes()),
            Labels::Fixed(&labels),
            &queries,
            |_| false,
        );
        assert!(matches!(err, Err(Error::Config { .. })));
    }

    /// A hard budget forces cue-gated runs onto the sequential wave path
    /// (spend order must be reproducible) and still never overshoots.
    #[test]
    fn cue_gated_budget_clamps_to_sequential_and_holds() {
        let tag = random_tag(11, 10, 2);
        let (queries, labels) = split(&tag);
        let llm = HashLlm::new(tag.class_names().to_vec());
        let exec = Executor::new(&tag, &llm, 3, 11).with_budget(200);
        let mut l = labels.clone();
        let report = Scheduler::new(
            &exec,
            SchedulePolicy::CueGated {
                config: BoostConfig::default(),
                policy: DegradePolicy::default(),
                threads: 4,
                deterministic: false,
            },
        )
        .run(&KhopRandom::new(1, tag.num_nodes()), Labels::Boosting(&mut l), &queries, |_| {
            false
        })
        .unwrap();
        assert_eq!(report.outcome.records.len(), queries.len());
        assert!(llm.meter().totals().prompt_tokens <= 200, "budget overshot");
    }
}
