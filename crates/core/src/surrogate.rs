//! The surrogate classifier `f_θ1` (Eq. 8).
//!
//! An MLP over text features trained on the labeled set, cross-validated
//! (3 folds per §VI-A3) so that probabilities on labeled nodes are
//! out-of-fold (needed downstream to fit the merger `g_θ2` without
//! leakage); query-node probabilities average the fold models.
//!
//! Feature encoding follows the dataset size, as in the paper: TF-IDF over
//! a fitted vocabulary for the small graphs, feature hashing for the OGB
//! graphs. Hyperparameters follow §VI-A3: small = linear model, lr 0.01,
//! no weight decay; large = a small grid search over depth / width / lr /
//! weight decay scored by out-of-fold accuracy.

use mqo_encoder::{HashedEncoder, TextEncoder, TfIdfEncoder, Vocabulary};
use mqo_graph::{LabeledSplit, NodeId, Tag};
use mqo_nn::{entropy, CrossValProbs, MlpConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Which feature encoder backs the surrogate.
enum Encoder {
    TfIdf(TfIdfEncoder),
    Hashed(HashedEncoder),
}

impl Encoder {
    fn encode(&self, text: &str) -> Vec<f32> {
        match self {
            Encoder::TfIdf(e) => e.encode(text),
            Encoder::Hashed(e) => e.encode(text),
        }
    }
}

/// Configuration of the surrogate training pipeline.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// TF-IDF vocabulary cap (ignored when hashing).
    pub max_features: usize,
    /// Use feature hashing at this dimension instead of TF-IDF.
    pub hashed_dim: Option<usize>,
    /// Candidate MLP configurations; the best by out-of-fold accuracy is
    /// kept (singleton for the small datasets = no search).
    pub candidates: Vec<MlpConfig>,
    /// Cross-validation folds (paper: 3).
    pub folds: usize,
    /// Cap on labeled training samples (keeps the OGB surrogates cheap).
    pub max_train: usize,
    /// Seed for sampling and training.
    pub seed: u64,
}

impl SurrogateConfig {
    /// Small-dataset setup (§VI-A3): linear MLP, lr 0.01, no weight decay.
    pub fn small(seed: u64) -> Self {
        SurrogateConfig {
            max_features: 2000,
            hashed_dim: None,
            candidates: vec![MlpConfig {
                hidden: vec![],
                lr: 0.01,
                weight_decay: 0.0,
                epochs: 60,
                batch_size: 32,
                seed,
            }],
            folds: 3,
            max_train: usize::MAX,
            seed,
        }
    }

    /// Large-dataset setup (§VI-A3): feature hashing plus a reduced grid
    /// over {layers, hidden, lr, weight decay}, scored out-of-fold.
    pub fn large(seed: u64) -> Self {
        let grid = [
            (vec![96], 0.01, 1e-4),
            (vec![128], 0.001, 1e-3),
            (vec![256, 96], 0.01, 1e-4),
            (vec![256, 96], 0.001, 1e-3),
        ];
        SurrogateConfig {
            max_features: 0,
            hashed_dim: Some(256),
            candidates: grid
                .into_iter()
                .map(|(hidden, lr, wd)| MlpConfig {
                    hidden,
                    lr,
                    weight_decay: wd,
                    epochs: 20,
                    batch_size: 64,
                    seed,
                })
                .collect(),
            folds: 3,
            max_train: 2000,
            seed,
        }
    }
}

/// The trained surrogate.
pub struct Surrogate {
    encoder: Encoder,
    cv: CrossValProbs,
    /// Node → index into the training arrays (for out-of-fold lookups).
    train_index: HashMap<NodeId, usize>,
    /// Out-of-fold accuracy of the winning configuration.
    pub oof_accuracy: f64,
}

impl Surrogate {
    /// Train on the labeled set of `split`.
    pub fn train(tag: &Tag, split: &LabeledSplit, config: &SurrogateConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5a5a);
        let mut train_nodes: Vec<NodeId> = split.labeled().to_vec();
        if train_nodes.len() > config.max_train {
            train_nodes.shuffle(&mut rng);
            train_nodes.truncate(config.max_train);
        }

        let encoder = match config.hashed_dim {
            Some(dim) => Encoder::Hashed(HashedEncoder::new(dim)),
            None => {
                // Vocabulary over the texts the surrogate will actually see:
                // labeled plus query nodes.
                let texts: Vec<String> = train_nodes
                    .iter()
                    .chain(split.queries())
                    .map(|&v| tag.text(v).full())
                    .collect();
                let vocab =
                    Vocabulary::fit(texts.iter().map(|s| s.as_str()), 2, config.max_features);
                Encoder::TfIdf(TfIdfEncoder::new(vocab))
            }
        };

        let xs: Vec<Vec<f32>> =
            train_nodes.iter().map(|&v| encoder.encode(&tag.text(v).full())).collect();
        let ys: Vec<usize> = train_nodes.iter().map(|&v| tag.label(v).index()).collect();

        // Pick the candidate with the best out-of-fold accuracy.
        let mut best: Option<(f64, CrossValProbs)> = None;
        for cand in &config.candidates {
            let cv = CrossValProbs::fit(cand, &xs, &ys, tag.num_classes(), config.folds);
            let acc = (0..xs.len())
                .filter(|&i| mqo_nn::metrics::argmax(&cv.oof_probs[i]) == ys[i])
                .count() as f64
                / xs.len() as f64;
            if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                best = Some((acc, cv));
            }
        }
        let (oof_accuracy, cv) = best.expect("at least one candidate config");

        let train_index = train_nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        Surrogate { encoder, cv, train_index, oof_accuracy }
    }

    /// Class probabilities for any node: out-of-fold if the node was in
    /// the training set, fold-model average otherwise.
    pub fn proba(&self, tag: &Tag, v: NodeId) -> Vec<f32> {
        if let Some(&i) = self.train_index.get(&v) {
            return self.cv.oof_probs[i].clone();
        }
        self.cv.predict_proba(&self.encoder.encode(&tag.text(v).full()))
    }

    /// Entropy `H(p_i)` of the node's class posterior (Eq. 8).
    pub fn entropy_of(&self, tag: &Tag, v: NodeId) -> f32 {
        entropy(&self.proba(tag, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::SplitConfig;

    fn trained() -> (Tag, LabeledSplit, Surrogate) {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 3);
        let tag = bundle.tag;
        let split = LabeledSplit::generate(
            &tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 200 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let sur = Surrogate::train(&tag, &split, &SurrogateConfig::small(7));
        (tag, split, sur)
    }

    #[test]
    fn learns_better_than_chance_on_synthetic_cora() {
        let (_, _, sur) = trained();
        assert!(sur.oof_accuracy > 0.30, "oof accuracy {}", sur.oof_accuracy);
    }

    #[test]
    fn probabilities_are_distributions() {
        let (tag, split, sur) = trained();
        for &v in split.queries().iter().take(10).chain(split.labeled().iter().take(10)) {
            let p = sur.proba(&tag, v);
            assert_eq!(p.len(), tag.num_classes());
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn entropy_lower_for_informative_nodes_on_average() {
        // Regenerate to get the alphas (latent informativeness).
        let bundle = dataset(DatasetId::Cora, Some(0.3), 3);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 200 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let sur = Surrogate::train(tag, &split, &SurrogateConfig::small(7));
        let (mut h_hi, mut n_hi, mut h_lo, mut n_lo) = (0.0f64, 0, 0.0f64, 0);
        for &v in split.queries() {
            let h = sur.entropy_of(tag, v) as f64;
            if bundle.alphas[v.index()] > 0.25 {
                h_hi += h;
                n_hi += 1;
            } else {
                h_lo += h;
                n_lo += 1;
            }
        }
        let (h_hi, h_lo) = (h_hi / n_hi as f64, h_lo / n_lo as f64);
        assert!(
            h_hi < h_lo,
            "informative nodes should have lower surrogate entropy: {h_hi:.3} vs {h_lo:.3}"
        );
    }

    #[test]
    fn large_config_searches_and_trains() {
        let bundle = dataset(DatasetId::Cora, Some(0.2), 5);
        let tag = bundle.tag;
        let split = LabeledSplit::generate(
            &tag,
            SplitConfig::Fraction { labeled_fraction: 0.3, num_queries: 100 },
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let mut cfg = SurrogateConfig::large(3);
        cfg.candidates.truncate(2); // keep the unit test quick
        cfg.max_train = 200;
        let sur = Surrogate::train(&tag, &split, &cfg);
        assert!(sur.oof_accuracy > 0.25, "oof {}", sur.oof_accuracy);
        let p = sur.proba(&tag, split.queries()[0]);
        assert_eq!(p.len(), tag.num_classes());
    }
}
