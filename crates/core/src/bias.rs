//! Category-bias estimation on the calibration subset `V_L^c` (§V-A1).
//!
//! "We first randomly select a small subset of nodes `V_L^c` from `V_L`
//! and use their text attributes to generate LLM predictions … we calculate
//! the distribution of misclassification ratios for each class
//! `w = (w_1, …, w_K)`."
//!
//! These calibration queries are *real* LLM calls (they cost tokens and are
//! metered); the subset is sized `10 × K` per §VI-A3.

use crate::error::Result;
use crate::executor::Executor;
use crate::labels::LabelStore;
use crate::predictor::ZeroShot;
use mqo_graph::{ClassId, LabeledSplit, NodeId, Tag};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The estimated per-class misclassification ratios plus the calibration
/// artifacts needed to fit the merger `g_θ2`.
#[derive(Debug, Clone)]
pub struct BiasEstimate {
    /// `w_k` = fraction of calibration nodes of class `k` the LLM got wrong
    /// from text alone.
    pub w: Vec<f64>,
    /// The calibration nodes `V_L^c`.
    pub calib_nodes: Vec<NodeId>,
    /// The LLM's zero-shot prediction for each calibration node.
    pub predictions: Vec<ClassId>,
}

impl BiasEstimate {
    /// The bias term `b_i = p_i · wᵀ` (Eq. 9).
    pub fn bias_term(&self, probs: &[f32]) -> f64 {
        probs.iter().zip(&self.w).map(|(&p, &w)| p as f64 * w).sum()
    }

    /// Whether the LLM misclassified calibration node at index `i`.
    pub fn misclassified(&self, tag: &Tag, i: usize) -> bool {
        self.predictions[i] != tag.label(self.calib_nodes[i])
    }
}

/// Run the calibration queries and estimate `w`.
///
/// `per_class` is the number of calibration nodes per class (paper: 10);
/// classes with fewer labeled nodes contribute what they have.
pub fn estimate_bias(
    exec: &Executor<'_>,
    split: &LabeledSplit,
    per_class: usize,
    seed: u64,
) -> Result<BiasEstimate> {
    let tag = exec.tag;
    let k = tag.num_classes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb1a5);

    // Stratified sample of V_L.
    let mut by_class: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for &v in split.labeled() {
        by_class[tag.label(v).index()].push(v);
    }
    let mut calib_nodes = Vec::with_capacity(per_class * k);
    for pool in &mut by_class {
        pool.shuffle(&mut rng);
        calib_nodes.extend(pool.iter().take(per_class));
    }

    // Zero-shot queries on the calibration nodes (real, metered cost).
    let labels = LabelStore::from_split(tag, split);
    let outcome = exec.run_all(&ZeroShot, &labels, &calib_nodes, |_| false)?;
    let predictions: Vec<ClassId> = outcome.records.iter().map(|r| r.predicted).collect();

    let mut wrong = vec![0usize; k];
    let mut total = vec![0usize; k];
    for (i, &v) in calib_nodes.iter().enumerate() {
        let c = tag.label(v).index();
        total[c] += 1;
        if predictions[i] != tag.label(v) {
            wrong[c] += 1;
        }
    }
    let w = (0..k)
        .map(|c| if total[c] == 0 { 0.0 } else { wrong[c] as f64 / total[c] as f64 })
        .collect();

    Ok(BiasEstimate { w, calib_nodes, predictions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::SplitConfig;
    use mqo_llm::{LanguageModel, ModelProfile, SimLlm};

    #[test]
    fn estimates_per_class_ratios_on_synthetic_cora() {
        let bundle = dataset(DatasetId::Cora, Some(0.4), 11);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 100 },
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 0);
        let est = estimate_bias(&exec, &split, 10, 5).unwrap();
        assert_eq!(est.w.len(), 7);
        assert_eq!(est.calib_nodes.len(), 70);
        assert!(est.w.iter().all(|&w| (0.0..=1.0).contains(&w)));
        // The simulated model is far from perfect but far from broken.
        let mean_w: f64 = est.w.iter().sum::<f64>() / 7.0;
        assert!((0.02..0.8).contains(&mean_w), "mean misclassification {mean_w}");
        // Calibration queries were real LLM calls.
        assert_eq!(llm.meter().totals().requests, 70);
    }

    #[test]
    fn bias_term_weights_probabilities() {
        let est = BiasEstimate { w: vec![0.0, 1.0], calib_nodes: vec![], predictions: vec![] };
        // All mass on the error-free class → zero bias; on the bad class → 1.
        assert_eq!(est.bias_term(&[1.0, 0.0]), 0.0);
        assert_eq!(est.bias_term(&[0.0, 1.0]), 1.0);
        assert!((est.bias_term(&[0.5, 0.5]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 12);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 15, num_queries: 50 },
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 0);
        let a = estimate_bias(&exec, &split, 5, 9).unwrap();
        let b = estimate_bias(&exec, &split, 5, 9).unwrap();
        assert_eq!(a.w, b.w);
        assert_eq!(a.calib_nodes, b.calib_nodes);
    }
}
