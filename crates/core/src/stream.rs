//! Online (streaming) classification — the dynamic-node scenario from the
//! paper's introduction, with query boosting adapted to arrival order.
//!
//! Queries arrive one at a time. Immediate execution answers instantly but
//! wastes the boosting opportunity; the [`OnlineClassifier`] instead keeps
//! a small *pending buffer* and applies Algorithm 2's candidate rule
//! online: an arrival (or a buffered query) executes as soon as it has
//! enough reliable neighbor labels (`|N_i^L| ≥ γ1`, `LC_i ≤ γ2`), and the
//! buffer's oldest entry is force-executed when capacity is hit, bounding
//! latency. Executed queries feed pseudo-labels back, so later arrivals see
//! an ever-richer label store — boosting without ever seeing the whole
//! query set up front.

use crate::boosting::BoostConfig;
use crate::error::Result;
use crate::executor::{Executor, QueryRecord};
use crate::labels::LabelStore;
use crate::predictor::{Predictor, SelectCtx};
use mqo_graph::NodeId;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Configuration of the online classifier.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Boosting thresholds applied to arrivals.
    pub boost: BoostConfig,
    /// Maximum buffered (deferred) queries; 0 = execute immediately.
    pub max_pending: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig { boost: BoostConfig::default(), max_pending: 64 }
    }
}

/// Streaming classifier state.
pub struct OnlineClassifier<'a, 'e> {
    exec: &'a Executor<'e>,
    predictor: &'a dyn Predictor,
    labels: LabelStore,
    config: OnlineConfig,
    pending: VecDeque<NodeId>,
}

impl<'a, 'e> OnlineClassifier<'a, 'e> {
    /// New classifier over an executor, predictor, and initial labels.
    pub fn new(
        exec: &'a Executor<'e>,
        predictor: &'a dyn Predictor,
        initial_labels: LabelStore,
        config: OnlineConfig,
    ) -> Self {
        OnlineClassifier {
            exec,
            predictor,
            labels: initial_labels,
            config,
            pending: VecDeque::new(),
        }
    }

    /// Current label knowledge (ground truth + accumulated pseudo-labels).
    pub fn labels(&self) -> &LabelStore {
        &self.labels
    }

    /// Buffered queries awaiting enough neighbor-label support.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    fn supported(&self, v: NodeId) -> bool {
        let ctx = SelectCtx {
            tag: self.exec.tag,
            labels: &self.labels,
            max_neighbors: self.exec.max_neighbors,
        };
        let mut rng = self.exec.query_rng(v);
        let selected = self.predictor.select_neighbors(&ctx, v, &mut rng);
        let mut kinds = HashSet::new();
        let mut count = 0;
        for n in selected {
            if let Some(c) = self.labels.get(n) {
                count += 1;
                kinds.insert(c);
            }
        }
        count >= self.config.boost.gamma1 && kinds.len() <= self.config.boost.gamma2
    }

    fn execute(&mut self, v: NodeId) -> Result<QueryRecord> {
        let mut rng = self.exec.query_rng(v);
        let record = self.exec.run_one(self.predictor, &self.labels, v, &mut rng, false)?;
        self.labels.add_pseudo(record.node, record.predicted);
        Ok(record)
    }

    /// Drain every buffered query that currently meets the candidate rule;
    /// newly executed queries can unlock further ones, so iterate to a
    /// fixed point.
    fn drain_supported(&mut self, out: &mut Vec<QueryRecord>) -> Result<()> {
        loop {
            let ready: Vec<NodeId> =
                self.pending.iter().copied().filter(|&v| self.supported(v)).collect();
            if ready.is_empty() {
                return Ok(());
            }
            self.pending.retain(|v| !ready.contains(v));
            for v in ready {
                out.push(self.execute(v)?);
            }
        }
    }

    /// Submit one arriving query. Returns every query executed as a
    /// result (possibly none — the arrival may be deferred — or several —
    /// the arrival's pseudo-label may unlock buffered queries).
    pub fn submit(&mut self, v: NodeId) -> Result<Vec<QueryRecord>> {
        let mut out = Vec::new();
        self.pending.push_back(v);
        self.drain_supported(&mut out)?;
        // Capacity bound: force the oldest pending query out.
        while self.pending.len() > self.config.max_pending {
            let oldest = self.pending.pop_front().expect("non-empty");
            out.push(self.execute(oldest)?);
            self.drain_supported(&mut out)?;
        }
        Ok(out)
    }

    /// Flush all buffered queries (end of stream), oldest first.
    pub fn flush(&mut self) -> Result<Vec<QueryRecord>> {
        let mut out = Vec::new();
        while let Some(v) = self.pending.pop_front() {
            out.push(self.execute(v)?);
            self.drain_supported(&mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::KhopRandom;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (mqo_data::DatasetBundle, LabeledSplit, SimLlm) {
        let bundle = dataset(DatasetId::Cora, Some(0.4), 41);
        let split = LabeledSplit::generate(
            &bundle.tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 200 },
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            bundle.tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        (bundle, split, llm)
    }

    #[test]
    fn every_arrival_is_answered_exactly_once() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 3);
        let predictor = KhopRandom::new(2, bundle.tag.num_nodes());
        let mut online = OnlineClassifier::new(
            &exec,
            &predictor,
            LabelStore::from_split(&bundle.tag, &split),
            OnlineConfig { max_pending: 32, ..Default::default() },
        );
        let mut answered = Vec::new();
        for &v in split.queries() {
            answered.extend(online.submit(v).unwrap());
        }
        answered.extend(online.flush().unwrap());
        assert_eq!(online.pending(), 0);
        let mut nodes: Vec<u32> = answered.iter().map(|r| r.node.0).collect();
        nodes.sort_unstable();
        let mut expected: Vec<u32> = split.queries().iter().map(|v| v.0).collect();
        expected.sort_unstable();
        assert_eq!(nodes, expected);
    }

    #[test]
    fn deferral_is_bounded_by_capacity() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 3);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
        let mut online = OnlineClassifier::new(
            &exec,
            &predictor,
            LabelStore::from_split(&bundle.tag, &split),
            OnlineConfig {
                boost: BoostConfig { gamma1: 4, gamma2: 1 }, // strict → defers a lot
                max_pending: 8,
            },
        );
        for &v in split.queries().iter().take(100) {
            online.submit(v).unwrap();
            assert!(online.pending() <= 8, "buffer exceeded capacity");
        }
    }

    #[test]
    fn online_boosting_accumulates_pseudo_labels_that_reach_prompts() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 3);
        let predictor = KhopRandom::new(2, bundle.tag.num_nodes());
        let mut online = OnlineClassifier::new(
            &exec,
            &predictor,
            LabelStore::from_split(&bundle.tag, &split),
            OnlineConfig::default(),
        );
        let mut records = Vec::new();
        for &v in split.queries() {
            records.extend(online.submit(v).unwrap());
        }
        records.extend(online.flush().unwrap());
        let pseudo_uses: usize = records.iter().map(|r| r.pseudo_neighbors).sum();
        assert!(pseudo_uses > 0, "online boosting never used a pseudo-label");
        assert_eq!(online.labels().num_pseudo(), 200);
    }

    #[test]
    fn immediate_mode_executes_on_submit() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 3);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
        let mut online = OnlineClassifier::new(
            &exec,
            &predictor,
            LabelStore::from_split(&bundle.tag, &split),
            OnlineConfig { max_pending: 0, ..Default::default() },
        );
        let out = online.submit(split.queries()[0]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(online.pending(), 0);
    }
}
