//! The evolving label store: ground truth on `V_L` plus pseudo-labels.
//!
//! Query boosting (Algorithm 2, step 3) grows the labeled set with LLM
//! responses: "Add `v_i` to `V_L`, add `ŷ_i` to `Y_L`". The store keeps
//! ground-truth and pseudo entries distinguishable so the utilization
//! analysis (Fig. 8) can count how often pseudo-labels actually enrich
//! later prompts.

use mqo_graph::{ClassId, LabeledSplit, NodeId, Tag};

/// Where a stored label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// Ground-truth label of a `V_L` node.
    GroundTruth,
    /// Pseudo-label from an earlier LLM query.
    Pseudo,
}

/// Per-node label knowledge at a point in the execution.
#[derive(Debug, Clone)]
pub struct LabelStore {
    entries: Vec<Option<(ClassId, LabelSource)>>,
    /// Pseudo entries that arrived from another shard over the label
    /// exchange rather than from a locally executed query. Tracked apart
    /// from [`LabelSource`] so every existing `Pseudo` consumer (prompt
    /// cues, utilization analysis) treats remote cues identically, while
    /// the sharding layer can still attribute γ readiness to the
    /// exchange.
    remote: Vec<bool>,
    num_ground_truth: usize,
    num_pseudo: usize,
    num_remote: usize,
}

impl LabelStore {
    /// Initialize from a split: only `V_L` nodes carry labels.
    pub fn from_split(tag: &Tag, split: &LabeledSplit) -> Self {
        let mut entries = vec![None; tag.num_nodes()];
        for &v in split.labeled() {
            entries[v.index()] = Some((tag.label(v), LabelSource::GroundTruth));
        }
        LabelStore {
            entries,
            remote: vec![false; tag.num_nodes()],
            num_ground_truth: split.num_labeled(),
            num_pseudo: 0,
            num_remote: 0,
        }
    }

    /// An empty store (no node labeled) for `n` nodes.
    pub fn empty(n: usize) -> Self {
        LabelStore {
            entries: vec![None; n],
            remote: vec![false; n],
            num_ground_truth: 0,
            num_pseudo: 0,
            num_remote: 0,
        }
    }

    /// Current label of `v`, if known.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<ClassId> {
        self.entries[v.index()].map(|(c, _)| c)
    }

    /// Label plus provenance.
    #[inline]
    pub fn get_with_source(&self, v: NodeId) -> Option<(ClassId, LabelSource)> {
        self.entries[v.index()]
    }

    /// Whether `v` currently has any label.
    #[inline]
    pub fn is_labeled(&self, v: NodeId) -> bool {
        self.entries[v.index()].is_some()
    }

    /// Whether `v` carries a pseudo-label.
    #[inline]
    pub fn is_pseudo(&self, v: NodeId) -> bool {
        matches!(self.entries[v.index()], Some((_, LabelSource::Pseudo)))
    }

    /// Record a pseudo-label for `v`. Pseudo-labels never overwrite ground
    /// truth; re-labeling a pseudo node updates it in place.
    pub fn add_pseudo(&mut self, v: NodeId, label: ClassId) {
        match self.entries[v.index()] {
            Some((_, LabelSource::GroundTruth)) => {}
            Some((_, LabelSource::Pseudo)) => {
                self.entries[v.index()] = Some((label, LabelSource::Pseudo));
                // A locally executed query supersedes an exchanged label.
                if std::mem::replace(&mut self.remote[v.index()], false) {
                    self.num_remote -= 1;
                }
            }
            None => {
                self.entries[v.index()] = Some((label, LabelSource::Pseudo));
                self.num_pseudo += 1;
            }
        }
    }

    /// Ingest a pseudo-label pushed from another shard over the label
    /// exchange. Same precedence as [`LabelStore::add_pseudo`] — ground
    /// truth is never overwritten — but the entry is tagged remote, so
    /// the serving layer can report how many cues the γ₁/γ₂ readiness
    /// rule owed to the exchange rather than to local execution. A local
    /// pseudo-label, if one exists, wins over the snapshot (the local
    /// shard executed the query itself; the exchanged copy is stale by
    /// definition). Returns whether the label took effect (fresh insert
    /// or remote-over-remote update).
    pub fn ingest_remote(&mut self, v: NodeId, label: ClassId) -> bool {
        if self.entries[v.index()].is_none() {
            self.entries[v.index()] = Some((label, LabelSource::Pseudo));
            self.num_pseudo += 1;
            self.remote[v.index()] = true;
            self.num_remote += 1;
            true
        } else if self.remote[v.index()] {
            // Remote-over-remote: later snapshot wins (same node may be
            // re-labeled upstream, mirroring pseudo relabel-in-place).
            self.entries[v.index()] = Some((label, LabelSource::Pseudo));
            true
        } else {
            false
        }
    }

    /// Whether `v`'s label arrived over the cross-shard exchange.
    #[inline]
    pub fn is_remote(&self, v: NodeId) -> bool {
        self.remote[v.index()]
    }

    /// Number of labels ingested from other shards.
    pub fn num_remote(&self) -> usize {
        self.num_remote
    }

    /// Number of ground-truth labels.
    pub fn num_ground_truth(&self) -> usize {
        self.num_ground_truth
    }

    /// Number of pseudo-labels.
    pub fn num_pseudo(&self) -> usize {
        self.num_pseudo
    }

    /// Total labeled nodes.
    pub fn num_labeled(&self) -> usize {
        self.num_ground_truth + self.num_pseudo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_graph::{GraphBuilder, NodeText, SplitConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Tag, LabeledSplit) {
        let g = GraphBuilder::new(20).build();
        let texts = (0..20).map(|i| NodeText::new(format!("t{i}"), "")).collect();
        let labels = (0..20).map(|i| ClassId::from((i % 2) as usize)).collect();
        let tag = Tag::new("t", g, texts, labels, vec!["a".into(), "b".into()]).unwrap();
        let split = LabeledSplit::generate(
            &tag,
            SplitConfig::PerClass { per_class: 3, num_queries: 10 },
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        (tag, split)
    }

    #[test]
    fn initializes_from_split() {
        let (tag, split) = fixture();
        let store = LabelStore::from_split(&tag, &split);
        assert_eq!(store.num_ground_truth(), 6);
        assert_eq!(store.num_pseudo(), 0);
        for &v in split.labeled() {
            assert_eq!(store.get(v), Some(tag.label(v)));
            assert!(!store.is_pseudo(v));
        }
        for &v in split.queries() {
            assert_eq!(store.get(v), None);
        }
    }

    #[test]
    fn pseudo_labels_accumulate_without_touching_ground_truth() {
        let (tag, split) = fixture();
        let mut store = LabelStore::from_split(&tag, &split);
        let q = split.queries()[0];
        store.add_pseudo(q, ClassId(1));
        assert_eq!(store.get(q), Some(ClassId(1)));
        assert!(store.is_pseudo(q));
        assert_eq!(store.num_pseudo(), 1);
        // Ground truth survives attempted overwrite.
        let l = split.labeled()[0];
        let truth = store.get(l).unwrap();
        store.add_pseudo(l, ClassId(1 - truth.0));
        assert_eq!(store.get(l), Some(truth));
        assert_eq!(store.num_pseudo(), 1);
    }

    #[test]
    fn pseudo_relabel_updates_in_place() {
        let (tag, split) = fixture();
        let mut store = LabelStore::from_split(&tag, &split);
        let q = split.queries()[0];
        store.add_pseudo(q, ClassId(0));
        store.add_pseudo(q, ClassId(1));
        assert_eq!(store.get(q), Some(ClassId(1)));
        assert_eq!(store.num_pseudo(), 1);
    }

    #[test]
    fn empty_store_has_no_labels() {
        let store = LabelStore::empty(5);
        assert_eq!(store.num_labeled(), 0);
        assert!(!store.is_labeled(NodeId(3)));
    }

    #[test]
    fn remote_ingest_tags_provenance_and_respects_precedence() {
        let (tag, split) = fixture();
        let mut store = LabelStore::from_split(&tag, &split);
        let q = split.queries()[0];
        // Remote label lands on an unlabeled node: counted, tagged.
        store.ingest_remote(q, ClassId(1));
        assert_eq!(store.get(q), Some(ClassId(1)));
        assert!(store.is_pseudo(q) && store.is_remote(q));
        assert_eq!((store.num_pseudo(), store.num_remote()), (1, 1));
        // Remote-over-remote updates in place.
        store.ingest_remote(q, ClassId(0));
        assert_eq!(store.get(q), Some(ClassId(0)));
        assert_eq!(store.num_remote(), 1);
        // Ground truth is never overwritten by an exchanged label.
        let l = split.labeled()[0];
        let truth = store.get(l).unwrap();
        store.ingest_remote(l, ClassId(1 - truth.0));
        assert_eq!(store.get(l), Some(truth));
        assert!(!store.is_remote(l));
        // A local pseudo-label supersedes the remote snapshot.
        store.add_pseudo(q, ClassId(1));
        assert_eq!(store.get(q), Some(ClassId(1)));
        assert!(!store.is_remote(q));
        assert_eq!(store.num_remote(), 0);
        // And a remote arriving after a local pseudo does not clobber it.
        let q2 = split.queries()[1];
        store.add_pseudo(q2, ClassId(0));
        store.ingest_remote(q2, ClassId(1));
        assert_eq!(store.get(q2), Some(ClassId(0)));
        assert!(!store.is_remote(q2));
    }
}
