//! The multi-query execution engine.
//!
//! One place renders prompts, calls the model, parses answers, and meters
//! tokens, so every strategy (baseline, pruned, boosted, joint) differs
//! only in *what it asks for*: which queries run, in what order, with which
//! neighbor text. The optional hard budget implements Eq. 2's constraint —
//! once the meter would overflow, remaining queries are forcibly executed
//! without neighbor text.

use crate::error::Result;
use crate::labels::LabelStore;
use crate::predictor::{Predictor, SelectCtx};
use mqo_graph::{ClassId, NodeId, Tag};
use mqo_llm::parse::parse_category;
use mqo_llm::{LanguageModel, NeighborEntry, NodePromptSpec};
use mqo_obs::{
    Clock, Event, EventSink, SpanId, Tracer, DISABLED_TRACER, MONOTONIC_CLOCK, NULL_SINK,
};
use mqo_token::{ledger::Totals, Tokenizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// The query node.
    pub node: NodeId,
    /// Predicted class.
    pub predicted: ClassId,
    /// Whether the prediction matches ground truth (evaluation-side).
    pub correct: bool,
    /// Neighbors included in the prompt.
    pub neighbors_included: usize,
    /// Of those, how many carried a label (`|N_i^L|`).
    pub labeled_neighbors: usize,
    /// Of those labels, how many were pseudo-labels.
    pub pseudo_neighbors: usize,
    /// Of the pseudo-labels, how many arrived over the cross-shard label
    /// exchange rather than from local execution. Zero in single-shard
    /// deployments; in a sharded cluster `pseudo_neighbors >
    /// remote_neighbors` means local boosting contributed cues too.
    pub remote_neighbors: usize,
    /// Prompt tokens consumed by this query.
    pub prompt_tokens: u64,
    /// Whether neighbor text was omitted (pruned or budget-forced).
    pub pruned: bool,
    /// Whether the completion failed to parse (fallback prediction used).
    pub parse_failed: bool,
    /// Whether the budget was too tight for even the neighbor-free prompt:
    /// no request was sent and the deterministic fallback prediction was
    /// recorded instead.
    pub budget_starved: bool,
    /// Why the query failed, if it did. A failed query carries the
    /// deterministic fallback prediction and `correct == false`: it is a
    /// recorded outcome, not a prediction. Only populated when the
    /// executor runs in degraded mode (see [`Executor::with_degrade`]);
    /// otherwise model errors abort the run.
    pub failure: Option<String>,
}

impl QueryRecord {
    /// Whether this query failed (degraded-mode outcome).
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// Aggregated outcome of a multi-query run.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Per-query records, in execution order.
    pub records: Vec<QueryRecord>,
}

impl ExecOutcome {
    /// Classification accuracy over all executed queries.
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }

    /// Number of queries that included neighbor text (the Table VIII
    /// "# Queries Equip N_i" cost indicator).
    pub fn queries_with_neighbors(&self) -> usize {
        self.records.iter().filter(|r| !r.pruned && r.neighbors_included > 0).count()
    }

    /// Total prompt tokens across the run.
    pub fn prompt_tokens(&self) -> u64 {
        self.records.iter().map(|r| r.prompt_tokens).sum()
    }

    /// Total pseudo-label uses: how many prompt slots were enriched by a
    /// pseudo-label (the Fig. 8 utilization metric).
    pub fn pseudo_label_uses(&self) -> u64 {
        self.records.iter().map(|r| r.pseudo_neighbors as u64).sum()
    }

    /// Queries the budget starved entirely (no LLM request was sent).
    pub fn budget_starved(&self) -> usize {
        self.records.iter().filter(|r| r.budget_starved).count()
    }

    /// Queries that failed and were recorded as degraded outcomes.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.failed()).count()
    }
}

/// Reusable render buffers for the query hot path. One render needs a
/// neighbor-entry list and a prompt string, and a query may render up to
/// three prompts (main, hypothetical-full for cost attribution, budget
/// fallback); holding the buffers here lets a loop of queries reuse the
/// allocations instead of paying them per render. Create one per worker
/// (or per batch) and pass it to [`Executor::run_one_reusing`].
#[derive(Debug, Default)]
pub struct RenderScratch {
    entries: Vec<NeighborEntry>,
    prompt: String,
    alt: String,
}

impl RenderScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The execution engine, bound to one dataset and one model.
pub struct Executor<'a> {
    /// The graph being queried.
    pub tag: &'a Tag,
    /// The model answering queries.
    pub llm: &'a dyn LanguageModel,
    /// Maximum neighbors per prompt (`M`).
    pub max_neighbors: usize,
    /// Hard input-token budget (Eq. 2), if any.
    pub budget: Option<u64>,
    /// Seed for neighbor-sampling randomness.
    pub seed: u64,
    /// Telemetry sink for per-query events (defaults to the no-op sink).
    pub sink: &'a dyn EventSink,
    /// Time source for wall-clock measurements (defaults to the process
    /// monotonic clock; inject a [`mqo_obs::ManualClock`] for
    /// deterministic timings in tests).
    pub clock: &'a dyn Clock,
    /// Causal-span tracer (defaults to the disabled tracer, which makes
    /// every span a no-op).
    pub tracer: &'a Tracer,
    /// Degraded mode: a model error becomes a recorded failed outcome
    /// (fallback prediction, `failure` set) instead of aborting the run.
    pub degrade: bool,
    /// Crash-safe run journal: completed queries are appended as they
    /// finish, and previously journaled queries replay without re-billing.
    pub journal: Option<&'a crate::journal::RunJournal>,
    /// Fallback parent for query spans on threads with no open span (set
    /// to the run/round span id by the orchestration layers).
    span_scope: AtomicU64,
    /// Request trace id stamped on cost events and journal records when
    /// the executor runs inside a served request (empty for batch runs).
    trace: String,
}

impl<'a> Executor<'a> {
    /// Engine without a hard budget.
    pub fn new(
        tag: &'a Tag,
        llm: &'a dyn LanguageModel,
        max_neighbors: usize,
        seed: u64,
    ) -> Self {
        Executor {
            tag,
            llm,
            max_neighbors,
            budget: None,
            seed,
            sink: &NULL_SINK,
            clock: &MONOTONIC_CLOCK,
            tracer: &DISABLED_TRACER,
            degrade: false,
            journal: None,
            span_scope: AtomicU64::new(SpanId::NONE.0),
            trace: String::new(),
        }
    }

    /// Set a hard input-token budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Emit per-query telemetry to `sink`.
    pub fn with_sink(mut self, sink: &'a dyn EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Measure wall time with `clock` instead of the monotonic default.
    pub fn with_clock(mut self, clock: &'a dyn Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Open causal spans on `tracer` around queries and model calls.
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Degrade gracefully: record model errors as failed outcomes instead
    /// of aborting the run.
    pub fn with_degrade(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Append completed queries to `journal` and replay queries it already
    /// holds (crash-safe resume; see [`crate::journal::RunJournal`]).
    pub fn with_journal(mut self, journal: &'a crate::journal::RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Stamp `trace` (a served request's 16-hex trace id) on this
    /// executor's cost events and journal records. The id never enters
    /// [`QueryRecord`] itself, so served records stay bit-identical to
    /// batch records.
    pub fn with_trace(mut self, trace: String) -> Self {
        self.trace = trace;
        self
    }

    /// If the journal already holds a completed record for `v`, replay it:
    /// emit [`Event::QueryReplayed`] and return the record without touching
    /// the model or the meter.
    pub fn replay_journaled(&self, v: NodeId) -> Option<QueryRecord> {
        let rec = self.journal?.replay(v)?;
        self.sink.emit(&Event::QueryReplayed { node: v.0 });
        Some(rec)
    }

    /// Append a freshly completed record to the journal, if one is attached.
    pub fn journal_record(&self, rec: &QueryRecord) {
        if let Some(j) = self.journal {
            j.record_traced(rec, &self.trace);
        }
    }

    /// A failed outcome for `v` produced outside `run_one` (worker panic
    /// containment): the fallback prediction, zero tokens, `failure` set.
    pub fn failed_record(&self, v: NodeId, failure: String) -> QueryRecord {
        self.sink.emit(&Event::QueryFailed { node: v.0, error: failure.clone() });
        QueryRecord {
            node: v,
            predicted: ClassId::from(0usize),
            correct: false,
            neighbors_included: 0,
            labeled_neighbors: 0,
            pseudo_neighbors: 0,
            remote_neighbors: 0,
            prompt_tokens: 0,
            pruned: true,
            parse_failed: false,
            budget_starved: false,
            failure: Some(failure),
        }
    }

    /// Set the fallback parent span for queries executed from threads
    /// with no open span of their own (worker threads inherit the
    /// run/round span this way).
    pub fn set_span_scope(&self, scope: SpanId) {
        self.span_scope.store(scope.0, Ordering::Relaxed);
    }

    /// The current fallback parent span.
    pub fn span_scope(&self) -> SpanId {
        SpanId(self.span_scope.load(Ordering::Relaxed))
    }

    /// Render the prompt for `v` with the given neighbor set.
    fn render(
        &self,
        predictor: &dyn Predictor,
        v: NodeId,
        neighbors: &[NodeId],
        labels: &LabelStore,
        ranked: bool,
    ) -> String {
        let mut entries = Vec::new();
        let mut out = String::new();
        self.render_into(predictor, v, neighbors, labels, ranked, &mut entries, &mut out);
        out
    }

    /// Render into caller-owned buffers (`entries` and `out` are cleared
    /// and reused). The allocation-free steady state behind
    /// [`RenderScratch`].
    #[allow(clippy::too_many_arguments)]
    fn render_into(
        &self,
        predictor: &dyn Predictor,
        v: NodeId,
        neighbors: &[NodeId],
        labels: &LabelStore,
        ranked: bool,
        entries: &mut Vec<NeighborEntry>,
        out: &mut String,
    ) {
        let ctx = SelectCtx { tag: self.tag, labels, max_neighbors: self.max_neighbors };
        entries.clear();
        entries.extend(neighbors.iter().map(|&n| predictor.entry_for(&ctx, n)));
        let t = self.tag.text(v);
        NodePromptSpec {
            title: &t.title,
            abstract_text: &t.body,
            neighbors: entries,
            categories: self.tag.class_names(),
            ranked: ranked && !entries.is_empty(),
        }
        .render_into(out);
    }

    /// Execute one query. `force_prune` omits neighbor text regardless of
    /// the predictor (token pruning / budget exhaustion). Allocates fresh
    /// render buffers; loops should prefer [`Executor::run_one_reusing`].
    pub fn run_one(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        v: NodeId,
        rng: &mut StdRng,
        force_prune: bool,
    ) -> Result<QueryRecord> {
        let mut scratch = RenderScratch::new();
        self.run_one_reusing(predictor, labels, v, rng, force_prune, &mut scratch)
    }

    /// [`Executor::run_one`] with caller-owned render buffers, so a loop
    /// of queries re-renders into the same allocations.
    pub fn run_one_reusing(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        v: NodeId,
        rng: &mut StdRng,
        force_prune: bool,
        scratch: &mut RenderScratch,
    ) -> Result<QueryRecord> {
        // A served request's propagated deadline (installed thread-local
        // by the serving layer; see `mqo_llm::deadline`): once it passes,
        // remaining queries become cheap failed outcomes — no render, no
        // request, zero tokens — instead of burning budget on answers
        // nobody is waiting for. Batch runs never install one.
        if mqo_llm::request_deadline_expired(self.clock.now_micros()) {
            return Ok(self.failed_record(v, "request deadline exceeded".to_string()));
        }
        let started = self.clock.now_micros();
        let query_span = self.tracer.span(
            self.sink,
            "query",
            || format!("node {}", v.0),
            self.tracer.current_or(self.span_scope()),
        );
        let ctx = SelectCtx { tag: self.tag, labels, max_neighbors: self.max_neighbors };
        let neighbors =
            if force_prune { Vec::new() } else { predictor.select_neighbors(&ctx, v, rng) };
        // Split the scratch so the main prompt can be counted while the
        // alternate buffer holds a second render.
        let RenderScratch { entries, prompt, alt } = scratch;
        self.render_into(predictor, v, &neighbors, labels, predictor.ranked(), entries, prompt);
        let mut pruned = force_prune || neighbors.is_empty();
        let mut used_neighbors = neighbors;
        let mut budget_starved = false;

        // Cost attribution (ledger input): what the query *would* have
        // cost with its full neighbor selection. For force-pruned queries
        // that means rendering the hypothetical neighbor-rich prompt —
        // optional extra work, skipped unless a sink is actually
        // observing. The per-query RNG is derived from `(seed, node)` and
        // otherwise unused on the pruned path, so drawing the hypothetical
        // selection from it cannot perturb results.
        let observing = self.sink.observing();
        // Token count of the *current* contents of `prompt`, computed at
        // most once: counting is O(len) and the serving hot path would
        // otherwise tokenize the same unchanged prompt three times
        // (attribution, budget, final accounting). Invalidated when the
        // budget fallback swaps the prompt.
        let mut prompt_count: Option<u64> = None;
        fn count_once(prompt: &str, memo: &mut Option<u64>) -> u64 {
            *memo.get_or_insert_with(|| Tokenizer.count(prompt) as u64)
        }
        let rendered_tokens = if !observing {
            0
        } else if force_prune {
            let would = predictor.select_neighbors(&ctx, v, rng);
            if would.is_empty() {
                count_once(prompt, &mut prompt_count)
            } else {
                self.render_into(
                    predictor,
                    v,
                    &would,
                    labels,
                    predictor.ranked(),
                    entries,
                    alt,
                );
                Tokenizer.count(alt) as u64
            }
        } else {
            count_once(prompt, &mut prompt_count)
        };

        // Budget enforcement (Eq. 2), applied to the *final* prompt. The
        // first check may downgrade a neighbor-rich prompt to the
        // neighbor-free fallback; the second check covers the fallback
        // itself and prompts that arrived pruned (force-pruned queries are
        // not exempt). If even the neighbor-free prompt would overflow, the
        // query is budget-starved: no request is sent at all, so a
        // budgeted run can never overshoot.
        if let Some(b) = self.budget {
            let cost = count_once(prompt, &mut prompt_count);
            if !pruned && self.llm.meter().would_exceed(cost, b) {
                used_neighbors.clear();
                self.render_into(predictor, v, &used_neighbors, labels, false, entries, alt);
                std::mem::swap(prompt, alt);
                prompt_count = None;
                pruned = true;
            }
            let final_cost = count_once(prompt, &mut prompt_count);
            if self.llm.meter().would_exceed(final_cost, b) {
                used_neighbors.clear();
                pruned = true;
                budget_starved = true;
            }
        }

        let labeled_neighbors =
            used_neighbors.iter().filter(|&&n| labels.is_labeled(n)).count();
        let pseudo_neighbors = used_neighbors.iter().filter(|&&n| labels.is_pseudo(n)).count();
        let remote_neighbors = used_neighbors.iter().filter(|&&n| labels.is_remote(n)).count();
        let final_tokens = if observing { count_once(prompt, &mut prompt_count) } else { 0 };

        let mut failure: Option<String> = None;
        let (predicted, parse_failed, prompt_tokens, cache_saved_tokens) = if budget_starved {
            // No tokens to spend: answer with the same deterministic
            // fallback used for unparseable responses, without touching
            // the model or the meter.
            (ClassId::from(0usize), false, 0, 0)
        } else {
            let result = {
                let _llm_span = self.tracer.span(
                    self.sink,
                    "llm_call",
                    || format!("{} tokens", Tokenizer.count(prompt)),
                    self.tracer.current(),
                );
                self.llm.complete(prompt)
            };
            match result {
                Ok(completion) => {
                    let parsed = parse_category(&completion.text, self.tag.class_names());
                    // Fallback for unparseable responses: the first
                    // category. Real clients would retry; the deterministic
                    // fallback keeps runs reproducible and is exercised by
                    // < 1% of simulated responses.
                    (
                        ClassId::from(parsed.unwrap_or(0)),
                        parsed.is_none(),
                        completion.usage.prompt_tokens,
                        completion.cache_saved_tokens,
                    )
                }
                Err(e) if self.degrade => {
                    // Graceful degradation: the error becomes a recorded
                    // failed outcome. Tokens the retry/resilience layers
                    // already metered for the doomed attempts surface in
                    // the ledger's unattributed bucket; this query's own
                    // prompt lands in the `failed` bucket below.
                    let error = e.to_string();
                    self.sink.emit(&Event::QueryFailed { node: v.0, error: error.clone() });
                    failure = Some(error);
                    (ClassId::from(0usize), false, 0, 0)
                }
                Err(e) => return Err(e.into()),
            }
        };

        self.sink.emit(&Event::QueryExecuted {
            node: v.0,
            prompt_tokens,
            pruned,
            parse_failed,
            wall_micros: self.clock.now_micros().saturating_sub(started),
        });
        if observing {
            // Pseudo-label cue lines in the final prompt: the Algorithm 2
            // enrichment spend, reported as a subset of billed tokens.
            let enrichment_tokens: u64 = used_neighbors
                .iter()
                .filter(|&&n| labels.is_pseudo(n))
                .filter_map(|&n| labels.get(n))
                .map(|c| {
                    Tokenizer.count(&format!("Category: {}", self.tag.class_name(c))) as u64
                })
                .sum();
            // The final prompt's tokens go to exactly one bucket: refused
            // by the budget, avoided by a cache serve, or billed. Retry
            // re-sends and lenient parse recoveries spend *extra* metered
            // tokens beyond these flows; the ledger surfaces that
            // difference as its unattributed bucket, so the per-query
            // identity below holds unconditionally.
            let (billed, cache_saved, starved, failed) = if budget_starved {
                (0, 0, final_tokens, 0)
            } else if failure.is_some() {
                (0, 0, 0, final_tokens)
            } else if cache_saved_tokens > 0 {
                (0, final_tokens, 0, 0)
            } else {
                (final_tokens, 0, 0, 0)
            };
            self.sink.emit(&Event::QueryCost {
                node: v.0,
                rendered_tokens,
                billed_tokens: billed,
                pruned_saved_tokens: rendered_tokens.saturating_sub(final_tokens),
                cache_saved_tokens: cache_saved,
                starved_tokens: starved,
                failed_tokens: failed,
                enrichment_tokens,
                trace: self.trace.clone(),
            });
        }
        drop(query_span);

        Ok(QueryRecord {
            node: v,
            predicted,
            // A failed query produced no prediction; never score its
            // fallback class against ground truth.
            correct: failure.is_none() && predicted == self.tag.label(v),
            neighbors_included: used_neighbors.len(),
            labeled_neighbors,
            pseudo_neighbors,
            remote_neighbors,
            prompt_tokens,
            pruned,
            parse_failed,
            budget_starved,
            failure,
        })
    }

    /// Render the prompt a query *would* send, without calling the model —
    /// free token estimation for campaign planning (see
    /// [`crate::planner`]).
    pub fn render_for_estimate(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        v: NodeId,
        rng: &mut StdRng,
        force_prune: bool,
    ) -> String {
        let ctx = SelectCtx { tag: self.tag, labels, max_neighbors: self.max_neighbors };
        let neighbors =
            if force_prune { Vec::new() } else { predictor.select_neighbors(&ctx, v, rng) };
        self.render(predictor, v, &neighbors, labels, predictor.ranked())
    }

    /// Per-query RNG: seeding neighbor sampling by (executor seed, node)
    /// pairs experiment arms — a query draws the *same* neighbor sample
    /// whether or not other queries were pruned, so paired comparisons
    /// (Table IV's Δ%, Fig. 7's curves) measure the strategy, not
    /// resampling noise.
    pub fn query_rng(&self, v: NodeId) -> StdRng {
        let mut x = self.seed ^ ((v.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(x ^ (x >> 31))
    }

    /// Execute `queries` in order with a fixed label store (no boosting).
    /// `prune_set` marks queries to execute without neighbor text
    /// (Algorithm 1 step 2).
    ///
    /// Shim over the event-driven scheduler's FIFO policy (see
    /// [`crate::sched::Scheduler`]); semantics are unchanged.
    pub fn run_all(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: impl Fn(NodeId) -> bool + Sync,
    ) -> Result<ExecOutcome> {
        let report = crate::sched::Scheduler::new(self, crate::sched::SchedulePolicy::Fifo)
            .run(predictor, crate::sched::Labels::Fixed(labels), queries, prune_set)?;
        Ok(report.outcome)
    }

    /// The pre-scheduler sequential loop, kept verbatim as the oracle
    /// for the scheduler-equivalence proptests.
    #[cfg(test)]
    pub(crate) fn run_all_legacy(
        &self,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: impl Fn(NodeId) -> bool,
    ) -> Result<ExecOutcome> {
        let mut out = ExecOutcome::default();
        let mut scratch = RenderScratch::new();
        for &v in queries {
            if let Some(rec) = self.replay_journaled(v) {
                out.records.push(rec);
                continue;
            }
            let mut rng = self.query_rng(v);
            let rec = self.run_one_reusing(
                predictor,
                labels,
                v,
                &mut rng,
                prune_set(v),
                &mut scratch,
            )?;
            self.journal_record(&rec);
            out.records.push(rec);
        }
        Ok(out)
    }

    /// Meter totals snapshot from the underlying model.
    pub fn usage(&self) -> Totals {
        self.llm.meter().totals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_fixtures::two_cliques;
    use crate::predictor::{KhopRandom, ZeroShot};
    use mqo_llm::ScriptedLlm;

    fn queries() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(7)]
    }

    #[test]
    fn zero_shot_run_counts_and_scores() {
        let tag = two_cliques();
        // Node 0 is Alpha, node 7 is Beta; answer Alpha twice.
        let llm = ScriptedLlm::new(["Category: ['Alpha']", "Category: ['Alpha']"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let out = exec.run_all(&ZeroShot, &labels, &queries(), |_| false).unwrap();
        assert_eq!(out.records.len(), 2);
        assert!(out.records[0].correct);
        assert!(!out.records[1].correct);
        assert!((out.accuracy() - 0.5).abs() < 1e-9);
        assert_eq!(out.queries_with_neighbors(), 0);
        assert!(out.prompt_tokens() > 0);
    }

    #[test]
    fn neighbor_text_appears_and_is_counted() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(["Category: ['Alpha']"]);
        let exec = Executor::new(&tag, &llm, 3, 0);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let p = KhopRandom::new(1, tag.num_nodes());
        let out = exec.run_all(&p, &labels, &[NodeId(0)], |_| false).unwrap();
        let r = &out.records[0];
        assert_eq!(r.neighbors_included, 3);
        assert_eq!(r.labeled_neighbors, 1);
        assert_eq!(r.pseudo_neighbors, 1);
        let prompt = &llm.prompts_seen()[0];
        assert!(prompt.contains("Neighbor Paper0"));
        assert!(prompt.contains("Category: Alpha"));
    }

    #[test]
    fn prune_set_strips_neighbor_text() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(["Category: ['Alpha']", "Category: ['Beta']"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let out =
            exec.run_all(&p, &labels, &[NodeId(0), NodeId(7)], |v| v == NodeId(0)).unwrap();
        assert!(out.records[0].pruned);
        assert_eq!(out.records[0].neighbors_included, 0);
        assert!(!out.records[1].pruned);
        let prompts = llm.prompts_seen();
        assert!(!prompts[0].contains("Neighbor Paper"));
        assert!(prompts[1].contains("Neighbor Paper"));
        // Pruned prompt is strictly cheaper.
        assert!(out.records[0].prompt_tokens < out.records[1].prompt_tokens);
    }

    #[test]
    fn hard_budget_forces_neighbor_free_prompts() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        // Budget only fits neighbor-free prompts after the first query.
        let exec = Executor::new(&tag, &llm, 5, 0).with_budget(400);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        let out = exec.run_all(&p, &labels, &qs, |_| false).unwrap();
        assert!(out.records.iter().any(|r| r.pruned), "budget never bound");
        // Once the budget binds, every later query runs neighbor-free.
        let first_pruned = out.records.iter().position(|r| r.pruned).unwrap();
        assert!(out.records[first_pruned..].iter().all(|r| r.pruned));
        // A budget-free run costs strictly more.
        let llm_free = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec_free = Executor::new(&tag, &llm_free, 5, 0);
        let free = exec_free.run_all(&p, &labels, &qs, |_| false).unwrap();
        assert!(out.prompt_tokens() < free.prompt_tokens());
    }

    #[test]
    fn hard_budget_is_never_overshot() {
        // Regression: the fallback prompt used to be sent without
        // re-checking its cost, and force-pruned queries skipped the
        // budget check entirely — both overshot the Eq. 2 budget. Sweep
        // budgets from "starves everything" to "fits everything" and
        // assert the invariant on actual metered spend.
        let tag = two_cliques();
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        for budget in [1u64, 50, 120, 400, 100_000] {
            for force_prune_all in [false, true] {
                let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
                let exec = Executor::new(&tag, &llm, 5, 0).with_budget(budget);
                let labels = LabelStore::empty(tag.num_nodes());
                let out = exec.run_all(&p, &labels, &qs, |_| force_prune_all).unwrap();
                assert_eq!(out.records.len(), qs.len(), "every query gets a record");
                assert!(
                    llm.meter().totals().prompt_tokens <= budget,
                    "budget {budget} overshot: spent {} (force_prune={force_prune_all})",
                    llm.meter().totals().prompt_tokens,
                );
                assert!(out.prompt_tokens() <= budget);
            }
        }
    }

    #[test]
    fn budget_starved_queries_send_no_request() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        // A budget of 1 starves even the neighbor-free prompt.
        let exec = Executor::new(&tag, &llm, 5, 0).with_budget(1);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..3).map(NodeId).collect();
        let out = exec.run_all(&p, &labels, &qs, |_| false).unwrap();
        assert_eq!(out.budget_starved(), 3);
        assert!(llm.prompts_seen().is_empty(), "no request reached the model");
        assert_eq!(llm.meter().totals().requests, 0);
        for r in &out.records {
            assert!(r.budget_starved && r.pruned);
            assert_eq!(r.prompt_tokens, 0);
            assert_eq!(r.predicted, ClassId(0), "deterministic fallback");
        }
    }

    #[test]
    fn query_events_reach_the_sink() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(["Category: ['Alpha']", "total nonsense?!"]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink);
        let labels = LabelStore::empty(tag.num_nodes());
        let out = exec.run_all(&ZeroShot, &labels, &[NodeId(0), NodeId(7)], |_| false).unwrap();
        let events = sink.of_kind("query_executed");
        assert_eq!(events.len(), 2);
        match &events[1] {
            mqo_obs::Event::QueryExecuted {
                node, prompt_tokens, pruned, parse_failed, ..
            } => {
                assert_eq!(*node, 7);
                assert_eq!(*prompt_tokens, out.records[1].prompt_tokens);
                assert!(*pruned, "zero-shot prompts are neighbor-free");
                assert!(*parse_failed);
            }
            other => panic!("expected QueryExecuted, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_response_falls_back_deterministically() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(["total nonsense with no usable answer?!"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let out = exec.run_all(&ZeroShot, &labels, &[NodeId(0)], |_| false).unwrap();
        assert!(out.records[0].parse_failed);
        assert_eq!(out.records[0].predicted, ClassId(0));
    }

    #[test]
    fn transport_failures_abort_without_degrade() {
        let tag = two_cliques();
        // An empty script exhausts on the first call.
        let llm = ScriptedLlm::new(Vec::<String>::new());
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let err = exec.run_all(&ZeroShot, &labels, &[NodeId(0)], |_| false);
        assert!(err.is_err(), "errors must propagate when degrade is off");
    }

    #[test]
    fn degraded_mode_records_failures_instead_of_aborting() {
        let tag = two_cliques();
        // One good answer, then the script runs dry: query 2 fails.
        let llm = ScriptedLlm::new(["Category: ['Alpha']"]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink).with_degrade();
        let labels = LabelStore::empty(tag.num_nodes());
        let out = exec.run_all(&ZeroShot, &labels, &[NodeId(0), NodeId(7)], |_| false).unwrap();
        assert_eq!(out.records.len(), 2, "the run completed despite the failure");
        assert_eq!(out.failed(), 1);
        let failed = &out.records[1];
        assert!(failed.failed());
        assert!(!failed.correct, "failed queries never score");
        assert_eq!(failed.prompt_tokens, 0, "no tokens were billed to the failed query");
        assert_eq!(sink.of_kind("query_failed").len(), 1);
    }

    #[test]
    fn failed_query_cost_lands_in_the_failed_bucket() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(Vec::<String>::new());
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink).with_degrade();
        let labels = LabelStore::empty(tag.num_nodes());
        let out = exec.run_all(&ZeroShot, &labels, &[NodeId(0)], |_| false).unwrap();
        assert_eq!(out.failed(), 1);
        match &sink.of_kind("query_cost")[0] {
            mqo_obs::Event::QueryCost {
                rendered_tokens,
                billed_tokens,
                failed_tokens,
                starved_tokens,
                ..
            } => {
                assert_eq!(*billed_tokens, 0);
                assert_eq!(*starved_tokens, 0);
                assert!(*failed_tokens > 0);
                assert!(failed_tokens <= rendered_tokens);
            }
            other => panic!("expected QueryCost, got {other:?}"),
        }
    }

    #[test]
    fn expired_request_deadline_fails_remaining_queries_cheaply() {
        let tag = two_cliques();
        // An empty script panics if any query reaches the model.
        let llm = ScriptedLlm::new(Vec::<String>::new());
        let clock = mqo_obs::ManualClock::new();
        clock.advance(10);
        let exec = Executor::new(&tag, &llm, 4, 0).with_clock(&clock);
        let labels = LabelStore::empty(tag.num_nodes());
        let _g = mqo_llm::with_request_deadline(10);
        let out = exec.run_all(&ZeroShot, &labels, &queries(), |_| false).unwrap();
        assert_eq!(out.failed(), 2, "every query is a recorded failed outcome");
        assert_eq!(llm.meter().totals().requests, 0, "no request was sent");
        assert!(out.records.iter().all(|r| r.prompt_tokens == 0), "zero tokens billed");
    }

    #[test]
    fn sns_prompt_mentions_ranking_clause() {
        use crate::predictor::Sns;
        let tag = two_cliques();
        let llm = ScriptedLlm::new(["Category: ['Alpha']"]);
        let exec = Executor::new(&tag, &llm, 2, 0);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let sns = Sns::fit(&tag);
        exec.run_all(&sns, &labels, &[NodeId(0)], |_| false).unwrap();
        assert!(llm.prompts_seen()[0].contains("most related to least related"));
    }
}
