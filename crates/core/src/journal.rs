//! Crash-safe run journaling: an append-only JSONL log of completed
//! queries that lets an interrupted run resume without re-billing a
//! single token.
//!
//! ## Format
//!
//! One JSON object per line, discriminated by `"kind"`:
//!
//! * `header` — written first, exactly once. Carries the run fingerprint
//!   ([`RunHeader`]): dataset, method, seed, query count, boosting flag,
//!   and budget. Resume refuses a journal whose header disagrees with the
//!   run being resumed — replaying records into a different configuration
//!   would silently corrupt results.
//! * `record` — one completed [`QueryRecord`], in completion order.
//!   Written (and flushed) as each query finishes, so at most the
//!   in-flight query is lost on a crash.
//! * `round_sealed` — a durability barrier after each boosting round
//!   (or after a full non-boosted run): the file is fsync'd before the
//!   seal returns, so sealed records survive power loss, not just
//!   process death.
//!
//! ## Crash tolerance
//!
//! A crash mid-write leaves a truncated final line. [`RunJournal::resume`]
//! parses leniently: it stops at the first malformed line and replays
//! everything before it. Resumed queries are served from the journal
//! ([`crate::Executor::replay_journaled`]) with zero LLM requests and
//! zero metered tokens; only genuinely unfinished queries execute.

use crate::executor::QueryRecord;
use mqo_graph::{ClassId, NodeId};
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The run fingerprint stored in the journal header. Resume only proceeds
/// when every field matches the resuming run's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// Dataset name (e.g. `"cora"`).
    pub dataset: String,
    /// Prediction method (e.g. `"khop"`, `"sns"`).
    pub method: String,
    /// Executor seed — neighbor sampling must repeat exactly.
    pub seed: u64,
    /// Number of queries in the run.
    pub queries: u64,
    /// Whether query boosting (Algorithm 2) is active.
    pub boost: bool,
    /// Hard input-token budget (Eq. 2), if any.
    pub budget: Option<u64>,
}

impl RunHeader {
    fn to_json(&self) -> Value {
        json!({
            "kind": "header",
            "dataset": self.dataset,
            "method": self.method,
            "seed": self.seed,
            "queries": self.queries,
            "boost": self.boost,
            "budget": self.budget,
        })
    }

    fn from_json(v: &Value) -> Option<RunHeader> {
        if v.get("kind")?.as_str()? != "header" {
            return None;
        }
        Some(RunHeader {
            dataset: v.get("dataset")?.as_str()?.to_string(),
            method: v.get("method")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_u64()?,
            queries: v.get("queries")?.as_u64()?,
            boost: v.get("boost")?.as_bool()?,
            budget: match v.get("budget") {
                None | Some(Value::Null) => None,
                Some(b) => Some(b.as_u64()?),
            },
        })
    }
}

/// Serialize one final record as a journal line (also the `--dump-records`
/// format, so resume comparisons diff the exact bytes the journal stores).
pub fn record_to_json(r: &QueryRecord) -> Value {
    record_to_json_traced(r, "")
}

/// [`record_to_json`] plus a `"trace"` key carrying the served request's
/// trace id when `trace` is non-empty. [`record_from_json`] ignores
/// unknown keys, so traced journals replay identically to untraced ones —
/// the trace annotates the line without entering the [`QueryRecord`].
pub fn record_to_json_traced(r: &QueryRecord, trace: &str) -> Value {
    let mut v = json!({
        "kind": "record",
        "node": r.node.0,
        "predicted": r.predicted.0,
        "correct": r.correct,
        "neighbors_included": r.neighbors_included,
        "labeled_neighbors": r.labeled_neighbors,
        "pseudo_neighbors": r.pseudo_neighbors,
        "remote_neighbors": r.remote_neighbors,
        "prompt_tokens": r.prompt_tokens,
        "pruned": r.pruned,
        "parse_failed": r.parse_failed,
        "budget_starved": r.budget_starved,
        "failure": r.failure,
    });
    if !trace.is_empty() {
        if let Value::Object(o) = &mut v {
            o.insert("trace".into(), Value::String(trace.to_string()));
        }
    }
    v
}

/// Parse a record line written by [`record_to_json`]; `None` when the
/// value is some other entry kind or is missing fields.
pub fn record_from_json(v: &Value) -> Option<QueryRecord> {
    if v.get("kind")?.as_str()? != "record" {
        return None;
    }
    Some(QueryRecord {
        node: NodeId(u32::try_from(v.get("node")?.as_u64()?).ok()?),
        predicted: ClassId(u16::try_from(v.get("predicted")?.as_u64()?).ok()?),
        correct: v.get("correct")?.as_bool()?,
        neighbors_included: v.get("neighbors_included")?.as_u64()? as usize,
        labeled_neighbors: v.get("labeled_neighbors")?.as_u64()? as usize,
        pseudo_neighbors: v.get("pseudo_neighbors")?.as_u64()? as usize,
        // Absent in journals written before the sharding release; those
        // records predate the exchange, so zero is the true value.
        remote_neighbors: v.get("remote_neighbors").and_then(Value::as_u64).unwrap_or(0)
            as usize,
        prompt_tokens: v.get("prompt_tokens")?.as_u64()?,
        pruned: v.get("pruned")?.as_bool()?,
        parse_failed: v.get("parse_failed")?.as_bool()?,
        budget_starved: v.get("budget_starved")?.as_bool()?,
        failure: match v.get("failure") {
            None | Some(Value::Null) => None,
            Some(f) => Some(f.as_str()?.to_string()),
        },
    })
}

struct Inner {
    file: File,
    /// Completed records awaiting replay, keyed by node. A queue per node
    /// because a node may legitimately complete more than once across
    /// independent sub-runs sharing one journal (e.g. paired arms).
    replay: HashMap<u32, VecDeque<QueryRecord>>,
    replayed: u64,
    recorded: u64,
}

/// An append-only, crash-tolerant journal of completed queries. Safe to
/// share across worker threads (all writes go through one mutex).
pub struct RunJournal {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl RunJournal {
    /// Start a fresh journal at `path` (truncating any previous file),
    /// write the header line, and fsync it.
    pub fn create(path: impl AsRef<Path>, header: &RunHeader) -> io::Result<RunJournal> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        let mut line = serde_json::to_string(&header.to_json())
            .expect("header serialization is infallible");
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(RunJournal {
            path,
            inner: Mutex::new(Inner { file, replay: HashMap::new(), replayed: 0, recorded: 0 }),
        })
    }

    /// Reopen an existing journal for resumption. The header must match
    /// `expected` exactly; completed records are loaded for replay. A
    /// truncated or malformed tail (the signature of a crash mid-write)
    /// is tolerated: the intact prefix replays and the torn tail is
    /// truncated away before appending resumes, so new records never
    /// merge into a half-written line.
    pub fn resume(path: impl AsRef<Path>, expected: &RunHeader) -> io::Result<RunJournal> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;

        // Walk intact lines, tracking the byte offset of the last one: a
        // line is intact only if it is newline-terminated, valid UTF-8,
        // and parses as a known journal entry.
        let mut intact = 0usize;
        let mut header: Option<RunHeader> = None;
        let mut replay: HashMap<u32, VecDeque<QueryRecord>> = HashMap::new();
        let mut loaded = 0u64;
        while intact < bytes.len() {
            let Some(nl) = bytes[intact..].iter().position(|&b| b == b'\n') else { break };
            let Ok(line) = std::str::from_utf8(&bytes[intact..intact + nl]) else { break };
            let Ok(v) = serde_json::from_str(line) else { break };
            if header.is_none() {
                let Some(h) = RunHeader::from_json(&v) else { break };
                header = Some(h);
            } else {
                match v.get("kind").and_then(Value::as_str) {
                    Some("record") => {
                        let Some(rec) = record_from_json(&v) else { break };
                        replay.entry(rec.node.0).or_default().push_back(rec);
                        loaded += 1;
                    }
                    Some("round_sealed") => {}
                    _ => break,
                }
            }
            intact += nl + 1;
        }

        let header = header.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "journal has no valid header")
        })?;
        if header != *expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal belongs to a different run: journal {header:?}, resuming {expected:?}"
                ),
            ));
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        // Drop the torn tail (if any) so appends start on a fresh line.
        file.set_len(intact as u64)?;
        Ok(RunJournal {
            path,
            inner: Mutex::new(Inner { file, replay, replayed: 0, recorded: loaded }),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Take the next replayable record for `v`, if the journal holds one.
    pub fn replay(&self, v: NodeId) -> Option<QueryRecord> {
        let mut inner = self.inner.lock();
        let rec = inner.replay.get_mut(&v.0)?.pop_front()?;
        inner.replayed += 1;
        Some(rec)
    }

    /// Append a completed record and flush it to the OS. Journal writes
    /// must not fail silently (a missing record re-bills tokens on
    /// resume), so an I/O error here is fatal.
    pub fn record(&self, rec: &QueryRecord) {
        self.record_traced(rec, "");
    }

    /// [`record`](Self::record) with a request trace id annotated on the
    /// journal line (omitted when empty). Replay ignores the extra key, so
    /// traced and untraced journals resume identically.
    pub fn record_traced(&self, rec: &QueryRecord, trace: &str) {
        let mut line = serde_json::to_string(&record_to_json_traced(rec, trace))
            .expect("record serialization");
        line.push('\n');
        let mut inner = self.inner.lock();
        inner.file.write_all(line.as_bytes()).expect("journal append failed");
        inner.file.flush().expect("journal flush failed");
        inner.recorded += 1;
    }

    /// Write a round seal and fsync: everything recorded so far is
    /// durable against power loss, not just process death.
    pub fn seal_round(&self, round: u32) {
        let mut line = serde_json::to_string(&json!({"kind": "round_sealed", "round": round}))
            .expect("seal serialization");
        line.push('\n');
        let mut inner = self.inner.lock();
        inner.file.write_all(line.as_bytes()).expect("journal seal failed");
        inner.file.sync_data().expect("journal fsync failed");
    }

    /// Records replayed so far in this process.
    pub fn replayed(&self) -> u64 {
        self.inner.lock().replayed
    }

    /// Records appended by this process (for `create`) or loaded from the
    /// intact prefix (for `resume`) plus subsequent appends.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Completed records still waiting to be replayed.
    pub fn pending_replays(&self) -> usize {
        self.inner.lock().replay.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RunHeader {
        RunHeader {
            dataset: "cora".into(),
            method: "khop".into(),
            seed: 7,
            queries: 3,
            boost: true,
            budget: Some(4096),
        }
    }

    fn record(node: u32) -> QueryRecord {
        QueryRecord {
            node: NodeId(node),
            predicted: ClassId(1),
            correct: true,
            neighbors_included: 2,
            labeled_neighbors: 1,
            pseudo_neighbors: 1,
            remote_neighbors: 0,
            prompt_tokens: 120,
            pruned: false,
            parse_failed: false,
            budget_starved: false,
            failure: None,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mqo-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_round_trip_through_resume() {
        let path = tmp("roundtrip.jsonl");
        let j = RunJournal::create(&path, &header()).unwrap();
        let mut failed = record(2);
        failed.failure = Some("llm error: rate limited\nwith a newline".into());
        failed.correct = false;
        j.record(&record(0));
        j.record(&failed);
        j.seal_round(0);
        drop(j);

        let j = RunJournal::resume(&path, &header()).unwrap();
        assert_eq!(j.pending_replays(), 2);
        assert_eq!(j.replay(NodeId(0)), Some(record(0)));
        assert_eq!(j.replay(NodeId(2)), Some(failed));
        assert_eq!(j.replay(NodeId(1)), None, "node 1 never completed");
        assert_eq!(j.replayed(), 2);
    }

    #[test]
    fn traced_records_annotate_the_line_and_replay_identically() {
        let path = tmp("traced.jsonl");
        let j = RunJournal::create(&path, &header()).unwrap();
        j.record_traced(&record(0), "00f1e2d3c4b5a697");
        j.record_traced(&record(1), "");
        drop(j);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"trace\":\"00f1e2d3c4b5a697\""), "got: {text}");
        assert_eq!(text.matches("\"trace\"").count(), 1, "empty trace must not emit a key");

        let j = RunJournal::resume(&path, &header()).unwrap();
        assert_eq!(j.replay(NodeId(0)), Some(record(0)), "trace key is replay-inert");
        assert_eq!(j.replay(NodeId(1)), Some(record(1)));
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated.jsonl");
        let j = RunJournal::create(&path, &header()).unwrap();
        j.record(&record(0));
        j.record(&record(1));
        drop(j);
        // Simulate a crash mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();

        let j = RunJournal::resume(&path, &header()).unwrap();
        assert_eq!(j.replay(NodeId(0)), Some(record(0)), "intact prefix replays");
        assert_eq!(j.replay(NodeId(1)), None, "the torn record is dropped");
        // The journal still appends after the torn tail.
        j.record(&record(1));
        drop(j);
        let j = RunJournal::resume(&path, &header()).unwrap();
        assert!(j.replay(NodeId(1)).is_some(), "post-crash appends are readable");
    }

    #[test]
    fn mismatched_header_refuses_to_resume() {
        let path = tmp("mismatch.jsonl");
        RunJournal::create(&path, &header()).unwrap();
        let mut other = header();
        other.seed = 8;
        let err = RunJournal::resume(&path, &other).err().expect("resume must refuse");
        assert!(err.to_string().contains("different run"), "got: {err}");
    }

    #[test]
    fn empty_journal_refuses_to_resume() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(RunJournal::resume(&path, &header()).is_err());
    }

    #[test]
    fn budgetless_header_round_trips() {
        let path = tmp("budgetless.jsonl");
        let h = RunHeader { budget: None, ..header() };
        RunJournal::create(&path, &h).unwrap();
        assert!(RunJournal::resume(&path, &h).is_ok());
        assert!(RunJournal::resume(&path, &header()).is_err(), "budget is fingerprinted");
    }
}
