//! Parallel multi-query execution.
//!
//! Queries inside one round of the paper's execution model are
//! *independent* — they share no state until their pseudo-labels are folded
//! in after the round — so they can be dispatched concurrently, exactly as
//! a production deployment would batch requests against an LLM endpoint.
//!
//! The parallel path preserves the sequential path's results bit-for-bit:
//! per-query RNGs are derived from `(executor seed, node)` (see
//! [`Executor::query_rng`]), the [`mqo_token::UsageMeter`] is thread-safe,
//! and records are re-assembled in input order.
//!
//! Scoped threads come from `std::thread::scope` (no `'static` bounds on
//! the executor borrows). A panic inside one query is contained to that
//! query: the survivors drain the remaining work, the panicked query is
//! recorded as a failed outcome ([`crate::executor::QueryRecord::failure`]), and
//! [`mqo_obs::Event::WorkerLost`] reports the containment — a run is
//! never lost to one bad query.

use crate::error::Result;
use crate::executor::{ExecOutcome, Executor};
use crate::labels::LabelStore;
use crate::predictor::Predictor;
use mqo_graph::NodeId;
#[cfg(test)]
use {
    crate::error::Error,
    crate::executor::QueryRecord,
    parking_lot::Mutex,
    std::panic::{catch_unwind, AssertUnwindSafe},
};

/// Render a caught panic payload to text (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `queries` across `threads` workers. Semantically identical to
/// [`Executor::run_all`] (same records, same order); only wall-clock and
/// the interleaving of meter updates differ.
///
/// Shim over the event-driven scheduler's width-N policy (see
/// [`crate::sched::Scheduler`]); semantics are unchanged.
pub fn run_all_parallel(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    prune_set: impl Fn(NodeId) -> bool + Sync,
    threads: usize,
) -> Result<ExecOutcome> {
    let report =
        crate::sched::Scheduler::new(exec, crate::sched::SchedulePolicy::Parallel { threads })
            .run(predictor, crate::sched::Labels::Fixed(labels), queries, prune_set)?;
    Ok(report.outcome)
}

/// Execute `queries` across `threads` workers in **prefix-coherent
/// batches**: prompts are pre-rendered, sorted lexicographically (queries
/// whose rendered prompts share long leading segments become neighbors),
/// and chunked into batches of `batch_size` that workers claim whole.
///
/// A serving-side prefix cache (vLLM-style radix attention, or a provider's
/// prompt-caching tier) keys reuse on *adjacency in arrival order*; this
/// scheduler maximizes that adjacency without changing any result. Records
/// are still re-assembled in input order and are bit-for-bit identical to
/// [`Executor::run_all`] — pre-rendering is safe because per-query RNGs
/// derive from `(seed, node)` alone, so the render inside `run_one` repeats
/// the estimate render exactly.
///
/// Each dispatched batch emits [`mqo_obs::Event::BatchDispatched`] carrying
/// the tokens shared between consecutive prompts inside the batch (measured
/// with [`mqo_cache::common_prefix_tokens`]) — the realized reuse a
/// prefix-caching endpoint would see from this ordering.
///
/// Shim over the event-driven scheduler's batched policy (see
/// [`crate::sched::Scheduler`]); semantics are unchanged.
pub fn run_all_batched(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    prune_set: impl Fn(NodeId) -> bool + Sync,
    threads: usize,
    batch_size: usize,
) -> Result<ExecOutcome> {
    let report = crate::sched::Scheduler::new(
        exec,
        crate::sched::SchedulePolicy::Batched { threads, batch_size },
    )
    .run(predictor, crate::sched::Labels::Fixed(labels), queries, prune_set)?;
    Ok(report.outcome)
}

/// The pre-scheduler pooled paths, kept verbatim as oracles for the
/// scheduler-equivalence proptests in [`crate::sched`].
#[cfg(test)]
pub(crate) mod legacy {
    use super::*;

    pub(crate) fn run_all_parallel(
        exec: &Executor<'_>,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: impl Fn(NodeId) -> bool + Sync,
        threads: usize,
    ) -> Result<ExecOutcome> {
        assert!(threads >= 1, "need at least one worker");
        if exec.budget.is_some() {
            return Err(Error::Config {
                detail: "hard budgets require sequential execution".into(),
            });
        }
        let slots: Vec<Mutex<Option<Result<QueryRecord>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        for (i, &v) in queries.iter().enumerate() {
            if let Some(rec) = exec.replay_journaled(v) {
                *slots[i].lock() = Some(Ok(rec));
            }
        }
        let next = std::sync::atomic::AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let (next, slots, prune_set) = (&next, &slots, &prune_set);
            for worker in 0..threads {
                scope.spawn(move || {
                    mqo_obs::set_thread_track(worker as u32 + 1);
                    let started = exec.clock.now_micros();
                    let mut handled = 0u64;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        if slots[i].lock().is_some() {
                            continue; // replayed from the journal
                        }
                        let v = queries[i];
                        let record = catch_unwind(AssertUnwindSafe(|| {
                            let mut rng = exec.query_rng(v);
                            exec.run_one(predictor, labels, v, &mut rng, prune_set(v))
                        }))
                        .unwrap_or_else(|payload| {
                            let detail = panic_message(payload);
                            exec.sink.emit(&mqo_obs::Event::WorkerLost {
                                worker: worker as u32,
                                node: v.0,
                                detail: detail.clone(),
                            });
                            Ok(exec.failed_record(v, format!("worker panicked: {detail}")))
                        });
                        if let Ok(rec) = &record {
                            exec.journal_record(rec);
                        }
                        handled += 1;
                        *slots[i].lock() = Some(record);
                    }
                    exec.sink.emit(&mqo_obs::Event::WorkerThroughput {
                        worker: worker as u32,
                        queries: handled,
                        wall_micros: exec.clock.now_micros().saturating_sub(started),
                    });
                });
            }
        });

        let mut out = ExecOutcome::default();
        for slot in slots {
            let record = slot.into_inner().expect("every slot filled")?;
            out.records.push(record);
        }
        Ok(out)
    }

    pub(crate) fn run_all_batched(
        exec: &Executor<'_>,
        predictor: &dyn Predictor,
        labels: &LabelStore,
        queries: &[NodeId],
        prune_set: impl Fn(NodeId) -> bool + Sync,
        threads: usize,
        batch_size: usize,
    ) -> Result<ExecOutcome> {
        assert!(threads >= 1, "need at least one worker");
        assert!(batch_size >= 1, "need a positive batch size");
        if exec.budget.is_some() {
            return Err(Error::Config {
                detail: "hard budgets require sequential execution".into(),
            });
        }

        let prompts: Vec<String> = queries
            .iter()
            .map(|&v| {
                catch_unwind(AssertUnwindSafe(|| {
                    let mut rng = exec.query_rng(v);
                    exec.render_for_estimate(predictor, labels, v, &mut rng, prune_set(v))
                }))
                .unwrap_or_default()
            })
            .collect();

        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by(|&a, &b| prompts[a].cmp(&prompts[b]).then(a.cmp(&b)));
        let batches: Vec<&[usize]> = order.chunks(batch_size).collect();

        let slots: Vec<Mutex<Option<Result<QueryRecord>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        for (i, &v) in queries.iter().enumerate() {
            if let Some(rec) = exec.replay_journaled(v) {
                *slots[i].lock() = Some(Ok(rec));
            }
        }
        let next_batch = std::sync::atomic::AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let (next_batch, slots, prompts, batches, prune_set) =
                (&next_batch, &slots, &prompts, &batches, &prune_set);
            for worker in 0..threads {
                scope.spawn(move || {
                    mqo_obs::set_thread_track(worker as u32 + 1);
                    let started = exec.clock.now_micros();
                    let mut handled = 0u64;
                    loop {
                        let b = next_batch.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if b >= batches.len() {
                            break;
                        }
                        let batch = batches[b];
                        let batch_span = exec.tracer.span(
                            exec.sink,
                            "batch",
                            || format!("batch {b} ({} queries)", batch.len()),
                            exec.tracer.current_or(exec.span_scope()),
                        );
                        let shared: u64 = batch
                            .windows(2)
                            .map(|w| {
                                mqo_cache::common_prefix_tokens(&prompts[w[0]], &prompts[w[1]])
                                    as u64
                            })
                            .sum();
                        exec.sink.emit(&mqo_obs::Event::BatchDispatched {
                            batch: b as u32,
                            queries: batch.len() as u64,
                            shared_prefix_tokens: shared,
                        });
                        for &i in batch {
                            if slots[i].lock().is_some() {
                                continue; // replayed from the journal
                            }
                            let v = queries[i];
                            let record = catch_unwind(AssertUnwindSafe(|| {
                                let mut rng = exec.query_rng(v);
                                exec.run_one(predictor, labels, v, &mut rng, prune_set(v))
                            }))
                            .unwrap_or_else(|payload| {
                                let detail = panic_message(payload);
                                exec.sink.emit(&mqo_obs::Event::WorkerLost {
                                    worker: worker as u32,
                                    node: v.0,
                                    detail: detail.clone(),
                                });
                                Ok(exec.failed_record(v, format!("worker panicked: {detail}")))
                            });
                            if let Ok(rec) = &record {
                                exec.journal_record(rec);
                            }
                            handled += 1;
                            *slots[i].lock() = Some(record);
                        }
                        drop(batch_span);
                    }
                    exec.sink.emit(&mqo_obs::Event::WorkerThroughput {
                        worker: worker as u32,
                        queries: handled,
                        wall_micros: exec.clock.now_micros().saturating_sub(started),
                    });
                });
            }
        });

        let mut out = ExecOutcome::default();
        for slot in slots {
            let record = slot.into_inner().expect("every slot filled")?;
            out.records.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_fixtures::two_cliques;
    use crate::predictor::{KhopRandom, SelectCtx};
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 31);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 150 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 5);
        let labels = LabelStore::from_split(tag, &split);
        let predictor = KhopRandom::new(1, tag.num_nodes());

        let seq = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        let par = run_all_parallel(&exec, &predictor, &labels, split.queries(), |_| false, 4)
            .unwrap();
        assert_eq!(seq.records, par.records, "parallel execution changed results");
        // Meter totals also agree (both runs doubled the counts).
        assert_eq!(llm.meter().totals().requests as usize, 2 * split.queries().len());
    }

    #[test]
    fn parallel_respects_prune_set() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        let out = run_all_parallel(&exec, &p, &labels, &qs, |v| v.0 % 2 == 0, 3).unwrap();
        for r in &out.records {
            assert_eq!(r.pruned, r.node.0 % 2 == 0 || r.neighbors_included == 0);
        }
    }

    #[test]
    fn hard_budget_is_rejected() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 2]);
        let exec = Executor::new(&tag, &llm, 4, 0).with_budget(100);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let err = run_all_parallel(&exec, &p, &labels, &[NodeId(0)], |_| false, 2);
        assert!(matches!(err, Err(Error::Config { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["x"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let _ = run_all_parallel(&exec, &p, &labels, &[], |_| false, 0);
    }

    #[test]
    fn each_worker_reports_throughput() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        run_all_parallel(&exec, &p, &labels, &qs, |_| false, 3).unwrap();
        let reports = sink.of_kind("worker_throughput");
        assert_eq!(reports.len(), 3, "one report per worker");
        let total: u64 = reports
            .iter()
            .map(|e| match e {
                mqo_obs::Event::WorkerThroughput { queries, .. } => *queries,
                other => panic!("unexpected event {other:?}"),
            })
            .sum();
        assert_eq!(total, 6, "workers collectively handled every query");
    }

    #[test]
    fn batched_matches_sequential_bit_for_bit() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 31);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 120 },
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 5);
        let labels = LabelStore::from_split(tag, &split);
        let predictor = KhopRandom::new(1, tag.num_nodes());

        let seq = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        let bat =
            run_all_batched(&exec, &predictor, &labels, split.queries(), |_| false, 4, 16)
                .unwrap();
        assert_eq!(seq.records, bat.records, "batched execution changed results");
    }

    #[test]
    fn batches_are_dispatched_and_cover_every_query() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        run_all_batched(&exec, &p, &labels, &qs, |_| false, 2, 4).unwrap();
        let dispatched = sink.of_kind("batch_dispatched");
        assert_eq!(dispatched.len(), 2, "6 queries at batch size 4 → 2 batches");
        let covered: u64 = dispatched
            .iter()
            .map(|e| match e {
                mqo_obs::Event::BatchDispatched { queries, .. } => *queries,
                other => panic!("unexpected event {other:?}"),
            })
            .sum();
        assert_eq!(covered, 6, "batches collectively cover every query");
    }

    #[test]
    fn batched_rejects_hard_budget() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 2]);
        let exec = Executor::new(&tag, &llm, 4, 0).with_budget(100);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let err = run_all_batched(&exec, &p, &labels, &[NodeId(0)], |_| false, 2, 4);
        assert!(matches!(err, Err(Error::Config { .. })));
    }

    #[test]
    #[should_panic(expected = "positive batch size")]
    fn zero_batch_size_rejected() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["x"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let _ = run_all_batched(&exec, &p, &labels, &[], |_| false, 1, 0);
    }

    /// A predictor that panics on a specific node — exercises panic
    /// containment in the worker loop.
    struct PanicOn(NodeId);

    impl Predictor for PanicOn {
        fn name(&self) -> &str {
            "panic-on"
        }
        fn select_neighbors(
            &self,
            _ctx: &SelectCtx<'_>,
            v: NodeId,
            _rng: &mut StdRng,
        ) -> Vec<NodeId> {
            if v == self.0 {
                panic!("deliberate test panic for node {}", v.0);
            }
            Vec::new()
        }
    }

    #[test]
    fn worker_panic_yields_failed_record_not_lost_run() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 6]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 0).with_sink(&sink);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = PanicOn(NodeId(2));
        let qs: Vec<NodeId> = (0..4).map(NodeId).collect();
        let out = run_all_parallel(&exec, &p, &labels, &qs, |_| false, 2).unwrap();
        assert_eq!(out.records.len(), 4, "no completed query was lost");
        assert_eq!(out.failed(), 1);
        let failed = out.records.iter().find(|r| r.node == NodeId(2)).unwrap();
        assert!(failed.failed());
        assert!(
            failed.failure.as_deref().unwrap().contains("deliberate test panic"),
            "got: {:?}",
            failed.failure
        );
        assert!(!failed.correct);
        // The survivors completed normally.
        assert!(out.records.iter().filter(|r| r.node != NodeId(2)).all(|r| !r.failed()));
        // Containment is observable.
        match &sink.of_kind("worker_lost")[..] {
            [mqo_obs::Event::WorkerLost { node, detail, .. }] => {
                assert_eq!(*node, 2);
                assert!(detail.contains("deliberate test panic"));
            }
            other => panic!("expected one WorkerLost, got {other:?}"),
        }
        assert_eq!(sink.of_kind("query_failed").len(), 1);
    }

    #[test]
    fn batched_worker_panic_is_contained_too() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 6]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = PanicOn(NodeId(1));
        let qs: Vec<NodeId> = (0..4).map(NodeId).collect();
        let out = run_all_batched(&exec, &p, &labels, &qs, |_| false, 2, 2).unwrap();
        assert_eq!(out.records.len(), 4);
        assert_eq!(out.failed(), 1);
        assert!(out.records.iter().find(|r| r.node == NodeId(1)).unwrap().failed());
    }
}
