//! Parallel multi-query execution.
//!
//! Queries inside one round of the paper's execution model are
//! *independent* — they share no state until their pseudo-labels are folded
//! in after the round — so they can be dispatched concurrently, exactly as
//! a production deployment would batch requests against an LLM endpoint.
//!
//! The parallel path preserves the sequential path's results bit-for-bit:
//! per-query RNGs are derived from `(executor seed, node)` (see
//! [`Executor::query_rng`]), the [`mqo_token::UsageMeter`] is thread-safe,
//! and records are re-assembled in input order.
//!
//! Scoped threads come from `crossbeam` (no `'static` bounds on the
//! executor borrows).

use crate::error::{Error, Result};
use crate::executor::{ExecOutcome, Executor, QueryRecord};
use crate::labels::LabelStore;
use crate::predictor::Predictor;
use mqo_graph::NodeId;
use parking_lot::Mutex;

/// Execute `queries` across `threads` workers. Semantically identical to
/// [`Executor::run_all`] (same records, same order); only wall-clock and
/// the interleaving of meter updates differ.
pub fn run_all_parallel(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    prune_set: impl Fn(NodeId) -> bool + Sync,
    threads: usize,
) -> Result<ExecOutcome> {
    assert!(threads >= 1, "need at least one worker");
    if exec.budget.is_some() {
        // The hard-budget path is order-dependent (the meter decides when
        // to start stripping neighbor text); run it sequentially.
        return Err(Error::Config {
            detail: "hard budgets require sequential execution".into(),
        });
    }
    let slots: Vec<Mutex<Option<Result<QueryRecord>>>> =
        queries.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let v = queries[i];
                let mut rng = exec.query_rng(v);
                let record = exec.run_one(predictor, labels, v, &mut rng, prune_set(v));
                *slots[i].lock() = Some(record);
            });
        }
    })
    .expect("worker threads do not panic");

    let mut out = ExecOutcome::default();
    for slot in slots {
        let record = slot.into_inner().expect("every slot filled")?;
        out.records.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_fixtures::two_cliques;
    use crate::predictor::KhopRandom;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 31);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 150 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 5);
        let labels = LabelStore::from_split(tag, &split);
        let predictor = KhopRandom::new(1, tag.num_nodes());

        let seq = exec.run_all(&predictor, &labels, split.queries(), |_| false).unwrap();
        let par =
            run_all_parallel(&exec, &predictor, &labels, split.queries(), |_| false, 4)
                .unwrap();
        assert_eq!(seq.records, par.records, "parallel execution changed results");
        // Meter totals also agree (both runs doubled the counts).
        assert_eq!(llm.meter().totals().requests as usize, 2 * split.queries().len());
    }

    #[test]
    fn parallel_respects_prune_set() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..6).map(NodeId).collect();
        let out =
            run_all_parallel(&exec, &p, &labels, &qs, |v| v.0 % 2 == 0, 3).unwrap();
        for r in &out.records {
            assert_eq!(r.pruned, r.node.0 % 2 == 0 || r.neighbors_included == 0);
        }
    }

    #[test]
    fn hard_budget_is_rejected() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["Category: ['Alpha']"; 2]);
        let exec = Executor::new(&tag, &llm, 4, 0).with_budget(100);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let err = run_all_parallel(&exec, &p, &labels, &[NodeId(0)], |_| false, 2);
        assert!(matches!(err, Err(Error::Config { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let tag = two_cliques();
        let llm = mqo_llm::ScriptedLlm::new(vec!["x"]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let _ = run_all_parallel(&exec, &p, &labels, &[], |_| false, 0);
    }
}
