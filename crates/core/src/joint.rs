//! Both strategies applied jointly (§VI-H, Table VIII): prune the top τ%
//! by text inadequacy, then execute everything through query boosting.

use crate::boosting::{run_with_boosting, BoostConfig, RoundTrace};
use crate::error::Result;
use crate::executor::{ExecOutcome, Executor};
use crate::inadequacy::InadequacyScorer;
use crate::labels::LabelStore;
use crate::predictor::Predictor;
use crate::pruning::PrunePlan;
use mqo_graph::NodeId;

/// Run prune(τ) + boost over `queries`.
pub fn run_joint(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &mut LabelStore,
    queries: &[NodeId],
    scorer: &InadequacyScorer,
    tau: f64,
    boost: BoostConfig,
) -> Result<(ExecOutcome, Vec<RoundTrace>)> {
    let plan = PrunePlan::by_inadequacy(scorer, exec.tag, queries, tau);
    run_with_boosting(exec, predictor, labels, queries, boost, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::KhopRandom;
    use crate::surrogate::SurrogateConfig;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn joint_prunes_and_boosts_end_to_end() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 33);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 100 },
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 7);
        let scorer =
            InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(1), 10, 2).unwrap();
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let mut labels = crate::labels::LabelStore::from_split(tag, &split);
        let (out, _) = run_joint(
            &exec,
            &predictor,
            &mut labels,
            split.queries(),
            &scorer,
            0.2,
            BoostConfig::default(),
        )
        .unwrap();
        assert_eq!(out.records.len(), 100);
        let pruned = out.records.iter().filter(|r| r.pruned).count();
        // 20% were planned; low-degree nodes may add empty-neighbor cases.
        assert!(pruned >= 20, "pruned {pruned}");
        assert_eq!(out.queries_with_neighbors() + pruned, 100);
        // Reasonable accuracy (well above 1/7 chance).
        assert!(out.accuracy() > 0.4, "accuracy {}", out.accuracy());
    }
}
