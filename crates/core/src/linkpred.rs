//! Link prediction under both strategies (§VI-J, Table X).
//!
//! Task: given a node pair, predict whether an edge exists. Test pairs are
//! held-out true edges (removed from the *known* adjacency) plus sampled
//! non-edges. Prompts carry the pair's texts and, except under Vanilla /
//! pruned execution, the known neighbor links of each endpoint.
//!
//! Strategy adaptations from the paper:
//! * **token pruning** — no category information exists, so
//!   `D(t_i, t_j) = 1 − max(f(x_i ‖ x_j))`: one minus the confidence of a
//!   binary surrogate trained on known edges vs. sampled non-edges;
//! * **query boosting** — no labels to conflict, so the candidate rule is
//!   just `|N_i| ≥ γ1`; predicted-positive pairs are added to the known
//!   adjacency, enriching later prompts with new (possibly common)
//!   neighbor links.

use crate::error::Result;
use mqo_encoder::{HashedEncoder, TextEncoder};
use mqo_graph::{NodeId, Tag};
use mqo_llm::parse::parse_yes_no;
use mqo_llm::{LanguageModel, LinkPromptSpec};
use mqo_nn::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A link-prediction test set over one graph.
#[derive(Debug, Clone)]
pub struct LinkDataset {
    /// Test pairs (canonicalized `a < b`).
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Ground truth: does the edge exist in the original graph?
    pub truth: Vec<bool>,
    /// Known adjacency: the original neighbors minus held-out test edges.
    known: Vec<Vec<u32>>,
}

impl LinkDataset {
    /// Build: hold out `n_pos` real edges and sample `n_neg` non-edges.
    pub fn build(tag: &Tag, n_pos: usize, n_neg: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11a8_e44c);
        let g = tag.graph();
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().filter(|(a, b)| a != b).collect();
        edges.shuffle(&mut rng);
        let positives: Vec<(NodeId, NodeId)> = edges.into_iter().take(n_pos).collect();
        let held: HashSet<(u32, u32)> =
            positives.iter().map(|&(a, b)| (a.0.min(b.0), a.0.max(b.0))).collect();

        let n = tag.num_nodes() as u32;
        let mut negatives = Vec::with_capacity(n_neg);
        while negatives.len() < n_neg {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b || g.has_edge(NodeId(a), NodeId(b)) {
                continue;
            }
            negatives.push((NodeId(a.min(b)), NodeId(a.max(b))));
        }

        let mut known: Vec<Vec<u32>> = (0..n as usize)
            .map(|v| {
                g.neighbors(NodeId(v as u32))
                    .iter()
                    .copied()
                    .filter(|&u| {
                        let key = ((v as u32).min(u), (v as u32).max(u));
                        !held.contains(&key)
                    })
                    .collect()
            })
            .collect();
        for adj in &mut known {
            adj.sort_unstable();
        }

        let mut pairs = positives;
        let split = pairs.len();
        pairs.extend(negatives);
        let truth: Vec<bool> = (0..pairs.len()).map(|i| i < split).collect();
        LinkDataset { pairs, truth, known }
    }

    /// Known neighbors of `v` (held-out test edges excluded; discovered
    /// links included once added).
    pub fn known_neighbors(&self, v: NodeId) -> &[u32] {
        &self.known[v.index()]
    }

    /// Record a discovered link (query boosting step 3).
    pub fn add_discovered(&mut self, a: NodeId, b: NodeId) {
        if !self.known[a.index()].contains(&b.0) {
            self.known[a.index()].push(b.0);
        }
        if !self.known[b.index()].contains(&a.0) {
            self.known[b.index()].push(a.0);
        }
    }

    /// Total known links of a pair, the scheduling criterion `|N_i|`.
    pub fn pair_support(&self, a: NodeId, b: NodeId) -> usize {
        self.known[a.index()].len() + self.known[b.index()].len()
    }

    /// The `p`-quantile of pair support over the test pairs — the natural
    /// starting γ1 for link boosting (γ1 must sit *above* typical support,
    /// or every pair qualifies in round one and nothing gets enriched).
    pub fn support_quantile(&self, p: f64) -> usize {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        if self.pairs.is_empty() {
            return 0;
        }
        let mut supports: Vec<usize> =
            self.pairs.iter().map(|&(a, b)| self.pair_support(a, b)).collect();
        supports.sort_unstable();
        supports[((supports.len() - 1) as f64 * p).round() as usize]
    }
}

/// How a link run executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkStrategy {
    /// Node-pair text alone.
    Vanilla,
    /// Pair text plus known neighbor links.
    Base,
    /// Base plus query boosting (candidate rule `|N_i| ≥ γ1`).
    Boost {
        /// Minimum pair support for candidacy.
        gamma1: usize,
    },
    /// Base with the top `tau` most-confident pairs pruned to Vanilla.
    Prune {
        /// Pruned fraction.
        tau: f64,
    },
    /// Prune + boost.
    Both {
        /// Pruned fraction.
        tau: f64,
        /// Minimum pair support for candidacy.
        gamma1: usize,
    },
}

/// Outcome of a link run.
#[derive(Debug, Clone, Default)]
pub struct LinkOutcome {
    /// Per-pair correctness, in execution order.
    pub correct: Vec<bool>,
    /// Number of pairs whose prompt included neighbor links.
    pub with_links: usize,
    /// Total prompt tokens.
    pub prompt_tokens: u64,
}

impl LinkOutcome {
    /// Fraction of pairs predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.correct.is_empty() {
            return 0.0;
        }
        self.correct.iter().filter(|&&c| c).count() as f64 / self.correct.len() as f64
    }
}

/// The binary surrogate for link pruning: `D(t_i, t_j) = 1 − max prob`.
pub struct LinkSurrogate {
    encoder: HashedEncoder,
    mlp: Mlp,
}

impl LinkSurrogate {
    /// Train on `n_train` known edges and as many sampled non-edges.
    pub fn train(tag: &Tag, data: &LinkDataset, n_train: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5066_a3e1);
        let encoder = HashedEncoder::new(128);
        let n = tag.num_nodes() as u32;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let test_pairs: HashSet<(u32, u32)> =
            data.pairs.iter().map(|&(a, b)| (a.0, b.0)).collect();
        // Positive examples: known (non-held-out) edges.
        let mut pos = 0;
        'outer: for v in 0..n {
            for &u in data.known_neighbors(NodeId(v)) {
                if v < u && !test_pairs.contains(&(v, u)) {
                    xs.push(Self::pair_features(&encoder, tag, NodeId(v), NodeId(u)));
                    ys.push(1usize);
                    pos += 1;
                    if pos >= n_train {
                        break 'outer;
                    }
                }
            }
        }
        // Negative examples: random non-edges.
        let mut neg = 0;
        while neg < pos {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b || tag.graph().has_edge(NodeId(a), NodeId(b)) {
                continue;
            }
            xs.push(Self::pair_features(&encoder, tag, NodeId(a), NodeId(b)));
            ys.push(0usize);
            neg += 1;
        }
        let mut mlp = Mlp::new(
            MlpConfig {
                hidden: vec![32],
                lr: 0.01,
                weight_decay: 1e-4,
                epochs: 25,
                batch_size: 32,
                seed,
            },
            256,
            2,
        );
        mlp.fit(&xs, &ys);
        LinkSurrogate { encoder, mlp }
    }

    fn pair_features(encoder: &HashedEncoder, tag: &Tag, a: NodeId, b: NodeId) -> Vec<f32> {
        let mut fa = encoder.encode(&tag.text(a).full());
        let fb = encoder.encode(&tag.text(b).full());
        fa.extend(fb);
        fa
    }

    /// `D(t_i, t_j)`: one minus the surrogate's confidence.
    pub fn inadequacy(&self, tag: &Tag, a: NodeId, b: NodeId) -> f64 {
        let p = self.mlp.predict_proba(&Self::pair_features(&self.encoder, tag, a, b));
        1.0 - p.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64
    }
}

/// Execute a link-prediction run.
pub fn run_link_task(
    tag: &Tag,
    llm: &dyn LanguageModel,
    data: &LinkDataset,
    strategy: LinkStrategy,
    max_links: usize,
    seed: u64,
) -> Result<LinkOutcome> {
    let mut data = data.clone();
    let mut out = LinkOutcome::default();
    let order: Vec<usize> = (0..data.pairs.len()).collect();

    // Pruned set, where applicable.
    let pruned: HashSet<usize> = match strategy {
        LinkStrategy::Prune { tau } | LinkStrategy::Both { tau, .. } => {
            let sur = LinkSurrogate::train(tag, &data, 400, seed);
            let mut scored: Vec<(usize, f64)> = data
                .pairs
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| (i, sur.inadequacy(tag, a, b)))
                .collect();
            scored.sort_by(|x, y| {
                x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal).then(x.0.cmp(&y.0))
            });
            let cut = (scored.len() as f64 * tau).round() as usize;
            scored.into_iter().take(cut).map(|(i, _)| i).collect()
        }
        _ => HashSet::new(),
    };

    let boosting_gamma = match strategy {
        LinkStrategy::Boost { gamma1 } | LinkStrategy::Both { gamma1, .. } => Some(gamma1),
        _ => None,
    };

    let run_pair = |data: &LinkDataset, out: &mut LinkOutcome, i: usize| -> Result<bool> {
        let (a, b) = data.pairs[i];
        let include = match strategy {
            LinkStrategy::Vanilla => false,
            _ => !pruned.contains(&i),
        };
        let (ta, tb) = (tag.text(a), tag.text(b));
        let titles = |v: NodeId| -> Vec<String> {
            // Newest-first: links discovered by query boosting are appended
            // to the adjacency, and they are exactly the enrichment the
            // strategy wants surfaced in later prompts.
            data.known_neighbors(v)
                .iter()
                .rev()
                .take(max_links)
                .map(|&u| tag.text(NodeId(u)).title.clone())
                .collect()
        };
        let (na, nb) = if include { (titles(a), titles(b)) } else { (Vec::new(), Vec::new()) };
        let prompt = LinkPromptSpec {
            title_a: &ta.title,
            abstract_a: &ta.body,
            title_b: &tb.title,
            abstract_b: &tb.body,
            neighbors_a: &na,
            neighbors_b: &nb,
        }
        .render();
        let completion = llm.complete(&prompt)?;
        let predicted = parse_yes_no(&completion.text).unwrap_or(false);
        out.correct.push(predicted == data.truth[i]);
        out.prompt_tokens += completion.usage.prompt_tokens;
        if include && (!na.is_empty() || !nb.is_empty()) {
            out.with_links += 1;
        }
        Ok(predicted)
    };

    match boosting_gamma {
        None => {
            for &i in &order {
                run_pair(&data, &mut out, i)?;
            }
        }
        Some(gamma1) => {
            let mut gamma1 = gamma1;
            let mut pending: Vec<usize> = order;
            while !pending.is_empty() {
                let candidates: Vec<usize> = loop {
                    let c: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let (a, b) = data.pairs[i];
                            pruned.contains(&i) || data.pair_support(a, b) >= gamma1
                        })
                        .collect();
                    if !c.is_empty() {
                        break c;
                    }
                    if gamma1 == 0 {
                        break pending.clone();
                    }
                    gamma1 -= 1;
                };
                // Execute the round, then fold discovered links in.
                let mut discovered = Vec::new();
                for &i in &candidates {
                    let yes = run_pair(&data, &mut out, i)?;
                    if yes {
                        discovered.push(data.pairs[i]);
                    }
                }
                for (a, b) in discovered {
                    data.add_discovered(a, b);
                }
                let done: HashSet<usize> = candidates.into_iter().collect();
                pending.retain(|i| !done.contains(i));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_data::{dataset, DatasetId};
    use mqo_llm::{ModelProfile, SimLinkLlm};

    fn setup() -> (mqo_data::DatasetBundle, LinkDataset, SimLinkLlm) {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 55);
        let data = LinkDataset::build(&bundle.tag, 100, 100, 1);
        let llm = SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35());
        (bundle, data, llm)
    }

    #[test]
    fn dataset_holds_out_test_edges() {
        let (bundle, data, _) = setup();
        assert_eq!(data.pairs.len(), 200);
        assert_eq!(data.truth.iter().filter(|&&t| t).count(), 100);
        // Held-out positive edges are absent from the known adjacency.
        for (i, &(a, b)) in data.pairs.iter().enumerate() {
            if data.truth[i] {
                assert!(
                    !data.known_neighbors(a).contains(&b.0),
                    "test edge leaked into known adjacency"
                );
            }
            assert!(bundle.tag.graph().has_edge(a, b) == data.truth[i]);
        }
    }

    #[test]
    fn base_run_beats_chance() {
        let (bundle, data, llm) = setup();
        let out = run_link_task(&bundle.tag, &llm, &data, LinkStrategy::Base, 4, 3).unwrap();
        assert_eq!(out.correct.len(), 200);
        assert!(out.accuracy() > 0.6, "base link accuracy {}", out.accuracy());
        assert!(out.with_links > 150);
    }

    #[test]
    fn vanilla_omits_links_and_costs_less() {
        let (bundle, data, llm) = setup();
        let v = run_link_task(&bundle.tag, &llm, &data, LinkStrategy::Vanilla, 4, 3).unwrap();
        let llm2 = SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35());
        let b = run_link_task(&bundle.tag, &llm2, &data, LinkStrategy::Base, 4, 3).unwrap();
        assert_eq!(v.with_links, 0);
        assert!(v.prompt_tokens < b.prompt_tokens);
    }

    #[test]
    fn prune_reduces_link_prompts_without_collapse() {
        let (bundle, data, llm) = setup();
        let base = run_link_task(&bundle.tag, &llm, &data, LinkStrategy::Base, 4, 3).unwrap();
        let llm2 = SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35());
        let pruned =
            run_link_task(&bundle.tag, &llm2, &data, LinkStrategy::Prune { tau: 0.2 }, 4, 3)
                .unwrap();
        assert!(pruned.with_links < base.with_links);
        assert!(
            pruned.accuracy() > base.accuracy() - 0.08,
            "pruning collapsed accuracy: {} vs {}",
            pruned.accuracy(),
            base.accuracy()
        );
    }

    #[test]
    fn boost_executes_all_pairs() {
        let (bundle, data, llm) = setup();
        let out =
            run_link_task(&bundle.tag, &llm, &data, LinkStrategy::Boost { gamma1: 3 }, 4, 3)
                .unwrap();
        assert_eq!(out.correct.len(), 200);
        assert!(out.accuracy() > 0.55, "boost accuracy {}", out.accuracy());
    }

    #[test]
    fn discovered_links_enrich_adjacency() {
        let (bundle, mut data, _) = setup();
        let (a, b) = data.pairs[0];
        let before = data.pair_support(a, b);
        data.add_discovered(a, b);
        assert_eq!(data.pair_support(a, b), before + 2);
        // Idempotent.
        data.add_discovered(a, b);
        assert_eq!(data.pair_support(a, b), before + 2);
        let _ = bundle;
    }
}
