//! The token pruning strategy (Algorithm 1) plus the budget-sweep and
//! token-savings machinery behind Fig. 7 and Table V.

use crate::error::Result;
use crate::executor::{ExecOutcome, Executor};
use crate::inadequacy::InadequacyScorer;
use crate::labels::LabelStore;
use crate::predictor::Predictor;
use mqo_graph::{NodeId, Tag};
use mqo_llm::NeighborEntry;
use mqo_token::Tokenizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The set of queries whose neighbor text is omitted.
#[derive(Debug, Clone, Default)]
pub struct PrunePlan {
    pruned: HashSet<NodeId>,
}

impl PrunePlan {
    /// Plan from an explicit set.
    pub fn from_set(pruned: HashSet<NodeId>) -> Self {
        PrunePlan { pruned }
    }

    /// Algorithm 1: rank queries ascending by `D(t_i)` and prune the top
    /// `tau` fraction (the most saturated).
    pub fn by_inadequacy(
        scorer: &InadequacyScorer,
        tag: &Tag,
        queries: &[NodeId],
        tau: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must be a fraction");
        let ranked = scorer.rank_ascending(tag, queries);
        let cut = (ranked.len() as f64 * tau).round() as usize;
        PrunePlan { pruned: ranked.into_iter().take(cut).collect() }
    }

    /// Baseline: prune a uniformly random `tau` fraction (the Fig. 7 / Q8
    /// comparison strategy).
    pub fn random(queries: &[NodeId], tau: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must be a fraction");
        let mut qs = queries.to_vec();
        qs.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = (qs.len() as f64 * tau).round() as usize;
        PrunePlan { pruned: qs.into_iter().take(cut).collect() }
    }

    /// Whether `v`'s neighbor text is omitted.
    #[inline]
    pub fn is_pruned(&self, v: NodeId) -> bool {
        self.pruned.contains(&v)
    }

    /// Number of pruned queries.
    pub fn len(&self) -> usize {
        self.pruned.len()
    }

    /// Whether nothing is pruned.
    pub fn is_empty(&self) -> bool {
        self.pruned.is_empty()
    }
}

/// Execute `queries` under a prune plan (Algorithm 1 steps 8–13).
pub fn run_with_pruning(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    plan: &PrunePlan,
) -> Result<ExecOutcome> {
    exec.run_all(predictor, labels, queries, |v| plan.is_pruned(v))
}

/// One point of the Fig. 7 budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Fraction of queries whose neighbor text was omitted.
    pub tau: f64,
    /// Accuracy with inadequacy-ranked pruning.
    pub accuracy_pruned: f64,
    /// Accuracy with random pruning at the same budget.
    pub accuracy_random: f64,
}

/// Run the Fig. 7 sweep: for each `tau`, compare inadequacy-ranked against
/// random pruning on the same queries.
pub fn budget_sweep(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    scorer: &InadequacyScorer,
    taus: &[f64],
    seed: u64,
) -> Result<Vec<SweepPoint>> {
    let mut out = Vec::with_capacity(taus.len());
    for (i, &tau) in taus.iter().enumerate() {
        let ranked_plan = PrunePlan::by_inadequacy(scorer, exec.tag, queries, tau);
        let random_plan = PrunePlan::random(queries, tau, seed.wrapping_add(i as u64));
        let a = run_with_pruning(exec, predictor, labels, queries, &ranked_plan)?;
        let b = run_with_pruning(exec, predictor, labels, queries, &random_plan)?;
        out.push(SweepPoint {
            tau,
            accuracy_pruned: a.accuracy(),
            accuracy_random: b.accuracy(),
        });
    }
    Ok(out)
}

/// A neighbor-text configuration for the Table V savings estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborTextConfig {
    /// Neighbors per prompt.
    pub neighbors: usize,
    /// Whether abstracts are included alongside titles.
    pub include_abstract: bool,
}

/// Table V row: estimated mean neighbor-text tokens under `config`,
/// measured by sampling `samples` nodes and tokenizing the rendered
/// neighbor blocks.
pub fn mean_neighbor_text_tokens(
    tag: &Tag,
    config: NeighborTextConfig,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tag.num_nodes() as u32;
    let mut total = 0u64;
    for _ in 0..samples {
        let mut block = String::new();
        for i in 0..config.neighbors {
            let v = NodeId(rng.gen_range(0..n));
            let t = tag.text(v);
            let title = if config.include_abstract {
                format!("{} {}", t.title, t.body)
            } else {
                t.title.clone()
            };
            let entry = NeighborEntry { title, label: None };
            block.push_str(&format!("Neighbor Paper{i}: {{{{\nTitle: {}\n}}}}\n", entry.title));
        }
        total += Tokenizer.count(&block) as u64;
    }
    total as f64 / samples as f64
}

/// Table V bottom line: tokens reducible by pruning all saturated queries,
/// `|V| · τ · mean_neighbor_tokens`, at the paper's *full* dataset scale.
pub fn reducible_tokens(full_scale_nodes: usize, saturated_frac: f64, mean_tokens: f64) -> f64 {
    full_scale_nodes as f64 * saturated_frac * mean_tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_fixtures::two_cliques;
    use crate::predictor::KhopRandom;
    use mqo_llm::ScriptedLlm;

    #[test]
    fn random_plan_prunes_requested_fraction() {
        let qs: Vec<NodeId> = (0..100).map(NodeId).collect();
        let plan = PrunePlan::random(&qs, 0.2, 1);
        assert_eq!(plan.len(), 20);
        let plan0 = PrunePlan::random(&qs, 0.0, 1);
        assert!(plan0.is_empty());
        let plan1 = PrunePlan::random(&qs, 1.0, 1);
        assert_eq!(plan1.len(), 100);
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let qs: Vec<NodeId> = (0..50).map(NodeId).collect();
        let a = PrunePlan::random(&qs, 0.4, 9);
        let b = PrunePlan::random(&qs, 0.4, 9);
        for v in &qs {
            assert_eq!(a.is_pruned(*v), b.is_pruned(*v));
        }
    }

    #[test]
    fn pruned_queries_save_tokens() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 4]);
        let exec = Executor::new(&tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs = vec![NodeId(0), NodeId(1)];
        let none = run_with_pruning(&exec, &p, &labels, &qs, &PrunePlan::default()).unwrap();
        let llm2 = ScriptedLlm::new(vec!["Category: ['Alpha']"; 4]);
        let exec2 = Executor::new(&tag, &llm2, 4, 0);
        let all = run_with_pruning(&exec2, &p, &labels, &qs, &PrunePlan::random(&qs, 1.0, 0))
            .unwrap();
        assert!(all.prompt_tokens() < none.prompt_tokens());
        assert_eq!(all.queries_with_neighbors(), 0);
        assert_eq!(none.queries_with_neighbors(), 2);
    }

    #[test]
    fn mean_neighbor_tokens_scale_with_config() {
        let tag = two_cliques();
        let t4 = mean_neighbor_text_tokens(
            &tag,
            NeighborTextConfig { neighbors: 4, include_abstract: false },
            50,
            1,
        );
        let t10 = mean_neighbor_text_tokens(
            &tag,
            NeighborTextConfig { neighbors: 10, include_abstract: false },
            50,
            1,
        );
        let t4a = mean_neighbor_text_tokens(
            &tag,
            NeighborTextConfig { neighbors: 4, include_abstract: true },
            50,
            1,
        );
        assert!(t10 > 2.0 * t4, "10 neighbors should cost ~2.5x of 4");
        assert!(t4a > t4, "abstracts should add tokens");
    }

    #[test]
    fn reducible_tokens_matches_paper_arithmetic() {
        // Ogbn-Products row, "4 neighbors title only": 2,449,029 × 79.4% ×
        // 61.745 ≈ 120M.
        let r = reducible_tokens(2_449_029, 0.794, 61.745);
        assert!((r - 120_064_000.0).abs() < 1_000_000.0, "{r}");
    }

    #[test]
    #[should_panic(expected = "tau must be a fraction")]
    fn rejects_bad_tau() {
        PrunePlan::random(&[NodeId(0)], 1.5, 0);
    }
}
