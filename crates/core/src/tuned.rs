//! Instruction-tuned backbones (§VI-I, Table IX).
//!
//! instructGLM-style methods align graph tokens with language tokens by
//! dataset-specific tuning. We reproduce the *shape* the experiment needs:
//! six backbones that differ in hop range, whether raw neighbor text is
//! kept, and whether path descriptions are added — all behind the same
//! [`Predictor`] interface, so token pruning and query boosting compose
//! with them unchanged ("the type of token — whether graph or language —
//! does not alter the pruning process").
//!
//! The "no raw" variants replace each neighbor's title with a compressed
//! graph-token digest (its leading title words), mirroring how aligned
//! graph tokens carry less surface text than raw titles; "w/ path" widens
//! the neighbor budget slightly, as path descriptions add context.

use crate::predictor::{KhopRandom, Predictor, SelectCtx};
use mqo_graph::NodeId;
use mqo_llm::{ModelProfile, NeighborEntry};
use rand::rngs::StdRng;

/// One instructGLM backbone configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backbone {
    /// Display name, e.g. `"1-hop, w/ raw, no path"`.
    pub name: &'static str,
    /// Hop range of neighbor aggregation.
    pub hops: u8,
    /// Whether raw neighbor text is included.
    pub raw_text: bool,
    /// Whether neighbor path descriptions are used.
    pub path: bool,
}

/// The six backbones evaluated in Table IX.
pub fn instructglm_backbones() -> Vec<Backbone> {
    vec![
        Backbone { name: "1-hop, w/ raw, no path", hops: 1, raw_text: true, path: false },
        Backbone { name: "2-hop, w/ raw, no path", hops: 2, raw_text: true, path: false },
        Backbone { name: "2-hop, w/ raw, w/ path", hops: 2, raw_text: true, path: true },
        Backbone { name: "1-hop, no raw, no path", hops: 1, raw_text: false, path: false },
        Backbone { name: "2-hop, no raw, no path", hops: 2, raw_text: false, path: false },
        Backbone { name: "2-hop, no raw, w/ path", hops: 2, raw_text: false, path: true },
    ]
}

/// The tuned model profile used with a backbone (instruction tuning
/// sharpens knowledge relative to the black-box models).
pub fn tuned_profile(backbone: &Backbone) -> ModelProfile {
    // Distinct seeds so backbones develop individual quirks, as distinct
    // fine-tunes would.
    let seed = 0x717e
        ^ ((backbone.hops as u64) << 8)
        ^ ((backbone.raw_text as u64) << 16)
        ^ ((backbone.path as u64) << 24);
    ModelProfile::instruction_tuned(backbone.name, seed)
}

/// A tuned predictor: k-hop selection with backbone-specific neighbor
/// rendering.
pub struct TunedPredictor {
    backbone: Backbone,
    khop: KhopRandom,
}

impl TunedPredictor {
    /// Build for one backbone over a graph with `num_nodes` nodes.
    pub fn new(backbone: Backbone, num_nodes: usize) -> Self {
        TunedPredictor { backbone, khop: KhopRandom::new(backbone.hops, num_nodes) }
    }

    /// The backbone configuration.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }
}

/// Words kept from a neighbor title by the graph-token digest.
const GRAPH_TOKEN_WORDS: usize = 3;

impl Predictor for TunedPredictor {
    fn name(&self) -> &str {
        self.backbone.name
    }

    fn select_neighbors(
        &self,
        ctx: &SelectCtx<'_>,
        v: NodeId,
        rng: &mut StdRng,
    ) -> Vec<NodeId> {
        // Path descriptions let the backbone reference one extra neighbor
        // of context per prompt.
        let bump = usize::from(self.backbone.path);
        let ctx = SelectCtx {
            tag: ctx.tag,
            labels: ctx.labels,
            max_neighbors: ctx.max_neighbors + bump,
        };
        self.khop.select_neighbors(&ctx, v, rng)
    }

    fn entry_for(&self, ctx: &SelectCtx<'_>, n: NodeId) -> NeighborEntry {
        let label = ctx.labels.get(n).map(|c| ctx.tag.class_name(c).to_string());
        let title = if self.backbone.raw_text {
            ctx.tag.text(n).title.clone()
        } else {
            // Graph-token digest: a compressed representation of the
            // neighbor, far fewer surface tokens than the raw title.
            ctx.tag
                .text(n)
                .title
                .split_whitespace()
                .take(GRAPH_TOKEN_WORDS)
                .collect::<Vec<_>>()
                .join(" ")
        };
        NeighborEntry { title, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelStore;
    use crate::predictor::test_fixtures::two_cliques;
    use mqo_graph::ClassId;
    use rand::SeedableRng;

    #[test]
    fn there_are_six_backbones_matching_table9() {
        let bs = instructglm_backbones();
        assert_eq!(bs.len(), 6);
        let names: Vec<&str> = bs.iter().map(|b| b.name).collect();
        assert!(names.contains(&"1-hop, no raw, no path"));
        assert!(names.contains(&"2-hop, w/ raw, w/ path"));
    }

    #[test]
    fn no_raw_backbone_compresses_titles() {
        let tag = two_cliques();
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 4 };
        let raw = TunedPredictor::new(instructglm_backbones()[0], tag.num_nodes());
        let noraw = TunedPredictor::new(instructglm_backbones()[3], tag.num_nodes());
        let e_raw = raw.entry_for(&ctx, NodeId(1));
        let e_noraw = noraw.entry_for(&ctx, NodeId(1));
        assert_eq!(e_raw.title, "title node1");
        assert!(e_noraw.title.split_whitespace().count() <= GRAPH_TOKEN_WORDS);
        assert_eq!(e_raw.label.as_deref(), Some("Alpha"));
        assert_eq!(e_noraw.label.as_deref(), Some("Alpha"));
    }

    #[test]
    fn path_backbone_selects_one_extra_neighbor() {
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 3 };
        let nopath = TunedPredictor::new(instructglm_backbones()[1], tag.num_nodes());
        let withpath = TunedPredictor::new(instructglm_backbones()[2], tag.num_nodes());
        let mut rng = StdRng::seed_from_u64(0);
        let a = nopath.select_neighbors(&ctx, NodeId(0), &mut rng);
        let b = withpath.select_neighbors(&ctx, NodeId(0), &mut rng);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn tuned_profiles_differ_across_backbones() {
        let bs = instructglm_backbones();
        let p0 = tuned_profile(&bs[0]);
        let p3 = tuned_profile(&bs[3]);
        assert_ne!(p0.seed, p3.seed);
        assert!(p0.knowledge > 0.8); // tuned models know the dataset well
    }
}
