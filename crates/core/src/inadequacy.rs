//! The text-inadequacy measure `D(t_i)` (Eq. 10).
//!
//! Two inadequacy channels — the surrogate's posterior entropy `H(p_i)`
//! (ambiguity of the node's own text) and the bias term `b_i = p_i · wᵀ`
//! (how much the node's likely classes overlap with the LLM's weak spots) —
//! are merged by a linear regression `g_θ2` fitted on the calibration
//! subset against the misclassification indicator:
//!
//! `θ2* = argmin Σ_{V_L^c} (1(ŷ≠y) − g_θ2(H(p_i) ‖ b_i))²`.
//!
//! `D(t_i)` is a proxy for `H(y_i | t_i)`: small for saturated nodes, large
//! for non-saturated ones.

use crate::bias::{estimate_bias, BiasEstimate};
use crate::error::Result;
use crate::executor::Executor;
use crate::surrogate::{Surrogate, SurrogateConfig};
use mqo_graph::{LabeledSplit, NodeId, Tag};
use mqo_nn::LinearRegression;

/// A fitted inadequacy scorer: everything needed to compute `D(t_i)` for
/// any node from its text alone.
pub struct InadequacyScorer {
    surrogate: Surrogate,
    bias: BiasEstimate,
    merger: LinearRegression,
}

impl InadequacyScorer {
    /// Build the scorer: train `f_θ1`, run the `V_L^c` calibration queries
    /// (metered LLM cost), and fit `g_θ2`.
    ///
    /// `per_class_calib` is the calibration subset size per class
    /// (paper: 10).
    pub fn build(
        exec: &Executor<'_>,
        split: &LabeledSplit,
        surrogate_cfg: &SurrogateConfig,
        per_class_calib: usize,
        seed: u64,
    ) -> Result<Self> {
        let tag = exec.tag;
        let surrogate = Surrogate::train(tag, split, surrogate_cfg);
        let bias = estimate_bias(exec, split, per_class_calib, seed)?;

        // Fit the merger on the calibration nodes' out-of-fold features.
        let mut xs = Vec::with_capacity(bias.calib_nodes.len());
        let mut ys = Vec::with_capacity(bias.calib_nodes.len());
        for (i, &v) in bias.calib_nodes.iter().enumerate() {
            let p = surrogate.proba(tag, v);
            let h = mqo_nn::entropy(&p);
            let b = bias.bias_term(&p) as f32;
            xs.push(vec![h, b]);
            ys.push(if bias.misclassified(tag, i) { 1.0 } else { 0.0 });
        }
        let merger = LinearRegression::fit(&xs, &ys, 1e-3);
        Ok(InadequacyScorer { surrogate, bias, merger })
    }

    /// `D(t_i)` for node `v`.
    pub fn score(&self, tag: &Tag, v: NodeId) -> f64 {
        let p = self.surrogate.proba(tag, v);
        let h = mqo_nn::entropy(&p);
        let b = self.bias.bias_term(&p) as f32;
        self.merger.predict(&[h, b]) as f64
    }

    /// The underlying surrogate (for analyses that need raw entropies).
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }

    /// The estimated per-class misclassification ratios `w`.
    pub fn bias_weights(&self) -> &[f64] {
        &self.bias.w
    }

    /// The fitted merger coefficients (entropy weight, bias weight, bias).
    pub fn merger_coefficients(&self) -> (f32, f32, f32) {
        (self.merger.weights[0], self.merger.weights[1], self.merger.bias)
    }

    /// Rank `queries` ascending by `D(t_i)` (Algorithm 1 step 2). Ties
    /// break by node id for determinism.
    pub fn rank_ascending(&self, tag: &Tag, queries: &[NodeId]) -> Vec<NodeId> {
        let mut scored: Vec<(NodeId, f64)> =
            queries.iter().map(|&v| (v, self.score(tag, v))).collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::SplitConfig;
    use mqo_llm::{ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_scorer() -> (mqo_data::DatasetBundle, LabeledSplit, InadequacyScorer) {
        let bundle = dataset(DatasetId::Cora, Some(0.4), 21);
        let split = LabeledSplit::generate(
            &bundle.tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 200 },
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            bundle.tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(&bundle.tag, &llm, 4, 0);
        let scorer =
            InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(3), 10, 4).unwrap();
        (bundle, split, scorer)
    }

    #[test]
    fn scores_are_finite_and_orderable() {
        let (bundle, split, scorer) = build_scorer();
        for &v in split.queries().iter().take(30) {
            let d = scorer.score(&bundle.tag, v);
            assert!(d.is_finite());
        }
        let ranked = scorer.rank_ascending(&bundle.tag, split.queries());
        assert_eq!(ranked.len(), split.queries().len());
        // Ascending order.
        for w in ranked.windows(2) {
            assert!(scorer.score(&bundle.tag, w[0]) <= scorer.score(&bundle.tag, w[1]) + 1e-9);
        }
    }

    #[test]
    fn informative_nodes_rank_earlier_on_average() {
        // The latent informativeness drives both LLM saturation and the
        // surrogate's confidence; D(t_i) must pick up on it: the first
        // (most saturated) half of the ranking should have higher mean
        // informativeness than the second half.
        let (bundle, split, scorer) = build_scorer();
        let ranked = scorer.rank_ascending(&bundle.tag, split.queries());
        let half = ranked.len() / 2;
        // Adversarial nodes have confident-but-wrong text: both the LLM
        // and the surrogate are sure about them, so they legitimately rank
        // early; compare text *decisiveness* |alpha| rather than raw alpha.
        let mean = |vs: &[NodeId]| -> f64 {
            vs.iter().map(|v| bundle.alphas[v.index()].abs() as f64).sum::<f64>()
                / vs.len() as f64
        };
        let front = mean(&ranked[..half]);
        let back = mean(&ranked[half..]);
        assert!(
            front > back + 0.02,
            "ranking does not separate text decisiveness: front {front:.3} vs back {back:.3}"
        );
    }

    #[test]
    fn merger_learns_positive_relationship() {
        // More entropy and more bias should mean more inadequacy; at least
        // the combined prediction must vary (non-degenerate fit).
        let (bundle, split, scorer) = build_scorer();
        let scores: Vec<f64> =
            split.queries().iter().take(50).map(|&v| scorer.score(&bundle.tag, v)).collect();
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1e-3, "degenerate inadequacy scores");
    }
}
