//! Graph-level token pruning — the paper's future-work direction (§VII):
//! "refining token pruning to exclude irrelevant subgraph tokens".
//!
//! Each query is a whole small graph; the prompt carries node texts, and
//! the token budget is the number of node texts included. The pruning
//! question becomes *which* nodes to include:
//!
//! * [`NodeBudget::All`] — every node (the unoptimized baseline);
//! * [`NodeBudget::RandomK`] — a random subset of size k;
//! * [`NodeBudget::RelevanceK`] — the k most *central* nodes by text:
//!   ranked by mean embedding similarity to the rest of the graph, so
//!   off-topic nodes (which scatter away from the dominant topic cluster)
//!   fall to the bottom — no latent information is consulted.

use crate::error::Result;
use mqo_data::graphlevel::GraphCollection;
use mqo_encoder::{cosine, HashedEncoder, TextEncoder};
use mqo_llm::graphllm::GraphPromptSpec;
use mqo_llm::parse::parse_category;
use mqo_llm::LanguageModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How many node texts a graph prompt may include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeBudget {
    /// All nodes (no pruning).
    All,
    /// A uniformly random subset of size `k`.
    RandomK(usize),
    /// The `k` most text-central nodes (relevance-ranked pruning).
    RelevanceK(usize),
}

/// Outcome of a graph-classification run.
#[derive(Debug, Clone, Default)]
pub struct GraphOutcome {
    /// Per-graph correctness.
    pub correct: Vec<bool>,
    /// Total prompt tokens.
    pub prompt_tokens: u64,
    /// Mean node texts included per prompt.
    pub mean_nodes_included: f64,
}

impl GraphOutcome {
    /// Fraction of graphs classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.correct.is_empty() {
            return 0.0;
        }
        self.correct.iter().filter(|&&c| c).count() as f64 / self.correct.len() as f64
    }
}

/// Rank a graph's nodes by text centrality: mean cosine similarity of each
/// node's embedding to all others, descending. Returns node indices.
pub fn rank_by_centrality(texts: &[String], dim: usize) -> Vec<usize> {
    let enc = HashedEncoder::new(dim);
    let embs: Vec<Vec<f32>> = texts.iter().map(|t| enc.encode(t)).collect();
    let n = embs.len();
    let mut scores: Vec<(usize, f64)> = (0..n)
        .map(|i| {
            let mean: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| cosine(&embs[i], &embs[j]) as f64)
                .sum::<f64>()
                / (n.max(2) - 1) as f64;
            (i, mean)
        })
        .collect();
    scores.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scores.into_iter().map(|(i, _)| i).collect()
}

/// Classify every graph in the collection under the given node budget.
pub fn run_graph_task(
    collection: &GraphCollection,
    llm: &dyn LanguageModel,
    budget: NodeBudget,
    seed: u64,
) -> Result<GraphOutcome> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6ea6);
    let mut out = GraphOutcome::default();
    let mut total_included = 0usize;
    for g in &collection.graphs {
        let texts: Vec<String> = g.tag.node_ids().map(|v| g.tag.text(v).full()).collect();
        let included: Vec<usize> = match budget {
            NodeBudget::All => (0..texts.len()).collect(),
            NodeBudget::RandomK(k) => {
                let mut idx: Vec<usize> = (0..texts.len()).collect();
                idx.shuffle(&mut rng);
                idx.truncate(k.min(texts.len()));
                idx
            }
            NodeBudget::RelevanceK(k) => {
                let mut ranked = rank_by_centrality(&texts, 128);
                ranked.truncate(k.min(texts.len()));
                ranked
            }
        };
        total_included += included.len();
        let nodes: Vec<(String, String)> = included
            .iter()
            .map(|&i| {
                let t = g.tag.text(mqo_graph::NodeId(i as u32));
                (t.title.clone(), t.body.clone())
            })
            .collect();
        let prompt =
            GraphPromptSpec { nodes: &nodes, classes: &collection.class_names }.render();
        let completion = llm.complete(&prompt)?;
        let predicted = parse_category(&completion.text, &collection.class_names);
        out.correct.push(predicted == Some(g.label.index()));
        out.prompt_tokens += completion.usage.prompt_tokens;
    }
    out.mean_nodes_included = total_included as f64 / collection.graphs.len() as f64;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_data::graphlevel::{generate_collection, GraphCollectionSpec};
    use mqo_llm::graphllm::SimGraphLlm;
    use mqo_llm::ModelProfile;

    fn setup() -> (GraphCollection, SimGraphLlm) {
        let spec = GraphCollectionSpec { num_graphs: 80, ..Default::default() };
        let c = generate_collection(&spec, 11);
        let llm = SimGraphLlm::new(
            c.lexicon.clone(),
            c.class_names.clone(),
            c.spec.topics_per_class,
            ModelProfile::gpt35(),
        );
        (c, llm)
    }

    #[test]
    fn full_prompts_classify_well_above_chance() {
        let (c, llm) = setup();
        let out = run_graph_task(&c, &llm, NodeBudget::All, 1).unwrap();
        assert!(out.accuracy() > 0.6, "all-nodes accuracy {}", out.accuracy());
        assert!(out.mean_nodes_included > 12.0);
    }

    #[test]
    fn relevance_ranking_recovers_relevant_nodes() {
        let (c, _) = setup();
        // Over the collection, the top-half of the centrality ranking must
        // be enriched in relevant nodes.
        let (mut top_rel, mut top_n) = (0usize, 0usize);
        for g in c.graphs.iter().take(30) {
            let texts: Vec<String> = g.tag.node_ids().map(|v| g.tag.text(v).full()).collect();
            let ranked = rank_by_centrality(&texts, 128);
            let half = ranked.len() / 2;
            for &i in &ranked[..half] {
                top_n += 1;
                top_rel += usize::from(g.relevant[i]);
            }
        }
        let frac = top_rel as f64 / top_n as f64;
        assert!(frac > 0.7, "centrality ranking not enriched in relevant nodes: {frac:.3}");
    }

    #[test]
    fn relevance_pruning_beats_random_at_small_budgets() {
        let (c, llm) = setup();
        let k = 5;
        let rel = run_graph_task(&c, &llm, NodeBudget::RelevanceK(k), 2).unwrap();
        let mut rnd_acc = 0.0;
        for s in 0..3 {
            rnd_acc +=
                run_graph_task(&c, &llm, NodeBudget::RandomK(k), 100 + s).unwrap().accuracy();
        }
        rnd_acc /= 3.0;
        assert!(
            rel.accuracy() > rnd_acc + 0.03,
            "relevance pruning not better: {:.3} vs random {rnd_acc:.3}",
            rel.accuracy()
        );
    }

    #[test]
    fn pruned_prompts_cost_fewer_tokens() {
        let (c, llm) = setup();
        let all = run_graph_task(&c, &llm, NodeBudget::All, 3).unwrap();
        let pruned = run_graph_task(&c, &llm, NodeBudget::RelevanceK(5), 3).unwrap();
        assert!(pruned.prompt_tokens < all.prompt_tokens / 2);
        assert!((pruned.mean_nodes_included - 5.0).abs() < 1e-9);
    }
}
