//! A bounded MPMC work queue with explicit backpressure.
//!
//! The serving layer (`mqo-serve`) admits classification jobs into a
//! [`BoundedQueue`] and a worker pool drains it. The queue is the
//! admission-control hinge: [`BoundedQueue::try_push`] **never blocks** —
//! when the queue is full the caller gets the job back and turns it into
//! a `429 Too Many Requests`, which is how saturation propagates to
//! clients instead of piling up unbounded memory. [`BoundedQueue::pop`]
//! blocks until work arrives, and returns `None` only after
//! [`BoundedQueue::close`] *and* a fully drained queue — exactly the
//! graceful-drain contract: accepted work always completes, late work is
//! refused at the door.
//!
//! std `Mutex` + `Condvar` rather than a lock-free ring: the payloads are
//! whole classification jobs whose execution dwarfs any queue overhead,
//! and the blocking semantics (drain-aware pop) are the hard part worth
//! being obviously correct about.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused. The rejected value comes
/// back so the caller can answer the client without cloning jobs.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; retry later.
    Full(T),
    /// The queue is closed (draining) — no new work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected value.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue; see the module docs.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item` without blocking. Fails with [`PushError::Full`] at
    /// capacity and [`PushError::Closed`] after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed **and** drained — the
    /// worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Stop admitting new work. Already-queued items remain poppable;
    /// blocked consumers wake and drain them before observing `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Items currently waiting (a point-in-time snapshot).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_round_trips_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_pushes_back_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full(v)) => assert_eq!(v, "c", "the job comes back intact"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_refuses_new_work_but_drains_queued_work() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop(), Some(1), "accepted work still completes");
        assert_eq!(q.pop(), None, "then consumers see the close");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        let item = p * 100 + i;
                        // Spin on backpressure: producers in this test
                        // genuinely want every item delivered.
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..400).collect();
        assert_eq!(all, expected, "every item delivered exactly once");
    }
}
