//! The exploratory information-gain experiment behind Fig. 3 (§IV-B2).
//!
//! Each query runs twice — vanilla zero-shot and k-hop random — and the
//! accuracy gain of the neighbor-equipped run is used as a proxy for the
//! information gain `IG^{N_i}`, split by whether the query's neighbor text
//! contained any labels (`N_i^L ≠ ∅`).

use crate::error::Result;
use crate::executor::Executor;
use crate::labels::LabelStore;
use crate::predictor::{Predictor, ZeroShot};
use mqo_graph::NodeId;

/// Fig. 3 outcome for one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfoGainReport {
    /// Queries whose k-hop neighbor text contained at least one label.
    pub with_labels: usize,
    /// Queries with label-free neighbor text.
    pub without_labels: usize,
    /// Accuracy gain (k-hop − zero-shot) on the `N_i^L ≠ ∅` group.
    pub gain_with_labels: f64,
    /// Accuracy gain on the `N_i^L = ∅` group.
    pub gain_without_labels: f64,
}

impl InfoGainReport {
    /// Proportion of queries with labeled neighbors (the pie chart).
    pub fn labeled_fraction(&self) -> f64 {
        let total = self.with_labels + self.without_labels;
        if total == 0 {
            0.0
        } else {
            self.with_labels as f64 / total as f64
        }
    }
}

/// Run the paired experiment and group the gains.
pub fn info_gain_experiment(
    exec: &Executor<'_>,
    khop: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
) -> Result<InfoGainReport> {
    let zero = exec.run_all(&ZeroShot, labels, queries, |_| false)?;
    let with = exec.run_all(khop, labels, queries, |_| false)?;

    let mut stats = [(0usize, 0usize, 0usize); 2]; // (n, zero_correct, khop_correct)
    for (z, k) in zero.records.iter().zip(&with.records) {
        debug_assert_eq!(z.node, k.node);
        let group = usize::from(k.labeled_neighbors > 0);
        stats[group].0 += 1;
        stats[group].1 += usize::from(z.correct);
        stats[group].2 += usize::from(k.correct);
    }
    let gain = |(n, zc, kc): (usize, usize, usize)| -> f64 {
        if n == 0 {
            0.0
        } else {
            (kc as f64 - zc as f64) / n as f64
        }
    };
    Ok(InfoGainReport {
        with_labels: stats[1].0,
        without_labels: stats[0].0,
        gain_with_labels: gain(stats[1]),
        gain_without_labels: gain(stats[0]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::KhopRandom;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{ModelProfile, SimLlm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn groups_queries_and_computes_gains() {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 44);
        let tag = &bundle.tag;
        let split = LabeledSplit::generate(
            tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 150 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 9);
        let labels = LabelStore::from_split(tag, &split);
        let p = KhopRandom::new(1, tag.num_nodes());
        let report = info_gain_experiment(&exec, &p, &labels, split.queries()).unwrap();
        assert_eq!(report.with_labels + report.without_labels, 150);
        assert!(report.labeled_fraction() > 0.0 && report.labeled_fraction() < 1.0);
        // Fig. 3's key finding: labeled-neighbor queries gain more.
        assert!(
            report.gain_with_labels >= report.gain_without_labels,
            "labels should raise the gain: {report:?}"
        );
    }

    #[test]
    fn empty_query_set_is_harmless() {
        let bundle = dataset(DatasetId::Cora, Some(0.2), 45);
        let tag = &bundle.tag;
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let exec = Executor::new(tag, &llm, 4, 0);
        let labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let report = info_gain_experiment(&exec, &p, &labels, &[]).unwrap();
        assert_eq!(report.with_labels, 0);
        assert_eq!(report.labeled_fraction(), 0.0);
    }
}
