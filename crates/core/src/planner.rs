//! Campaign planning: dollars → tokens → τ, before any LLM call.
//!
//! The running example (§V-C) converts a token budget into the pruned
//! fraction τ using the mean full-query and neighbor-text token costs.
//! [`plan_campaign`] estimates those means by *rendering* a probe sample's
//! prompts (no LLM calls, no cost) and produces the full plan a deployment
//! would review before spending money.

use crate::error::Result;
use crate::executor::Executor;
use crate::labels::LabelStore;
use crate::predictor::Predictor;
use mqo_graph::NodeId;
use mqo_token::budget::tau_for_budget;
use mqo_token::{ModelPricing, Tokenizer};

/// A reviewed-before-spending campaign plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Number of queries planned.
    pub queries: usize,
    /// Estimated mean tokens of a full (neighbor-equipped) query.
    pub tokens_full: f64,
    /// Estimated mean tokens of the neighbor text alone.
    pub tokens_neighbor: f64,
    /// Fraction of queries to prune to fit the budget.
    pub tau: f64,
    /// Estimated total input tokens without any pruning.
    pub est_tokens_unpruned: f64,
    /// Estimated total input tokens under the plan.
    pub est_tokens_planned: f64,
    /// Estimated dollar cost without pruning.
    pub est_cost_unpruned: f64,
    /// Estimated dollar cost under the plan.
    pub est_cost_planned: f64,
}

/// Estimate a query's prompt tokens with and without neighbor text by
/// rendering both variants (no LLM call).
pub fn estimate_query_tokens(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    v: NodeId,
) -> (usize, usize) {
    let mut rng = exec.query_rng(v);
    let full = exec.render_for_estimate(predictor, labels, v, &mut rng, false);
    let pruned = exec.render_for_estimate(predictor, labels, v, &mut rng, true);
    (Tokenizer.count(&full), Tokenizer.count(&pruned))
}

/// Build a campaign plan for `queries` under `budget_dollars` at
/// `pricing`, probing the first `probe_size` queries for token statistics.
pub fn plan_campaign(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &LabelStore,
    queries: &[NodeId],
    probe_size: usize,
    pricing: &ModelPricing,
    budget_dollars: f64,
) -> Result<CampaignPlan> {
    assert!(!queries.is_empty(), "cannot plan an empty campaign");
    let probe: Vec<NodeId> = queries.iter().take(probe_size.max(1)).copied().collect();
    let mut full_total = 0usize;
    let mut pruned_total = 0usize;
    for &v in &probe {
        let (f, p) = estimate_query_tokens(exec, predictor, labels, v);
        full_total += f;
        pruned_total += p;
    }
    let tokens_full = full_total as f64 / probe.len() as f64;
    let tokens_neighbor = (tokens_full - pruned_total as f64 / probe.len() as f64).max(1.0);

    let token_budget = budget_dollars / pricing.input_per_1k * 1000.0;
    let q = queries.len() as u64;
    let tau = tau_for_budget(q, tokens_full, tokens_neighbor, token_budget);

    let est_tokens_unpruned = q as f64 * tokens_full;
    let est_tokens_planned = est_tokens_unpruned - tau * q as f64 * tokens_neighbor;
    Ok(CampaignPlan {
        queries: queries.len(),
        tokens_full,
        tokens_neighbor,
        tau,
        est_tokens_unpruned,
        est_tokens_planned,
        est_cost_unpruned: pricing.input_cost(est_tokens_unpruned as u64),
        est_cost_planned: pricing.input_cost(est_tokens_planned as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::KhopRandom;
    use mqo_data::{dataset, DatasetId};
    use mqo_graph::{LabeledSplit, SplitConfig};
    use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
    use mqo_token::GPT_35_TURBO_0125;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (mqo_data::DatasetBundle, LabeledSplit, SimLlm) {
        let bundle = dataset(DatasetId::Cora, Some(0.3), 51);
        let split = LabeledSplit::generate(
            &bundle.tag,
            SplitConfig::PerClass { per_class: 20, num_queries: 150 },
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let llm = SimLlm::new(
            bundle.lexicon.clone(),
            bundle.tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        (bundle, split, llm)
    }

    #[test]
    fn estimation_does_not_call_the_llm() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1);
        let labels = LabelStore::from_split(&bundle.tag, &split);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
        let (full, pruned) =
            estimate_query_tokens(&exec, &predictor, &labels, split.queries()[0]);
        assert!(full > pruned, "neighbor text must add tokens: {full} vs {pruned}");
        assert_eq!(llm.meter().totals().requests, 0, "estimation must be free");
    }

    #[test]
    fn generous_budget_needs_no_pruning_tight_budget_does() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1);
        let labels = LabelStore::from_split(&bundle.tag, &split);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());

        let plan = |dollars: f64| {
            plan_campaign(
                &exec,
                &predictor,
                &labels,
                split.queries(),
                20,
                &GPT_35_TURBO_0125,
                dollars,
            )
            .unwrap()
        };
        let generous = plan(10.0);
        assert_eq!(generous.tau, 0.0);
        assert!((generous.est_cost_planned - generous.est_cost_unpruned).abs() < 1e-9);

        let tight = plan(0.02);
        assert!(tight.tau > 0.3, "tight budget should prune: tau {}", tight.tau);
        assert!(tight.est_cost_planned < tight.est_cost_unpruned);
        assert!(
            tight.est_tokens_planned <= 0.02 / GPT_35_TURBO_0125.input_per_1k * 1000.0 * 1.02
                || tight.tau == 1.0
        );
    }

    #[test]
    fn plan_is_consistent_with_budget_math() {
        let (bundle, split, llm) = world();
        let exec = Executor::new(&bundle.tag, &llm, 4, 1);
        let labels = LabelStore::from_split(&bundle.tag, &split);
        let predictor = KhopRandom::new(1, bundle.tag.num_nodes());
        let plan = plan_campaign(
            &exec,
            &predictor,
            &labels,
            split.queries(),
            30,
            &GPT_35_TURBO_0125,
            0.04,
        )
        .unwrap();
        // planned = unpruned − τ·q·tokens_neighbor, by construction.
        let expected =
            plan.est_tokens_unpruned - plan.tau * plan.queries as f64 * plan.tokens_neighbor;
        assert!((plan.est_tokens_planned - expected).abs() < 1e-6);
    }
}
