//! # mqo-core — multi-query optimization for LLMs as predictors
//!
//! The paper's contribution, end to end:
//!
//! * [`predictor`] — the benchmark "LLMs as predictors" methods the
//!   strategies plug into (Table I): vanilla zero-shot, 1-/2-hop random,
//!   and SNS similarity-ranked neighbor selection.
//! * [`labels`] — the evolving label store: ground-truth labels of `V_L`
//!   plus pseudo-labels accumulated by query boosting.
//! * [`executor`] — the multi-query execution engine: renders prompts,
//!   calls the [`mqo_llm::LanguageModel`], parses answers, meters tokens,
//!   and (optionally) enforces a hard token budget (Eq. 2).
//! * [`surrogate`], [`bias`], [`inadequacy`] — the text-inadequacy measure
//!   `D(t_i) = g_θ2(H(p_i) ‖ b_i)` (Eqs. 8–10): surrogate MLP with 3-fold
//!   CV, category-bias estimation on `V_L^c`, and the linear merger.
//! * [`pruning`] — the **token pruning** strategy (Algorithm 1) and the
//!   budget sweep / savings arithmetic behind Fig. 7 and Table V.
//! * [`boosting`] — the **query boosting** strategy (Algorithm 2): round
//!   scheduling by neighbor-label support with threshold relaxation, plus
//!   the utilization accounting behind Fig. 8.
//! * [`joint`] — both strategies composed (Table VIII).
//! * [`analysis`] — the exploratory information-gain experiment (Fig. 3).
//! * [`tuned`] — instruction-tuned backbones (instructGLM-style) showing
//!   the strategies are model-family agnostic (Table IX).
//! * [`linkpred`] — the link-prediction variant of both strategies
//!   (Table X).
//! * [`graphlevel`] — the future-work extension (§VII): graph-level token
//!   pruning that excludes irrelevant subgraph tokens.
//! * [`sched`] — the event-driven execution core: one readiness queue
//!   (keyed by the γ₁/γ₂ cue rule for boosting), a fixed worker pool
//!   with a completion channel, and pluggable [`sched::SchedulePolicy`]
//!   implementations recovering FIFO, width-N, prefix-coherent batched,
//!   and cue-gated execution.
//! * [`parallel`] — shims for the historical multi-threaded entry points
//!   (now thin wrappers over [`sched`]).
//! * [`stream`] — online classification with boosting over an arrival
//!   stream (the introduction's dynamic-node scenario).
//! * [`planner`] — dollars → tokens → τ campaign planning before any LLM
//!   call (§V-C arithmetic over rendered-prompt estimates).
//! * [`queue`] — the bounded MPMC work queue behind the `mqo-serve`
//!   request scheduler (non-blocking admission, drain-aware pop).

//! ```
//! use mqo_core::{Executor, LabelStore, ZeroShot};
//! use mqo_graph::{GraphBuilder, NodeId, NodeText, Tag, ClassId};
//! use mqo_llm::ScriptedLlm;
//!
//! // A two-node toy TAG and a scripted model.
//! let mut b = GraphBuilder::new(2);
//! b.add_edge(0, 1)?;
//! let tag = Tag::new(
//!     "toy",
//!     b.build(),
//!     vec![NodeText::new("storage paper", ""), NodeText::new("agents paper", "")],
//!     vec![ClassId(0), ClassId(1)],
//!     vec!["Database".into(), "Agents".into()],
//! )?;
//! let llm = ScriptedLlm::new(["Category: ['Database']"]);
//! let exec = Executor::new(&tag, &llm, 4, 0);
//! let labels = LabelStore::empty(tag.num_nodes());
//! let out = exec.run_all(&ZeroShot, &labels, &[NodeId(0)], |_| false)?;
//! assert!(out.records[0].correct);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bias;
pub mod boosting;
pub mod error;
pub mod executor;
pub mod graphlevel;
pub mod inadequacy;
pub mod joint;
pub mod journal;
pub mod labels;
pub mod linkpred;
pub mod metrics;
pub mod parallel;
pub mod planner;
pub mod predictor;
pub mod pruning;
pub mod queue;
pub mod sched;
pub mod stream;
pub mod surrogate;
pub mod tuned;

pub use error::{Error, Result};
pub use executor::{ExecOutcome, Executor, QueryRecord, RenderScratch};
pub use inadequacy::InadequacyScorer;
pub use journal::{RunHeader, RunJournal};
pub use labels::LabelStore;
pub use predictor::{KhopRandom, LlmRanked, Predictor, Sns, ZeroShot};
pub use queue::{BoundedQueue, PushError};
pub use sched::{Labels, RunReport, SchedulePolicy, Scheduler};
