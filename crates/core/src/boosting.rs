//! The query boosting strategy (Algorithm 2) and the scheduling /
//! utilization analysis behind Fig. 8.
//!
//! Queries run in rounds. Each round selects candidates with enough
//! reliable neighbor labels (`|N_i^L| ≥ γ1`) and few conflicting label
//! kinds (`LC_i ≤ γ2`); executed queries contribute pseudo-labels that
//! enrich the neighbor text of later rounds. When no query qualifies, the
//! thresholds relax incrementally (γ1 down first, then γ2 up), preserving
//! the reliability ordering while guaranteeing termination.

use crate::error::Result;
use crate::executor::{ExecOutcome, Executor};
use crate::labels::LabelStore;
use crate::predictor::{Predictor, SelectCtx};
use crate::pruning::PrunePlan;
use mqo_graph::traversal::{khop_nodes, sample_prefer_labeled, KhopBuffer};
use mqo_graph::{NodeId, Tag};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Query boosting thresholds (paper defaults: γ1 = 3, γ2 = 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostConfig {
    /// Minimum neighbor labels for candidacy.
    pub gamma1: usize,
    /// Maximum distinct neighbor-label kinds for candidacy.
    pub gamma2: usize,
}

impl Default for BoostConfig {
    fn default() -> Self {
        BoostConfig { gamma1: 3, gamma2: 2 }
    }
}

/// Per-round execution trace (for tests and the Fig. 8 analysis).
#[derive(Debug, Clone)]
pub struct RoundTrace {
    /// Queries executed this round.
    pub executed: usize,
    /// γ1/γ2 in effect when the round's candidates were selected.
    pub gamma1: usize,
    /// See [`RoundTrace::gamma1`].
    pub gamma2: usize,
}

/// How boosting treats queries that fail under a degraded executor
/// ([`Executor::with_degrade`]). Failed queries produce no pseudo-label —
/// the γ1/γ2 rule naturally treats them as unexecuted — and are retried
/// in later rounds with escalating fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// After this many failures, retry the query *text-only* (pruned-style,
    /// no neighbor enrichment): repeated failures are often prompt-size
    /// correlated, and the neighbor-free prompt is the cheapest to re-send.
    pub fallback_after: usize,
    /// After this many failures, stop retrying and record the failed
    /// outcome permanently. Bounds total work under a hard outage, so the
    /// round loop always terminates.
    pub give_up_after: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy { fallback_after: 2, give_up_after: 4 }
    }
}

/// Count `|N_i^L|` and `LC_i` over a query's *selected* neighbor set.
pub(crate) fn label_support(
    predictor: &dyn Predictor,
    ctx: &SelectCtx<'_>,
    v: NodeId,
    rng: &mut StdRng,
) -> (usize, usize) {
    let selected = predictor.select_neighbors(ctx, v, rng);
    let mut labels_seen = HashSet::new();
    let mut count = 0usize;
    for n in selected {
        if let Some(c) = ctx.labels.get(n) {
            count += 1;
            labels_seen.insert(c);
        }
    }
    (count, labels_seen.len())
}

/// Run Algorithm 2: boosting over `queries` with optional pruning composed
/// in (`plan` queries execute without neighbor text but still produce
/// pseudo-labels; they are scheduled in the first round since they cannot
/// be enriched and their early pseudo-labels benefit everyone else).
///
/// Uses the default [`DegradePolicy`]; see [`run_with_boosting_policy`]
/// for the failure semantics under a degraded executor.
pub fn run_with_boosting(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &mut LabelStore,
    queries: &[NodeId],
    config: BoostConfig,
    plan: &PrunePlan,
) -> Result<(ExecOutcome, Vec<RoundTrace>)> {
    run_with_boosting_policy(
        exec,
        predictor,
        labels,
        queries,
        config,
        plan,
        DegradePolicy::default(),
    )
}

/// [`run_with_boosting`] with an explicit failure policy.
///
/// Under a degraded executor ([`Executor::with_degrade`]) a failed query
/// contributes **no pseudo-label** — the γ1/γ2 candidacy rule therefore
/// treats it as unexecuted, exactly like a query that never ran — and
/// stays pending for later rounds. After `policy.fallback_after` failures
/// it retries text-only (neighbor-free); after `policy.give_up_after`
/// failures the failed outcome is recorded permanently. With a journal
/// attached ([`Executor::with_journal`]), previously completed queries
/// replay before round one and each round is sealed (fsync'd) as it
/// completes.
///
/// Shim over the event-driven scheduler's cue-gated policy in
/// deterministic (wave) mode at width 1 (see
/// [`crate::sched::Scheduler`]); semantics are unchanged.
pub fn run_with_boosting_policy(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &mut LabelStore,
    queries: &[NodeId],
    config: BoostConfig,
    plan: &PrunePlan,
    policy: DegradePolicy,
) -> Result<(ExecOutcome, Vec<RoundTrace>)> {
    let report = crate::sched::Scheduler::new(
        exec,
        crate::sched::SchedulePolicy::CueGated {
            config,
            policy,
            threads: 1,
            deterministic: true,
        },
    )
    .run(predictor, crate::sched::Labels::Boosting(labels), queries, |v| plan.is_pruned(v))?;
    Ok((report.outcome, report.rounds))
}

/// The pre-scheduler round loop, kept verbatim as the oracle for the
/// scheduler-equivalence proptests in [`crate::sched`].
#[cfg(test)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with_boosting_policy_legacy(
    exec: &Executor<'_>,
    predictor: &dyn Predictor,
    labels: &mut LabelStore,
    queries: &[NodeId],
    config: BoostConfig,
    plan: &PrunePlan,
    policy: DegradePolicy,
) -> Result<(ExecOutcome, Vec<RoundTrace>)> {
    assert!(policy.give_up_after >= 1, "give_up_after must be positive");
    let mut pending: Vec<NodeId> = queries.to_vec();
    let mut out = ExecOutcome::default();

    // Crash-safe resume: queries the journal already holds replay with
    // zero LLM requests. Their pseudo-labels are folded in up front so
    // the remaining rounds see the same label knowledge they would have
    // accumulated live (failed queries never pseudo-label).
    let replayed: Vec<_> = pending.iter().filter_map(|&v| exec.replay_journaled(v)).collect();
    if !replayed.is_empty() {
        let done: HashSet<NodeId> = replayed.iter().map(|r| r.node).collect();
        pending.retain(|v| !done.contains(v));
        for r in &replayed {
            if !r.failed() {
                labels.add_pseudo(r.node, r.predicted);
            }
        }
        out.records.extend(replayed);
    }

    let mut traces = Vec::new();
    let mut gamma1 = config.gamma1;
    let mut gamma2 = config.gamma2;
    let k = exec.tag.num_classes();
    // Consecutive failures per node, for the fallback/give-up escalation.
    let mut failures: std::collections::HashMap<NodeId, usize> =
        std::collections::HashMap::new();
    let force_prune = |failures: &std::collections::HashMap<NodeId, usize>, v: NodeId| {
        plan.is_pruned(v) || failures.get(&v).is_some_and(|&n| n >= policy.fallback_after)
    };

    while !pending.is_empty() {
        // Step 1: candidate selection with incremental relaxation.
        let candidates: Vec<NodeId> = loop {
            let ctx = SelectCtx { tag: exec.tag, labels, max_neighbors: exec.max_neighbors };
            let mut c = Vec::new();
            for &v in &pending {
                if force_prune(&failures, v) {
                    // Pruned (or failure-downgraded) queries can't be
                    // enriched; run them now.
                    c.push(v);
                    continue;
                }
                // Per-node rng: N_i only changes when label knowledge does.
                let mut rng = exec.query_rng(v);
                let (n_l, lc) = label_support(predictor, &ctx, v, &mut rng);
                if n_l >= gamma1 && lc <= gamma2 {
                    c.push(v);
                }
            }
            if !c.is_empty() {
                break c;
            }
            // Relax: γ1 down to zero first, then γ2 up to K (at (0, K)
            // every query qualifies, so this terminates).
            if gamma1 > 0 {
                gamma1 -= 1;
            } else if gamma2 < k {
                gamma2 += 1;
            } else {
                break pending.clone();
            }
        };

        // Scope query spans under this round's span (restored after the
        // round so a trailing caller-side scope survives).
        let round_index = traces.len();
        let round_span = exec.tracer.span(
            exec.sink,
            "round",
            || format!("round {round_index}"),
            exec.tracer.current_or(exec.span_scope()),
        );
        let outer_scope = exec.span_scope();
        exec.set_span_scope(round_span.id());

        // Steps 2–3: execute candidates, then fold their pseudo-labels in.
        // Labels are frozen during the round (all candidates see the same
        // knowledge state, as in Algorithm 2). A failed candidate stays
        // pending (no record yet) unless it has exhausted its retries.
        let mut round_records = Vec::with_capacity(candidates.len());
        for &v in &candidates {
            let mut rng = exec.query_rng(v);
            let record =
                exec.run_one(predictor, labels, v, &mut rng, force_prune(&failures, v));
            match record {
                Ok(r) if r.failed() => {
                    let n = failures.entry(v).or_insert(0);
                    *n += 1;
                    if *n >= policy.give_up_after {
                        round_records.push(r); // permanent failed outcome
                    }
                }
                Ok(r) => {
                    failures.remove(&v);
                    round_records.push(r);
                }
                Err(e) => {
                    exec.set_span_scope(outer_scope);
                    return Err(e);
                }
            }
        }
        exec.set_span_scope(outer_scope);
        drop(round_span);
        traces.push(RoundTrace { executed: round_records.len(), gamma1, gamma2 });
        for r in &round_records {
            if !r.failed() {
                labels.add_pseudo(r.node, r.predicted);
            }
        }
        exec.sink.emit(&mqo_obs::Event::RoundCompleted {
            round: round_index as u32,
            executed: round_records.len() as u64,
            gamma1: gamma1 as u64,
            gamma2: gamma2 as u64,
            pseudo_label_uses: round_records.iter().map(|r| r.pseudo_neighbors as u64).sum(),
        });
        // Journal the round's *final* outcomes (retried failures are not
        // final), then seal: the seal fsyncs, making the round durable.
        for r in &round_records {
            exec.journal_record(r);
        }
        if let Some(j) = exec.journal {
            j.seal_round(round_index as u32);
        }
        let finished: HashSet<NodeId> = round_records.iter().map(|r| r.node).collect();
        out.records.extend(round_records);
        pending.retain(|v| !finished.contains(v));
    }
    Ok((out, traces))
}

/// Fig. 8 pseudo-label utilization analysis.
///
/// Simulates the round structure without LLM calls (pseudo-labels are
/// stand-ins, per the paper's footnote 3: conflicting-label thresholds are
/// skipped, and "we merely simulate LLMs to generate pseudo-labels"):
/// queries are split into `rounds` rounds — randomly (unscheduled) or by
/// descending neighbor-label count over all unexecuted queries
/// (scheduled).
///
/// Utilization counts "how many times pseudo-labels generated by earlier
/// queries are used to enrich the neighbor text of later queries": the
/// pseudo-label slots in each query's neighbor selection at execution
/// time. The scheduler orders by neighbor-label support (descending, the
/// paper's rule) and breaks ties by *deferring* queries with many
/// still-pending neighbor queries — exactly the queries whose "opportunities
/// to integrate pseudo-labels from earlier executed queries" grow the most
/// by waiting (§V-B).
#[allow(clippy::too_many_arguments)] // an analysis entry point mirroring the Fig. 8 config axes
pub fn pseudo_label_utilization(
    tag: &Tag,
    initial_labels: &LabelStore,
    queries: &[NodeId],
    k_hops: u8,
    max_neighbors: usize,
    rounds: usize,
    scheduled: bool,
    seed: u64,
) -> u64 {
    assert!(rounds >= 1);
    let mut labels = initial_labels.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = KhopBuffer::new(tag.num_nodes());
    let mut scratch = Vec::new();
    let mut pending: Vec<NodeId> = queries.to_vec();
    if !scheduled {
        pending.shuffle(&mut rng);
    }
    let per_round = queries.len().div_ceil(rounds);
    let mut utilization = 0u64;

    while !pending.is_empty() {
        let pending_set: HashSet<NodeId> = pending.iter().copied().collect();
        let batch: Vec<NodeId> = if scheduled {
            // Primary key: current labeled-neighbor support, descending
            // (the paper's rule). Tie-break: pending query-neighbors,
            // ascending — queries surrounded by still-pending queries gain
            // the most by waiting.
            let mut support: Vec<(NodeId, usize, usize)> = pending
                .iter()
                .map(|&v| {
                    khop_nodes(tag.graph(), v, k_hops, &mut buf, &mut scratch);
                    let labeled = scratch.iter().filter(|h| labels.is_labeled(h.node)).count();
                    let pending_neighbors =
                        scratch.iter().filter(|h| pending_set.contains(&h.node)).count();
                    (v, labeled, pending_neighbors)
                })
                .collect();
            support.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
            support.into_iter().take(per_round).map(|(v, _, _)| v).collect()
        } else {
            pending.iter().take(per_round).copied().collect()
        };

        // Execute the batch: count pseudo-labels that land in prompts.
        for &v in &batch {
            khop_nodes(tag.graph(), v, k_hops, &mut buf, &mut scratch);
            let selected = sample_prefer_labeled(
                &scratch,
                max_neighbors,
                |n| labels.is_labeled(n),
                &mut rng,
            );
            utilization += selected.iter().filter(|h| labels.is_pseudo(h.node)).count() as u64;
        }
        // Pseudo-labels appear after the whole round, as in Algorithm 2.
        for &v in &batch {
            labels.add_pseudo(v, tag.label(v));
        }
        let executed: HashSet<NodeId> = batch.into_iter().collect();
        pending.retain(|v| !executed.contains(v));
    }
    utilization
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_fixtures::two_cliques;
    use crate::predictor::KhopRandom;
    use mqo_graph::ClassId;
    use mqo_llm::{LanguageModel, ScriptedLlm};

    #[test]
    fn boosting_executes_every_query_exactly_once() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec = Executor::new(&tag, &llm, 4, 3);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(7), NodeId(9)];
        let (out, traces) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 2, gamma2: 2 },
            &PrunePlan::default(),
        )
        .unwrap();
        assert_eq!(out.records.len(), 4);
        let mut seen: Vec<u32> = out.records.iter().map(|r| r.node.0).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 2, 7, 9]);
        assert!(!traces.is_empty());
        // All executed queries became pseudo-labeled.
        for v in &qs {
            assert!(labels.is_labeled(*v));
        }
    }

    #[test]
    fn rounds_are_visible_to_telemetry() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let sink = mqo_obs::Recorder::new();
        let exec = Executor::new(&tag, &llm, 4, 3).with_sink(&sink);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(7), NodeId(9)];
        let (out, traces) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 2, gamma2: 2 },
            &PrunePlan::default(),
        )
        .unwrap();
        let rounds = sink.of_kind("round_completed");
        assert_eq!(rounds.len(), traces.len(), "one event per round");
        let (mut executed_total, mut pseudo_total) = (0u64, 0u64);
        for (i, e) in rounds.iter().enumerate() {
            match e {
                mqo_obs::Event::RoundCompleted {
                    round,
                    executed,
                    gamma1,
                    gamma2,
                    pseudo_label_uses,
                } => {
                    assert_eq!(*round as usize, i);
                    assert_eq!(*executed, traces[i].executed as u64);
                    assert_eq!(*gamma1, traces[i].gamma1 as u64);
                    assert_eq!(*gamma2, traces[i].gamma2 as u64);
                    executed_total += executed;
                    pseudo_total += pseudo_label_uses;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(executed_total as usize, out.records.len());
        assert_eq!(pseudo_total, out.pseudo_label_uses());
        // The per-query stream is emitted alongside the round stream.
        assert_eq!(sink.of_kind("query_executed").len(), out.records.len());
    }

    #[test]
    fn relaxation_terminates_with_no_labels_at_all() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Beta']"; 12]);
        let exec = Executor::new(&tag, &llm, 4, 1);
        let mut labels = LabelStore::empty(tag.num_nodes());
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = (0..12).map(NodeId).collect();
        let (out, traces) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig::default(),
            &PrunePlan::default(),
        )
        .unwrap();
        assert_eq!(out.records.len(), 12);
        // γ1 must have relaxed to 0 for the first round to fire.
        assert_eq!(traces[0].gamma1, 0);
    }

    #[test]
    fn later_rounds_see_pseudo_labels_from_earlier_rounds() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec = Executor::new(&tag, &llm, 6, 5);
        let mut labels = LabelStore::empty(tag.num_nodes());
        // Seed: three ground-truth labels in clique A so its queries
        // qualify first.
        for v in [1u32, 2, 3] {
            labels.add_pseudo(NodeId(v), ClassId(0));
        }
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs = vec![NodeId(0), NodeId(4), NodeId(5)];
        let (out, _) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 3, gamma2: 1 },
            &PrunePlan::default(),
        )
        .unwrap();
        let total_pseudo_uses: usize = out.records.iter().map(|r| r.pseudo_neighbors).sum();
        assert!(total_pseudo_uses > 0, "no pseudo-label ever reached a prompt");
    }

    #[test]
    fn pruned_queries_run_first_without_neighbors() {
        let tag = two_cliques();
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let exec = Executor::new(&tag, &llm, 4, 2);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs = vec![NodeId(0), NodeId(2)];
        let plan = PrunePlan::from_set([NodeId(2)].into_iter().collect());
        let (out, _) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 1, gamma2: 2 },
            &plan,
        )
        .unwrap();
        let rec2 = out.records.iter().find(|r| r.node == NodeId(2)).unwrap();
        assert!(rec2.pruned);
        assert_eq!(rec2.neighbors_included, 0);
    }

    #[test]
    fn failed_queries_retry_then_give_up_without_pseudo_labels() {
        let tag = two_cliques();
        // Three good answers, then the script runs dry: every later call
        // fails. Under degrade the failing queries retry per the policy
        // and are finally recorded as failed.
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 3]);
        let exec = Executor::new(&tag, &llm, 4, 0).with_degrade();
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let p = KhopRandom::new(1, tag.num_nodes());
        let qs: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(4), NodeId(7), NodeId(9)];
        let policy = DegradePolicy { fallback_after: 1, give_up_after: 3 };
        let (out, _) = run_with_boosting_policy(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 1, gamma2: 2 },
            &PrunePlan::default(),
            policy,
        )
        .unwrap();
        assert_eq!(out.records.len(), qs.len(), "every query got a final record");
        assert_eq!(out.failed(), qs.len() - 3, "script had three answers");
        for r in out.records.iter().filter(|r| r.failed()) {
            // After `fallback_after` failures retries go text-only, so the
            // final (given-up) attempt is neighbor-free.
            assert!(r.pruned, "given-up query retried with neighbor text");
            assert_eq!(r.neighbors_included, 0);
            assert!(!labels.is_pseudo(r.node), "failed query pseudo-labeled itself");
        }
        for r in out.records.iter().filter(|r| !r.failed()) {
            assert!(labels.is_labeled(r.node));
        }
    }

    #[test]
    fn journaled_boosting_resumes_with_zero_rebilled_tokens() {
        let tag = two_cliques();
        let header = crate::journal::RunHeader {
            dataset: "two-cliques".into(),
            method: "khop".into(),
            seed: 0,
            queries: 4,
            boost: true,
            budget: None,
        };
        let dir = std::env::temp_dir().join("mqo-boost-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let qs: Vec<NodeId> = vec![NodeId(0), NodeId(2), NodeId(7), NodeId(9)];
        let p = KhopRandom::new(1, tag.num_nodes());

        // First run: everything completes and lands in the journal.
        let llm = ScriptedLlm::new(vec!["Category: ['Alpha']"; 12]);
        let journal = crate::journal::RunJournal::create(&path, &header).unwrap();
        let exec = Executor::new(&tag, &llm, 4, 0).with_journal(&journal);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let (first, _) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 2, gamma2: 2 },
            &PrunePlan::default(),
        )
        .unwrap();
        let billed = llm.meter().totals();
        assert!(billed.requests > 0);
        drop(journal);

        // Resume against a model that would fail if asked anything: every
        // query replays from the journal, bit-identical, for free.
        let empty = ScriptedLlm::new(Vec::<String>::new());
        let journal = crate::journal::RunJournal::resume(&path, &header).unwrap();
        let exec = Executor::new(&tag, &empty, 4, 0).with_journal(&journal);
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(1), ClassId(0));
        let (second, _) = run_with_boosting(
            &exec,
            &p,
            &mut labels,
            &qs,
            BoostConfig { gamma1: 2, gamma2: 2 },
            &PrunePlan::default(),
        )
        .unwrap();
        assert_eq!(empty.meter().totals().requests, 0, "replay sent a request");
        assert_eq!(empty.meter().totals().prompt_tokens, 0, "replay re-billed tokens");
        assert_eq!(journal.replayed(), qs.len() as u64);
        let mut a = first.records.clone();
        let mut b = second.records.clone();
        a.sort_by_key(|r| r.node.0);
        b.sort_by_key(|r| r.node.0);
        assert_eq!(a, b, "replayed records differ from the originals");
    }

    #[test]
    fn utilization_counts_pseudo_slots_only() {
        // On the dense clique fixture every selection slot eventually fills
        // with pseudo-labels; both schedulers must report positive, bounded
        // utilization. (The scheduled-vs-random comparison itself needs a
        // heterogeneous graph and lives in the fig8 integration test.)
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let qs: Vec<NodeId> = (0..12).map(NodeId).collect();
        for scheduled in [false, true] {
            let u = pseudo_label_utilization(&tag, &labels, &qs, 1, 4, 4, scheduled, 3);
            assert!(u > 0, "no utilization at all (scheduled={scheduled})");
            // Upper bound: every query can use at most M pseudo-labels.
            assert!(u <= (qs.len() * 4) as u64);
        }
    }

    #[test]
    fn utilization_is_zero_with_a_single_round() {
        // Everything executes in round 1 → no pseudo-label can be reused.
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let qs: Vec<NodeId> = (0..12).map(NodeId).collect();
        assert_eq!(pseudo_label_utilization(&tag, &labels, &qs, 1, 4, 1, true, 0), 0);
    }
}
