//! Evaluation metrics over execution outcomes: confusion matrices,
//! per-class precision/recall/F1, and macro aggregates. The paper reports
//! plain accuracy; per-class views are what a deployment reviews to spot
//! the category-bias effects the `w` estimate (§V-A1) quantifies.

use crate::executor::ExecOutcome;
use mqo_graph::Tag;

/// A K×K confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Build from an outcome (ground truth read from the tag).
    pub fn from_outcome(tag: &Tag, outcome: &ExecOutcome) -> Self {
        let k = tag.num_classes();
        let mut counts = vec![vec![0u64; k]; k];
        for r in &outcome.records {
            counts[tag.label(r.node).index()][r.predicted.index()] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of (truth `t`, predicted `p`).
    pub fn get(&self, t: usize, p: usize) -> u64 {
        self.counts[t][p]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class precision (0 when the class was never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.num_classes()).map(|t| self.counts[t][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / predicted as f64
        }
    }

    /// Per-class recall (0 when the class never occurred).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: u64 = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / actual as f64
        }
    }

    /// Per-class F1.
    pub fn f1(&self, c: usize) -> f64 {
        let (p, r) = (self.precision(c), self.recall(c));
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over classes.
    pub fn macro_f1(&self) -> f64 {
        let k = self.num_classes();
        (0..k).map(|c| self.f1(c)).sum::<f64>() / k as f64
    }

    /// Per-class error rates on the *truth* side — the empirical analogue
    /// of the bias vector `w` the pruning strategy estimates on `V_L^c`.
    pub fn per_class_error(&self) -> Vec<f64> {
        (0..self.num_classes()).map(|c| 1.0 - self.recall(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::QueryRecord;
    use mqo_graph::{ClassId, GraphBuilder, NodeId, NodeText};

    fn tag() -> Tag {
        let g = GraphBuilder::new(6).build();
        let texts = (0..6).map(|i| NodeText::new(format!("t{i}"), "")).collect();
        // Truth: 0,0,0,1,1,1.
        let labels = (0..6).map(|i| ClassId::from((i >= 3) as usize)).collect();
        Tag::new("m", g, texts, labels, vec!["a".into(), "b".into()]).unwrap()
    }

    fn outcome(preds: &[(u32, u16)]) -> ExecOutcome {
        ExecOutcome {
            records: preds
                .iter()
                .map(|&(node, pred)| QueryRecord {
                    node: NodeId(node),
                    predicted: ClassId(pred),
                    correct: false, // unused by the matrix
                    neighbors_included: 0,
                    labeled_neighbors: 0,
                    pseudo_neighbors: 0,
                    remote_neighbors: 0,
                    prompt_tokens: 0,
                    pruned: false,
                    parse_failed: false,
                    budget_starved: false,
                    failure: None,
                })
                .collect(),
        }
    }

    #[test]
    fn matrix_counts_and_accuracy() {
        let t = tag();
        // Truth 0→preds: 0,0,1 ; truth 1→preds: 1,1,0.
        let out = outcome(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 1), (5, 0)]);
        let m = ConfusionMatrix::from_outcome(&t, &out);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 1), 2);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let t = tag();
        let out = outcome(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 1), (5, 0)]);
        let m = ConfusionMatrix::from_outcome(&t, &out);
        // Class 0: predicted 3 times, 2 correct; actual 3, 2 recalled.
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.macro_f1() - 2.0 / 3.0).abs() < 1e-12);
        for e in m.per_class_error() {
            assert!((e - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let t = tag();
        // Everything predicted class 0.
        let out = outcome(&[(0, 0), (3, 0)]);
        let m = ConfusionMatrix::from_outcome(&t, &out);
        assert_eq!(m.precision(1), 0.0);
        assert_eq!(m.f1(1), 0.0);
        assert!(m.accuracy().is_finite());
        let empty = ConfusionMatrix::from_outcome(&t, &ExecOutcome::default());
        assert_eq!(empty.accuracy(), 0.0);
    }
}
