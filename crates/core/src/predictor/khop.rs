//! k-hop random neighbor selection (Table I).
//!
//! "Neighbors are selected within the k-hop range of the query node, with a
//! preference for labeled neighbors followed by a random selection from
//! unlabeled neighbors, up to a fixed number limit M."

use super::{Predictor, SelectCtx};
use mqo_graph::traversal::{khop_nodes, sample_prefer_labeled, KhopBuffer};
use mqo_graph::NodeId;
use parking_lot::Mutex;
use rand::rngs::StdRng;

/// The k-hop random method; `k = 1` and `k = 2` are the paper's variants.
pub struct KhopRandom {
    k: u8,
    name: String,
    /// Reusable BFS scratch, shared behind a lock so the predictor can be
    /// `&self` in the trait (execution is effectively single-threaded; the
    /// lock is uncontended).
    buf: Mutex<(KhopBuffer, Vec<mqo_graph::traversal::HopNode>)>,
}

impl KhopRandom {
    /// Method for a graph with `num_nodes` nodes and hop range `k ≥ 1`.
    pub fn new(k: u8, num_nodes: usize) -> Self {
        assert!(k >= 1, "k-hop random needs k >= 1");
        KhopRandom {
            k,
            name: format!("{k}-hop random"),
            buf: Mutex::new((KhopBuffer::new(num_nodes), Vec::new())),
        }
    }

    /// The hop range.
    pub fn k(&self) -> u8 {
        self.k
    }
}

impl Predictor for KhopRandom {
    fn name(&self) -> &str {
        &self.name
    }

    fn select_neighbors(
        &self,
        ctx: &SelectCtx<'_>,
        v: NodeId,
        rng: &mut StdRng,
    ) -> Vec<NodeId> {
        let mut guard = self.buf.lock();
        let (buf, scratch) = &mut *guard;
        khop_nodes(ctx.tag.graph(), v, self.k, buf, scratch);
        sample_prefer_labeled(scratch, ctx.max_neighbors, |n| ctx.labels.is_labeled(n), rng)
            .into_iter()
            .map(|h| h.node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelStore;
    use crate::predictor::test_fixtures::two_cliques;
    use mqo_graph::ClassId;
    use rand::SeedableRng;

    #[test]
    fn one_hop_stays_within_direct_neighbors() {
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 10 };
        let p = KhopRandom::new(1, tag.num_nodes());
        let mut rng = StdRng::seed_from_u64(1);
        let picked = p.select_neighbors(&ctx, NodeId(0), &mut rng);
        assert_eq!(picked.len(), 5); // clique neighbors only
        for n in picked {
            assert!(tag.graph().has_edge(NodeId(0), n));
        }
    }

    #[test]
    fn caps_at_m() {
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 3 };
        let p = KhopRandom::new(2, tag.num_nodes());
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(p.select_neighbors(&ctx, NodeId(0), &mut rng).len(), 3);
    }

    #[test]
    fn two_hop_crosses_the_bridge() {
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 12 };
        let p = KhopRandom::new(2, tag.num_nodes());
        let mut rng = StdRng::seed_from_u64(3);
        let picked = p.select_neighbors(&ctx, NodeId(5), &mut rng);
        // Node 5 reaches its clique plus node 6 (1-hop) plus 6's clique (2-hop).
        assert!(picked.iter().any(|n| n.0 >= 7), "bridge not crossed: {picked:?}");
    }

    #[test]
    fn labeled_neighbors_always_chosen_first() {
        let tag = two_cliques();
        let mut labels = LabelStore::empty(tag.num_nodes());
        labels.add_pseudo(NodeId(2), ClassId(0));
        labels.add_pseudo(NodeId(4), ClassId(0));
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 2 };
        let p = KhopRandom::new(1, tag.num_nodes());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = p.select_neighbors(&ctx, NodeId(0), &mut rng);
            let mut ids: Vec<u32> = picked.iter().map(|n| n.0).collect();
            ids.sort();
            assert_eq!(ids, vec![2, 4], "labeled preference violated at seed {seed}");
        }
    }

    #[test]
    fn isolated_node_gets_no_neighbors() {
        use mqo_graph::{GraphBuilder, NodeText, Tag};
        let tag = Tag::new(
            "iso",
            GraphBuilder::new(2).build(),
            vec![NodeText::default(), NodeText::default()],
            vec![ClassId(0), ClassId(0)],
            vec!["x".into()],
        )
        .unwrap();
        let labels = LabelStore::empty(2);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 4 };
        let p = KhopRandom::new(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.select_neighbors(&ctx, NodeId(0), &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_hop_rejected() {
        KhopRandom::new(0, 5);
    }
}
