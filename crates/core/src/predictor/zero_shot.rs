//! Vanilla zero-shot: no neighbor text at all (`N_i = ∅`).

use super::{Predictor, SelectCtx};
use mqo_graph::NodeId;
use rand::rngs::StdRng;

/// The vanilla zero-shot method of Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroShot;

impl Predictor for ZeroShot {
    fn name(&self) -> &str {
        "vanilla zero-shot"
    }

    fn select_neighbors(
        &self,
        _ctx: &SelectCtx<'_>,
        _v: NodeId,
        _rng: &mut StdRng,
    ) -> Vec<NodeId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelStore;
    use crate::predictor::test_fixtures::two_cliques;
    use rand::SeedableRng;

    #[test]
    fn always_selects_nothing() {
        let tag = two_cliques();
        let labels = LabelStore::empty(tag.num_nodes());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 10 };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ZeroShot.select_neighbors(&ctx, NodeId(0), &mut rng).is_empty());
        assert!(!ZeroShot.ranked());
        assert_eq!(ZeroShot.name(), "vanilla zero-shot");
    }
}
