//! LLM-relevance neighbor ranking — the method family of Huang et al.
//! ([26] in the paper): "prioritize neighbors deemed more relevant by
//! LLMs". The relevance judgment is delegated to a caller-provided scorer;
//! the default uses the query↔neighbor embedding similarity over *full*
//! texts (title + abstract), which is the signal an LLM relevance pass
//! extracts — distinguishing it from SNS, which ranks only *labeled*
//! candidates found by progressive hop expansion.

use super::{Predictor, SelectCtx};
use mqo_encoder::{cosine, HashedEncoder, TextEncoder};
use mqo_graph::traversal::{khop_nodes, KhopBuffer};
use mqo_graph::{NodeId, Tag};
use parking_lot::Mutex;
use rand::rngs::StdRng;

/// Selects the most query-relevant neighbors within a k-hop range,
/// regardless of label status.
pub struct LlmRanked {
    k: u8,
    name: String,
    embeddings: Vec<Vec<f32>>,
    buf: Mutex<(KhopBuffer, Vec<mqo_graph::traversal::HopNode>)>,
}

impl LlmRanked {
    /// Build over a graph, embedding every node's full text.
    pub fn fit(tag: &Tag, k: u8) -> Self {
        assert!(k >= 1, "relevance ranking needs k >= 1");
        let enc = HashedEncoder::new(256);
        let embeddings = tag.node_ids().map(|v| enc.encode(&tag.text(v).full())).collect();
        LlmRanked {
            k,
            name: format!("{k}-hop LLM-ranked"),
            embeddings,
            buf: Mutex::new((KhopBuffer::new(tag.num_nodes()), Vec::new())),
        }
    }
}

impl Predictor for LlmRanked {
    fn name(&self) -> &str {
        &self.name
    }

    fn ranked(&self) -> bool {
        true
    }

    fn select_neighbors(
        &self,
        ctx: &SelectCtx<'_>,
        v: NodeId,
        _rng: &mut StdRng,
    ) -> Vec<NodeId> {
        let mut guard = self.buf.lock();
        let (buf, scratch) = &mut *guard;
        khop_nodes(ctx.tag.graph(), v, self.k, buf, scratch);
        let mut scored: Vec<(NodeId, f32)> = scratch
            .iter()
            .map(|h| {
                (h.node, cosine(&self.embeddings[v.index()], &self.embeddings[h.node.index()]))
            })
            .collect();
        drop(guard);
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.truncate(ctx.max_neighbors);
        scored.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelStore;
    use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};
    use rand::SeedableRng;

    /// Star: 0 at the center; 1, 2 share topic words with 0; 3, 4 do not.
    fn star() -> Tag {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v).unwrap();
        }
        let texts = vec![
            NodeText::new("storage engines btree", "compaction writes log"),
            NodeText::new("storage btree compaction", "log writes"),
            NodeText::new("btree storage log", "compaction"),
            NodeText::new("wireless mesh routing", "packet radio"),
            NodeText::new("genome sequencing reads", "alignment kmer"),
        ];
        Tag::new("s", b.build(), texts, vec![ClassId(0); 5], vec!["x".into()]).unwrap()
    }

    #[test]
    fn ranks_relevant_neighbors_first_regardless_of_labels() {
        let tag = star();
        let labels = LabelStore::empty(5); // nobody labeled — SNS would return ∅
        let p = LlmRanked::fit(&tag, 1);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let picked = p.select_neighbors(&ctx, NodeId(0), &mut rng);
        assert_eq!(picked.len(), 2);
        assert!(picked.contains(&NodeId(1)) && picked.contains(&NodeId(2)), "{picked:?}");
    }

    #[test]
    fn is_deterministic_and_marked_ranked() {
        let tag = star();
        let labels = LabelStore::empty(5);
        let p = LlmRanked::fit(&tag, 2);
        assert!(p.ranked());
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 4 };
        let a = p.select_neighbors(&ctx, NodeId(0), &mut StdRng::seed_from_u64(1));
        let b = p.select_neighbors(&ctx, NodeId(0), &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_hop_rejected() {
        LlmRanked::fit(&star(), 0);
    }
}
