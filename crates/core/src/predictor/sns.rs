//! SNS: similarity-based neighbor selection (Table I, [27]).
//!
//! "Progressively explores from closer to farther hops to find enough
//! labeled neighbors or until reaching five hops. It then uses SimCSE to
//! measure and rank the similarity between the query node's text and the
//! identified labeled neighbors. The top-ranking neighbors are selected in
//! order, up to a limit of M."
//!
//! SimCSE is replaced by cosine similarity over hashed bag-of-words
//! embeddings (see `mqo-encoder`) — both are dense sentence encoders whose
//! inner product tracks topical similarity, which is the only property SNS
//! consumes.

use super::{Predictor, SelectCtx};
use mqo_encoder::{HashedEncoder, TextEncoder};
use mqo_graph::traversal::{collect_labeled_progressive, KhopBuffer};
use mqo_graph::{NodeId, Tag};
use parking_lot::Mutex;
use rand::rngs::StdRng;

/// SNS over precomputed node embeddings.
pub struct Sns {
    /// Per-node embedding, indexed by node id.
    embeddings: Vec<Vec<f32>>,
    /// Hop limit of the progressive exploration (paper: 5).
    max_hop: u8,
    buf: Mutex<KhopBuffer>,
}

impl Sns {
    /// Default embedding dimensionality (hashed BoW).
    pub const DEFAULT_DIM: usize = 256;

    /// Build SNS for a graph, encoding every node's full text.
    pub fn fit(tag: &Tag) -> Self {
        Self::fit_with_dim(tag, Self::DEFAULT_DIM)
    }

    /// Build with an explicit embedding dimension.
    pub fn fit_with_dim(tag: &Tag, dim: usize) -> Self {
        let encoder = HashedEncoder::new(dim);
        let embeddings = tag.node_ids().map(|v| encoder.encode(&tag.text(v).full())).collect();
        Sns { embeddings, max_hop: 5, buf: Mutex::new(KhopBuffer::new(tag.num_nodes())) }
    }

    /// Cosine similarity between two stored embeddings.
    fn sim(&self, a: NodeId, b: NodeId) -> f32 {
        mqo_encoder::cosine(&self.embeddings[a.index()], &self.embeddings[b.index()])
    }
}

impl Predictor for Sns {
    fn name(&self) -> &str {
        "SNS"
    }

    fn ranked(&self) -> bool {
        true
    }

    fn select_neighbors(
        &self,
        ctx: &SelectCtx<'_>,
        v: NodeId,
        _rng: &mut StdRng,
    ) -> Vec<NodeId> {
        let mut buf = self.buf.lock();
        let candidates = collect_labeled_progressive(
            ctx.tag.graph(),
            v,
            ctx.max_neighbors,
            self.max_hop,
            |n| ctx.labels.is_labeled(n),
            &mut buf,
        );
        drop(buf);
        let mut scored: Vec<(NodeId, f32)> =
            candidates.iter().map(|h| (h.node, self.sim(v, h.node))).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.truncate(ctx.max_neighbors);
        scored.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelStore;
    use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};
    use rand::SeedableRng;

    /// Star: center 0 linked to 1..=4. Node 1 and 2 share vocabulary with
    /// the center; 3 and 4 are off-topic.
    fn star() -> Tag {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v).unwrap();
        }
        let texts = vec![
            NodeText::new("database systems transactions", "query planner index"),
            NodeText::new("database transactions logging", "query index recovery"),
            NodeText::new("database query planner", "index systems"),
            NodeText::new("reinforcement policy gradient", "agent reward"),
            NodeText::new("protein folding dynamics", "molecular simulation"),
        ];
        let labels = vec![ClassId(0); 5];
        Tag::new("star", b.build(), texts, labels, vec!["x".into()]).unwrap()
    }

    #[test]
    fn ranks_textually_similar_labeled_neighbors_first() {
        let tag = star();
        let mut labels = LabelStore::empty(5);
        for v in 1..5 {
            labels.add_pseudo(NodeId(v), ClassId(0));
        }
        let sns = Sns::fit(&tag);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let picked = sns.select_neighbors(&ctx, NodeId(0), &mut rng);
        assert_eq!(picked.len(), 2);
        assert!(
            picked.contains(&NodeId(1)) && picked.contains(&NodeId(2)),
            "similarity ranking failed: {picked:?}"
        );
    }

    #[test]
    fn only_labeled_candidates_are_considered() {
        let tag = star();
        let mut labels = LabelStore::empty(5);
        labels.add_pseudo(NodeId(4), ClassId(0)); // only the off-topic one
        let sns = Sns::fit(&tag);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 3 };
        let mut rng = StdRng::seed_from_u64(0);
        let picked = sns.select_neighbors(&ctx, NodeId(0), &mut rng);
        assert_eq!(picked, vec![NodeId(4)]);
    }

    #[test]
    fn unlabeled_graph_yields_empty_selection() {
        let tag = star();
        let labels = LabelStore::empty(5);
        let sns = Sns::fit(&tag);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 3 };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sns.select_neighbors(&ctx, NodeId(0), &mut rng).is_empty());
    }

    #[test]
    fn is_marked_ranked() {
        assert!(Sns::fit(&star()).ranked());
    }

    #[test]
    fn deterministic_selection() {
        let tag = star();
        let mut labels = LabelStore::empty(5);
        for v in 1..5 {
            labels.add_pseudo(NodeId(v), ClassId(0));
        }
        let sns = Sns::fit(&tag);
        let ctx = SelectCtx { tag: &tag, labels: &labels, max_neighbors: 4 };
        let a = sns.select_neighbors(&ctx, NodeId(0), &mut StdRng::seed_from_u64(1));
        let b = sns.select_neighbors(&ctx, NodeId(0), &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b, "SNS must not depend on the rng");
    }
}
