//! Benchmark "LLMs as predictors" methods (Table I).
//!
//! A [`Predictor`] is *only* a neighbor-selection rule; prompt rendering,
//! LLM calls, and answer parsing are shared by the [`crate::executor`].
//! That factoring is what makes the paper's strategies plug-and-play: token
//! pruning empties the selection, query boosting changes the label
//! knowledge the selection sees — neither touches the method itself.

mod khop;
mod llm_ranked;
mod sns;
mod zero_shot;

pub use khop::KhopRandom;
pub use llm_ranked::LlmRanked;
pub use sns::Sns;
pub use zero_shot::ZeroShot;

use crate::labels::LabelStore;
use mqo_graph::{NodeId, Tag};
use rand::rngs::StdRng;

/// Read-only context handed to neighbor selection.
pub struct SelectCtx<'a> {
    /// The graph being queried.
    pub tag: &'a Tag,
    /// Current label knowledge (`V_L` plus accumulated pseudo-labels).
    pub labels: &'a LabelStore,
    /// Maximum neighbors per prompt (the paper's `M`).
    pub max_neighbors: usize,
}

/// A neighbor-selection method.
pub trait Predictor: Send + Sync {
    /// Method display name, e.g. `"1-hop random"`.
    fn name(&self) -> &str;

    /// Whether the method ranks neighbors by relevance (SNS adds the
    /// "most related to least related" clause to the prompt).
    fn ranked(&self) -> bool {
        false
    }

    /// Select up to `ctx.max_neighbors` neighbors for query node `v` given
    /// the current label knowledge.
    fn select_neighbors(&self, ctx: &SelectCtx<'_>, v: NodeId, rng: &mut StdRng)
        -> Vec<NodeId>;

    /// Render one selected neighbor as a prompt entry. The default uses the
    /// neighbor's full title plus its known label; instruction-tuned
    /// variants override this (e.g. graph-token backbones compress the raw
    /// text away, §VI-I).
    fn entry_for(&self, ctx: &SelectCtx<'_>, n: NodeId) -> mqo_llm::NeighborEntry {
        mqo_llm::NeighborEntry {
            title: ctx.tag.text(n).title.clone(),
            label: ctx.labels.get(n).map(|c| ctx.tag.class_name(c).to_string()),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Shared fixtures for predictor and executor tests.
    use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};

    /// A 12-node, 2-class graph: two 6-cliques joined by one bridge edge.
    /// Nodes 0-5 class 0, nodes 6-11 class 1.
    pub fn two_cliques() -> Tag {
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in base..base + 6 {
                for j in i + 1..base + 6 {
                    b.add_edge(i, j).unwrap();
                }
            }
        }
        b.add_edge(5, 6).unwrap();
        let texts = (0..12)
            .map(|i| NodeText::new(format!("title node{i}"), format!("body of node {i}")))
            .collect();
        let labels = (0..12).map(|i| ClassId::from((i >= 6) as usize)).collect();
        Tag::new("cliques", b.build(), texts, labels, vec!["Alpha".into(), "Beta".into()])
            .unwrap()
    }
}
