//! The consistent-front router: one std-only HTTP process that makes N
//! shard workers look like a single classify endpoint.
//!
//! Responsibilities, in order of importance:
//!
//! * **Routing.** `POST /v1/classify` bodies name nodes in *global* id
//!   space; the router groups them by [`crate::ShardMap`] ownership,
//!   forwards one sub-batch per owning shard, and reassembles the
//!   per-node records in the caller's original order. A batch that lands
//!   on one shard is forwarded whole — the common case under
//!   locality-friendly ids costs one upstream exchange.
//! * **Health.** A shard that fails `eject_after` consecutive exchanges
//!   is ejected: classify traffic needing it gets an immediate `503`
//!   instead of a hung socket, and a background probe re-admits it on
//!   the first healthy `/v1/healthz`. Survivor shards keep answering
//!   throughout — partial cluster loss degrades, never blacks out.
//! * **Label relay.** Workers push boundary pseudo-labels to
//!   `POST /v1/labels` with the shards their off-shard neighbors live
//!   on; the router fans each batch out to those workers, which ingest
//!   them as remote cues for the γ₁/γ₂ readiness rule. Labels are
//!   advisory: a push toward an ejected shard is dropped and counted,
//!   never errored back to the worker.
//!
//! Everything is observable as `mqo_shard_*` Prometheus series on
//! `GET /metrics`, and `GET /v1/healthz` reports per-shard health so the
//! smoke scripts (and operators) can see a degraded cluster at a glance.

use crate::partition::ShardMap;
use mqo_obs::httpd::{http_get, HttpClient, HttpConnection, ReadOutcome, Request};
use mqo_obs::{Counter, CounterVec, GaugeVec, Registry};
use parking_lot::Mutex;
use serde_json::{json, Map, Value};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker address of each shard; index is the shard id. Length must
    /// equal the map's shard count.
    pub shards: Vec<SocketAddr>,
    /// Consecutive upstream failures before a shard is ejected.
    pub eject_after: u32,
    /// How often the probe thread retries ejected shards.
    pub probe_interval: Duration,
}

impl RouterConfig {
    /// Defaults: eject after 3 consecutive failures, probe every 250ms.
    pub fn new(shards: Vec<SocketAddr>) -> RouterConfig {
        RouterConfig { shards, eject_after: 3, probe_interval: Duration::from_millis(250) }
    }
}

struct ShardState {
    addr: SocketAddr,
    /// Persistent upstream connection, rebuilt after failures.
    client: Mutex<Option<HttpClient>>,
    failures: AtomicU32,
    ejected: AtomicBool,
}

struct Inner {
    map: ShardMap,
    shards: Vec<ShardState>,
    eject_after: u32,
    registry: Arc<Registry>,
    shutdown: AtomicBool,
    requests: Arc<CounterVec>,
    routed: Arc<CounterVec>,
    fanout_batches: Arc<Counter>,
    ejections: Arc<CounterVec>,
    readmissions: Arc<CounterVec>,
    ejected_gauge: Arc<GaugeVec>,
    label_pushes: Arc<Counter>,
    labels_forwarded: Arc<CounterVec>,
    labels_dropped: Arc<CounterVec>,
    upstream_errors: Arc<CounterVec>,
}

/// The running router process: an accept loop, a health-probe thread,
/// and per-shard upstream connections. Drop via [`Router::shutdown`].
pub struct Router {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving.
    ///
    /// # Panics
    /// If the shard list length disagrees with the map.
    pub fn start(addr: &str, map: ShardMap, cfg: RouterConfig) -> io::Result<Router> {
        assert_eq!(
            cfg.shards.len() as u32,
            map.num_shards(),
            "router needs one worker address per shard"
        );
        let registry = Arc::new(Registry::new());
        let requests = registry.counter_vec(
            "mqo_shard_router_requests_total",
            "Requests handled by the router, by route",
            &["route"],
        );
        let routed = registry.counter_vec(
            "mqo_shard_routed_requests_total",
            "Classify sub-batches forwarded to each shard",
            &["shard"],
        );
        let fanout_batches = registry.counter(
            "mqo_shard_fanout_batches_total",
            "Classify batches that spanned more than one shard",
        );
        let ejections = registry.counter_vec(
            "mqo_shard_ejections_total",
            "Times each shard was ejected for consecutive failures",
            &["shard"],
        );
        let readmissions = registry.counter_vec(
            "mqo_shard_readmissions_total",
            "Times each shard was re-admitted after a healthy probe",
            &["shard"],
        );
        let ejected_gauge = registry.gauge_vec(
            "mqo_shard_ejected",
            "Whether each shard is currently ejected (1) or serving (0)",
            &["shard"],
        );
        let label_pushes = registry.counter(
            "mqo_shard_label_pushes_total",
            "Label-exchange pushes received from workers",
        );
        let labels_forwarded = registry.counter_vec(
            "mqo_shard_labels_forwarded_total",
            "Pseudo-labels forwarded to each neighbor-owning shard",
            &["shard"],
        );
        let labels_dropped = registry.counter_vec(
            "mqo_shard_labels_dropped_total",
            "Pseudo-labels dropped because the target shard was unreachable",
            &["shard"],
        );
        let upstream_errors = registry.counter_vec(
            "mqo_shard_upstream_errors_total",
            "Failed exchanges with each shard worker",
            &["shard"],
        );
        let shards = cfg
            .shards
            .iter()
            .enumerate()
            .map(|(s, &addr)| {
                ejected_gauge.with(&[&s.to_string()]).set(0);
                ShardState {
                    addr,
                    client: Mutex::new(None),
                    failures: AtomicU32::new(0),
                    ejected: AtomicBool::new(false),
                }
            })
            .collect();
        let inner = Arc::new(Inner {
            map,
            shards,
            eject_after: cfg.eject_after.max(1),
            registry,
            shutdown: AtomicBool::new(false),
            requests,
            routed,
            fanout_batches,
            ejections,
            readmissions,
            ejected_gauge,
            label_pushes,
            labels_forwarded,
            labels_dropped,
            upstream_errors,
        });

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept = {
            let inner = inner.clone();
            thread::Builder::new().name("mqo-route-accept".into()).spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = inner.clone();
                    let _ = thread::Builder::new()
                        .name("mqo-route-conn".into())
                        .spawn(move || inner.serve_connection(stream));
                }
            })?
        };
        let probe = {
            let inner = inner.clone();
            let interval = cfg.probe_interval;
            thread::Builder::new().name("mqo-route-probe".into()).spawn(move || {
                while !inner.shutdown.load(Ordering::SeqCst) {
                    thread::sleep(interval);
                    inner.probe_ejected();
                }
            })?
        };
        Ok(Router { inner, addr: local, accept: Some(accept), probe: Some(probe) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metric registry (the `/metrics` content).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Whether `shard` is currently ejected.
    pub fn is_ejected(&self, shard: u32) -> bool {
        self.inner.shards[shard as usize].ejected.load(Ordering::SeqCst)
    }

    /// Stop accepting, then join the accept and probe threads. In-flight
    /// connections finish their current request.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.probe.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Result of one upstream exchange: the status line and body, or the
/// error that killed the connection.
type Exchange = io::Result<(String, String)>;

impl Inner {
    fn serve_connection(&self, stream: TcpStream) {
        let Ok(mut conn) = HttpConnection::new(stream) else { return };
        let mut req = Request::default();
        loop {
            match conn.read_request(&mut req) {
                Ok(ReadOutcome::Closed) => break,
                Err(e) => {
                    let body = jstr(&json!({"error": e.to_string()}));
                    let _ = conn.respond("400 Bad Request", "application/json", &body);
                    break;
                }
                Ok(ReadOutcome::Request) => {
                    if self.route(&req, &mut conn).is_err() || !conn.keep_alive() {
                        break;
                    }
                }
            }
        }
    }

    fn route(&self, req: &Request, conn: &mut HttpConnection) -> io::Result<()> {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => {
                self.requests.with(&["/v1/healthz"]).inc();
                let (status, body) = self.healthz();
                conn.respond(status, "application/json", &body)
            }
            ("GET", "/v1/stats") => {
                self.requests.with(&["/v1/stats"]).inc();
                let body = self.stats();
                conn.respond("200 OK", "application/json", &body)
            }
            ("GET", "/metrics") => {
                self.requests.with(&["/metrics"]).inc();
                let body = self.registry.render_prometheus();
                conn.respond("200 OK", "text/plain; version=0.0.4", &body)
            }
            ("POST", "/v1/classify") => {
                self.requests.with(&["/v1/classify"]).inc();
                let (status, body) = self.classify(req);
                conn.respond(status, "application/json", &body)
            }
            ("POST", "/v1/labels") => {
                self.requests.with(&["/v1/labels"]).inc();
                let (status, body) = self.relay_labels(req);
                conn.respond(status, "application/json", &body)
            }
            ("GET", _) | ("POST", _) => {
                self.requests.with(&["other"]).inc();
                conn.respond(
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"no such route\"}",
                )
            }
            _ => conn.respond("405 Method Not Allowed", "text/plain", "only GET/POST\n"),
        }
    }

    fn healthz(&self) -> (&'static str, String) {
        let shards: Vec<Value> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, st)| {
                json!({
                    "shard": s,
                    "addr": st.addr.to_string(),
                    "healthy": !st.ejected.load(Ordering::SeqCst),
                })
            })
            .collect();
        let down = self.shards.iter().filter(|s| s.ejected.load(Ordering::SeqCst)).count();
        let status = if down == 0 { "ok" } else { "degraded" };
        // Degraded is still 200: the router itself is up and survivor
        // shards answer. Only a fully ejected cluster is a 503.
        let http = if down == self.shards.len() { "503 Service Unavailable" } else { "200 OK" };
        (
            http,
            jstr(&json!({
                "status": status,
                "role": "router",
                "num_shards": self.shards.len(),
                "ejected": down,
                "shards": shards,
            })),
        )
    }

    fn stats(&self) -> String {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut queries = 0u64;
        let mut requests = 0u64;
        let mut pseudo = 0u64;
        let mut peak_rss = 0u64;
        for (s, _) in self.shards.iter().enumerate() {
            let stats = match self.exchange(s as u32, |c| c.get("/v1/stats")) {
                Ok((status, body)) if status.contains("200") => {
                    serde_json::from_str(&body).unwrap_or(Value::Null)
                }
                _ => Value::Null,
            };
            if let Some(o) = stats.as_object() {
                queries += o.get("queries").and_then(Value::as_u64).unwrap_or(0);
                requests += o.get("requests").and_then(Value::as_u64).unwrap_or(0);
                pseudo += o.get("pseudo_labels").and_then(Value::as_u64).unwrap_or(0);
                peak_rss =
                    peak_rss.max(o.get("peak_rss_mb").and_then(Value::as_u64).unwrap_or(0));
            }
            per_shard.push(stats);
        }
        jstr(&json!({
            "role": "router",
            "num_shards": self.shards.len(),
            "nodes": self.map.num_nodes(),
            "queries": queries,
            "requests": requests,
            "pseudo_labels": pseudo,
            "peak_rss_mb": peak_rss,
            "shards": per_shard,
        }))
    }

    /// Route a classify batch: group global node ids by owner, forward
    /// per-shard sub-batches, reassemble records in request order.
    fn classify(&self, req: &Request) -> (&'static str, String) {
        let body: Value = match serde_json::from_str(req.body_utf8()) {
            Ok(v) => v,
            Err(e) => return bad_request(format!("invalid JSON body: {e}")),
        };
        let nodes: Vec<u64> = match (body.get("node"), body.get("nodes")) {
            (Some(n), None) => match n.as_u64() {
                Some(n) => vec![n],
                None => return bad_request("'node' must be a non-negative integer".into()),
            },
            (None, Some(list)) => {
                let Some(list) = list.as_array() else {
                    return bad_request("'nodes' must be an array".into());
                };
                if list.is_empty() {
                    return bad_request("'nodes' must not be empty".into());
                }
                match list.iter().map(Value::as_u64).collect::<Option<Vec<u64>>>() {
                    Some(v) => v,
                    None => {
                        return bad_request(
                            "'nodes' entries must be non-negative integers".into(),
                        )
                    }
                }
            }
            _ => return bad_request("body must have exactly one of 'node' or 'nodes'".into()),
        };
        if let Some(&bad) = nodes.iter().find(|&&n| n >= u64::from(self.map.num_nodes())) {
            return bad_request(format!(
                "node {bad} out of range (partition covers {} nodes)",
                self.map.num_nodes()
            ));
        }

        // Group by owner, preserving first-appearance shard order.
        let mut groups: Vec<(u32, Vec<u64>)> = Vec::new();
        for &n in &nodes {
            let owner = self.map.owner(n as u32);
            match groups.iter_mut().find(|(s, _)| *s == owner) {
                Some((_, g)) => g.push(n),
                None => groups.push((owner, vec![n])),
            }
        }
        if groups.len() > 1 {
            self.fanout_batches.inc();
        }
        // Fail fast before any shard does work: a required shard being
        // down makes the whole batch unanswerable.
        if let Some((s, _)) =
            groups.iter().find(|(s, _)| self.shards[*s as usize].ejected.load(Ordering::SeqCst))
        {
            return (
                "503 Service Unavailable",
                jstr(&json!({"error": format!("shard {s} is ejected"), "shard": *s})),
            );
        }

        let template: Map<String, Value> = match body {
            Value::Object(mut o) => {
                o.remove("node");
                o.remove("nodes");
                o
            }
            _ => Map::new(),
        };
        let trace = req.header("x-mqo-trace-id").map(str::to_owned);

        let mut by_node: HashMap<u64, Value> = HashMap::with_capacity(nodes.len());
        let mut billed = 0u64;
        let mut degraded = false;
        let mut replayed = false;
        let mut tenant = Value::Null;
        for (shard, group) in &groups {
            let mut sub = template.clone();
            sub.insert("nodes".into(), json!(group.clone()));
            let sub = jstr(&Value::Object(sub));
            self.routed.with(&[&shard.to_string()]).inc();
            let result = self.exchange(*shard, |c| match &trace {
                Some(t) => c.post_with_header("/v1/classify", &sub, ("x-mqo-trace-id", t)),
                None => c.post("/v1/classify", &sub),
            });
            let parsed = match result {
                Ok((status, body)) if status.contains("200") => {
                    serde_json::from_str(&body).ok()
                }
                Ok((status, body)) => {
                    // Upstream answered but refused (shed, draining, …):
                    // relay its verdict rather than invent one.
                    let status: &'static str = if status.contains("429") {
                        "429 Too Many Requests"
                    } else if status.contains("503") {
                        "503 Service Unavailable"
                    } else {
                        "502 Bad Gateway"
                    };
                    return (status, body);
                }
                Err(_) => None,
            };
            let Some(parsed) = parsed else {
                return (
                    "502 Bad Gateway",
                    jstr(
                        &json!({"error": format!("shard {shard} failed mid-batch"), "shard": *shard}),
                    ),
                );
            };
            billed += parsed.get("billed_tokens").and_then(Value::as_u64).unwrap_or(0);
            degraded |= parsed.get("degraded").and_then(Value::as_bool).unwrap_or(false);
            replayed |= parsed.get("replayed").and_then(Value::as_bool).unwrap_or(false);
            if matches!(tenant, Value::Null) {
                tenant = parsed.get("tenant").cloned().unwrap_or(Value::Null);
            }
            if let Some(records) = parsed.get("records").and_then(Value::as_array) {
                for r in records {
                    if let Some(n) = r.get("node").and_then(Value::as_u64) {
                        by_node.insert(n, r.clone());
                    }
                }
            }
        }

        let records: Vec<Value> =
            nodes.iter().filter_map(|n| by_node.get(n).cloned()).collect();
        let mut out = json!({
            "tenant": tenant,
            "records": records,
            "replayed": replayed,
            "billed_tokens": billed,
            "degraded": degraded,
            "shards": groups.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        });
        if let (Some(t), Value::Object(o)) = (&trace, &mut out) {
            o.insert("trace".into(), Value::String(t.clone()));
        }
        ("200 OK", jstr(&out))
    }

    /// Relay a worker's boundary pseudo-labels to the shards owning the
    /// labeled nodes' neighbors.
    fn relay_labels(&self, req: &Request) -> (&'static str, String) {
        let body: Value = match serde_json::from_str(req.body_utf8()) {
            Ok(v) => v,
            Err(e) => return bad_request(format!("invalid JSON body: {e}")),
        };
        self.label_pushes.inc();
        let from = body.get("from_shard").and_then(Value::as_u64).unwrap_or(u64::MAX);
        let Some(labels) = body.get("labels").and_then(Value::as_array) else {
            return bad_request("body must have a 'labels' array".into());
        };
        // Regroup the per-node target lists into one payload per shard.
        let mut per_target: HashMap<u32, Vec<Value>> = HashMap::new();
        for entry in labels {
            let (Some(node), Some(label)) = (
                entry.get("node").and_then(Value::as_u64),
                entry.get("label").and_then(Value::as_u64),
            ) else {
                return bad_request("label entries need integer 'node' and 'label'".into());
            };
            let Some(targets) = entry.get("shards").and_then(Value::as_array) else {
                return bad_request("label entries need a 'shards' array".into());
            };
            for t in targets {
                let Some(t) = t.as_u64().filter(|&t| t < self.shards.len() as u64) else {
                    return bad_request("label target shard out of range".into());
                };
                if t != from {
                    per_target
                        .entry(t as u32)
                        .or_default()
                        .push(json!({"node": node, "label": label}));
                }
            }
        }

        let mut forwarded = 0usize;
        let mut dropped = 0usize;
        for (target, batch) in &per_target {
            let count = batch.len();
            let label = target.to_string();
            if self.shards[*target as usize].ejected.load(Ordering::SeqCst) {
                self.labels_dropped.with(&[&label]).add(count as u64);
                dropped += count;
                continue;
            }
            let payload = jstr(&json!({"labels": batch.clone()}));
            match self.exchange(*target, |c| c.post("/v1/labels", &payload)) {
                Ok((status, _)) if status.contains("200") => {
                    self.labels_forwarded.with(&[&label]).add(count as u64);
                    forwarded += count;
                }
                _ => {
                    // Advisory traffic: losing it costs γ readiness some
                    // remote cues, not correctness. Count and move on.
                    self.labels_dropped.with(&[&label]).add(count as u64);
                    dropped += count;
                }
            }
        }
        (
            "200 OK",
            jstr(
                &json!({"forwarded": forwarded, "dropped": dropped, "targets": per_target.len()}),
            ),
        )
    }

    /// One exchange with `shard`'s worker over its persistent connection,
    /// with health bookkeeping: success clears the failure streak (and
    /// re-admits an ejected shard that answered anyway); failure kills
    /// the cached connection and may eject. A failure on a *cached*
    /// connection retries once on a fresh one before counting, so a
    /// worker-side idle close never surfaces as a 502 or an ejection.
    fn exchange(&self, shard: u32, f: impl Fn(&mut HttpClient) -> Exchange) -> Exchange {
        let st = &self.shards[shard as usize];
        let mut slot = st.client.lock();
        let mut cached = true;
        if slot.is_none() {
            match HttpClient::connect(st.addr) {
                Ok(c) => {
                    *slot = Some(c);
                    cached = false;
                }
                Err(e) => {
                    drop(slot);
                    self.note_failure(shard);
                    return Err(e);
                }
            }
        }
        let mut result = f(slot.as_mut().expect("connected above"));
        // A worker may close a cached keep-alive connection at any time
        // (idle timeout, restart), and the first reuse then fails before
        // the worker ever sees the request. One fresh-connection retry
        // distinguishes a stale socket from a dead shard — requests are
        // deterministic, so replaying one is safe. A genuinely dead
        // worker refuses the reconnect and still lands in the failure
        // bookkeeping below.
        if result.is_err() && cached {
            *slot = None;
            if let Ok(c) = HttpClient::connect(st.addr) {
                *slot = Some(c);
                result = f(slot.as_mut().expect("reconnected above"));
            }
        }
        match &result {
            Ok(_) => {
                st.failures.store(0, Ordering::SeqCst);
                if st.ejected.swap(false, Ordering::SeqCst) {
                    let label = shard.to_string();
                    self.readmissions.with(&[&label]).inc();
                    self.ejected_gauge.with(&[&label]).set(0);
                }
            }
            Err(_) => {
                *slot = None;
                drop(slot);
                self.note_failure(shard);
            }
        }
        result
    }

    fn note_failure(&self, shard: u32) {
        let st = &self.shards[shard as usize];
        let label = shard.to_string();
        self.upstream_errors.with(&[&label]).inc();
        let streak = st.failures.fetch_add(1, Ordering::SeqCst) + 1;
        if streak >= self.eject_after && !st.ejected.swap(true, Ordering::SeqCst) {
            self.ejections.with(&[&label]).inc();
            self.ejected_gauge.with(&[&label]).set(1);
        }
    }

    /// Retry every ejected shard's healthz once; re-admit on success.
    fn probe_ejected(&self) {
        for (s, st) in self.shards.iter().enumerate() {
            if !st.ejected.load(Ordering::SeqCst) {
                continue;
            }
            if matches!(http_get(st.addr, "/v1/healthz"), Ok((status, _)) if status.contains("200"))
            {
                st.failures.store(0, Ordering::SeqCst);
                if st.ejected.swap(false, Ordering::SeqCst) {
                    let label = s.to_string();
                    self.readmissions.with(&[&label]).inc();
                    self.ejected_gauge.with(&[&label]).set(0);
                }
            }
        }
    }
}

/// Stringify a JSON value (the vendored `Value` has no `Display`).
fn jstr(v: &Value) -> String {
    serde_json::to_string(v).expect("response serialization")
}

fn bad_request(msg: String) -> (&'static str, String) {
    ("400 Bad Request", jstr(&json!({"error": msg})))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionStrategy};
    use mqo_graph::GraphBuilder;
    use mqo_obs::http_post;

    /// A scriptable fake shard worker: answers classify with one record
    /// per node, echoing the node id, until told to die.
    struct FakeShard {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<usize>>,
    }

    impl FakeShard {
        fn start(shard_id: u32) -> FakeShard {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = thread::spawn(move || {
                let mut served = 0usize;
                while !stop2.load(Ordering::SeqCst) {
                    let stream = match listener.accept() {
                        Ok((s, _)) => s,
                        Err(_) => {
                            thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                    };
                    stream.set_nonblocking(false).unwrap();
                    let mut conn = HttpConnection::new(stream).unwrap();
                    let mut req = Request::default();
                    while let Ok(ReadOutcome::Request) = conn.read_request(&mut req) {
                        if stop2.load(Ordering::SeqCst) {
                            return served;
                        }
                        let body = match (req.method.as_str(), req.path.as_str()) {
                            ("GET", "/v1/healthz") => jstr(&json!({"status": "ok"})),
                            ("GET", "/v1/stats") => jstr(&json!({
                                "queries": served, "requests": served,
                                "pseudo_labels": 0, "peak_rss_mb": 10 + shard_id,
                            })),
                            ("POST", "/v1/labels") => jstr(&json!({"ingested": true})),
                            ("POST", "/v1/classify") => {
                                served += 1;
                                let v: Value = serde_json::from_str(req.body_utf8()).unwrap();
                                let records: Vec<Value> = v["nodes"]
                                    .as_array()
                                    .unwrap()
                                    .iter()
                                    .map(|n| {
                                        json!({"node": n.clone(), "predicted": shard_id, "correct": true})
                                    })
                                    .collect();
                                jstr(&json!({
                                    "tenant": v.get("tenant").cloned().unwrap_or(json!("public")),
                                    "records": records,
                                    "replayed": false,
                                    "billed_tokens": 7,
                                    "degraded": false,
                                }))
                            }
                            _ => jstr(&json!({"error": "?"})),
                        };
                        if conn.respond("200 OK", "application/json", &body).is_err() {
                            break;
                        }
                        if !conn.keep_alive() {
                            break;
                        }
                    }
                }
                served
            });
            FakeShard { addr, stop, handle: Some(handle) }
        }

        fn kill(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for FakeShard {
        fn drop(&mut self) {
            self.kill();
        }
    }

    fn line_map(num_nodes: u32, num_shards: u32) -> ShardMap {
        let mut b = GraphBuilder::new(num_nodes as usize);
        for v in 1..num_nodes {
            b.add_edge(v - 1, v).unwrap();
        }
        partition(&b.build(), num_shards, 5, PartitionStrategy::EdgeCut)
    }

    #[test]
    fn batches_fan_out_and_reassemble_in_request_order() {
        let map = line_map(100, 2);
        let s0 = FakeShard::start(0);
        let s1 = FakeShard::start(1);
        let router =
            Router::start("127.0.0.1:0", map, RouterConfig::new(vec![s0.addr, s1.addr]))
                .unwrap();

        // Nodes deliberately interleaved across the two shard ranges.
        let (status, body) =
            http_post(router.addr(), "/v1/classify", r#"{"nodes":[99, 1, 60, 2]}"#).unwrap();
        assert!(status.contains("200"), "status: {status}, body: {body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        let order: Vec<u64> = v["records"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["node"].as_u64().unwrap())
            .collect();
        assert_eq!(order, vec![99, 1, 60, 2], "original request order restored");
        // Each record answered by its owner (fake shards echo their id).
        let preds: Vec<u64> = v["records"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["predicted"].as_u64().unwrap())
            .collect();
        assert_eq!(preds, vec![1, 0, 1, 0]);
        assert_eq!(v["billed_tokens"].as_u64(), Some(14), "billed once per consulted shard");
        assert_eq!(v["shards"].as_array().unwrap().len(), 2);

        let metrics = router.registry().render_prometheus();
        assert!(metrics.contains("mqo_shard_fanout_batches_total 1"), "{metrics}");
        router.shutdown();
    }

    #[test]
    fn dead_shard_is_ejected_survivors_answer_and_probe_readmits() {
        let map = line_map(100, 2);
        let s0 = FakeShard::start(0);
        let mut s1 = FakeShard::start(1);
        let mut cfg = RouterConfig::new(vec![s0.addr, s1.addr]);
        cfg.eject_after = 2;
        cfg.probe_interval = Duration::from_millis(30);
        let router = Router::start("127.0.0.1:0", map, cfg).unwrap();
        let addr = router.addr();

        s1.kill();
        // Requests needing the dead shard fail until the streak ejects it.
        for _ in 0..3 {
            let _ = http_post(addr, "/v1/classify", r#"{"nodes":[90]}"#);
        }
        assert!(router.is_ejected(1), "two consecutive failures must eject");
        let (status, body) = http_post(addr, "/v1/classify", r#"{"nodes":[90]}"#).unwrap();
        assert!(status.contains("503"), "ejected shard fails fast: {status} {body}");

        // Survivors keep answering, healthz says degraded.
        let (status, body) = http_post(addr, "/v1/classify", r#"{"nodes":[3]}"#).unwrap();
        assert!(status.contains("200"), "survivor must answer: {status} {body}");
        let (_, health) = http_get(addr, "/v1/healthz").unwrap();
        assert!(health.contains("\"degraded\""), "healthz: {health}");

        // Restart the worker on the same port; the probe re-admits.
        let listener = loop {
            match TcpListener::bind(s1.addr) {
                Ok(l) => break l,
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        };
        let revived = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = HttpConnection::new(stream).unwrap();
            let mut req = Request::default();
            while let Ok(ReadOutcome::Request) = conn.read_request(&mut req) {
                let _ = conn.respond("200 OK", "application/json", "{\"status\":\"ok\"}");
                if !conn.keep_alive() {
                    break;
                }
            }
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while router.is_ejected(1) && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(20));
        }
        assert!(!router.is_ejected(1), "healthy probe must re-admit");
        let (_, health) = http_get(addr, "/v1/healthz").unwrap();
        assert!(health.contains("\"ok\""), "healthz after re-admit: {health}");
        router.shutdown();
        revived.join().unwrap();
    }

    #[test]
    fn label_pushes_are_regrouped_per_target_shard() {
        let map = line_map(90, 3);
        let s0 = FakeShard::start(0);
        let s1 = FakeShard::start(1);
        let s2 = FakeShard::start(2);
        let router = Router::start(
            "127.0.0.1:0",
            map,
            RouterConfig::new(vec![s0.addr, s1.addr, s2.addr]),
        )
        .unwrap();
        let labels = vec![
            json!({"node": 29, "label": 3, "shards": vec![0]}),
            json!({"node": 59, "label": 1, "shards": vec![2]}),
            json!({"node": 30, "label": 2, "shards": vec![0, 2]}),
            // A target equal to the sender is skipped, not echoed.
            json!({"node": 31, "label": 2, "shards": vec![1]}),
        ];
        let push = jstr(&json!({"from_shard": 1, "labels": labels}));
        let (status, body) = http_post(router.addr(), "/v1/labels", &push).unwrap();
        assert!(status.contains("200"), "{status} {body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["forwarded"].as_u64(), Some(4), "two labels to shard 0, two to shard 2");
        assert_eq!(v["targets"].as_u64(), Some(2));
        let metrics = router.registry().render_prometheus();
        assert!(
            metrics.contains("mqo_shard_labels_forwarded_total{shard=\"0\"} 2"),
            "{metrics}"
        );
        assert!(
            metrics.contains("mqo_shard_labels_forwarded_total{shard=\"2\"} 2"),
            "{metrics}"
        );
        router.shutdown();
    }

    #[test]
    fn router_stats_aggregate_worker_stats() {
        let map = line_map(40, 2);
        let s0 = FakeShard::start(0);
        let s1 = FakeShard::start(1);
        let router =
            Router::start("127.0.0.1:0", map, RouterConfig::new(vec![s0.addr, s1.addr]))
                .unwrap();
        let _ = http_post(router.addr(), "/v1/classify", r#"{"nodes":[1, 30]}"#).unwrap();
        let (status, body) = http_get(router.addr(), "/v1/stats").unwrap();
        assert!(status.contains("200"), "{status}");
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["num_shards"].as_u64(), Some(2));
        assert_eq!(v["nodes"].as_u64(), Some(40), "routers advertise the global node range");
        assert_eq!(v["queries"].as_u64(), Some(2));
        assert_eq!(v["peak_rss_mb"].as_u64(), Some(11), "max over workers, not sum");
        router.shutdown();
    }
}
