//! Per-shard dataset images: the induced subgraph a worker loads.
//!
//! A shard worker owns the nodes its [`crate::ShardMap`] range assigns it
//! and additionally carries *halo* nodes — the off-shard neighbors of its
//! owned nodes. Halo nodes exist so that an owned node's prompt
//! construction and γ₁/γ₂ readiness accounting can see its full
//! neighborhood text and (once the exchange delivers them) remote
//! pseudo-labels; they are never classified locally and never counted as
//! owned. Local node ids are dense: `[0, num_owned)` are the owned nodes
//! in ascending global order, `[num_owned, num_locals)` the halo nodes in
//! ascending global order, which makes "is this local id owned?" a single
//! comparison on the hot path.
//!
//! The on-disk format wraps `mqo_data::persist`: a shard header (ids,
//! counts, the local→global map) protected by its own fingerprint,
//! followed by a complete inner dataset image — which carries its own
//! fingerprint — for the induced subgraph. A worker therefore loads only
//! its shard file, a few percent of the full-graph image at products
//! scale, and any truncation or cross-shard file swap fails loudly.

use crate::partition::ShardMap;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mqo_data::persist::{self, fingerprint, PersistError};
use mqo_data::{DatasetBundle, DatasetSpec};
use mqo_graph::{GraphBuilder, NodeId, Tag};
use std::collections::HashMap;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MQOSHD1\n";

/// The id-space facts of one shard, separable from the dataset itself so
/// a serving engine can own the [`DatasetBundle`] while the shard
/// identity travels alongside it.
#[derive(Debug, Clone)]
pub struct ShardIdentity {
    /// This shard's id in `[0, num_shards)`.
    pub shard_id: u32,
    /// Total shards in the partition this bundle was cut from.
    pub num_shards: u32,
    /// Local ids `< num_owned` are owned; the rest are halo.
    num_owned: u32,
    /// Local id → global id. Owned ascending, then halo ascending.
    global_ids: Vec<u32>,
    /// Global id → local id, for the nodes present on this shard.
    local_ids: HashMap<u32, u32>,
}

/// One shard's slice of a dataset: the induced subgraph on owned ∪ halo
/// nodes, with the id maps to translate between local and global space.
#[derive(Debug)]
pub struct ShardBundle {
    /// Who this shard is and how its local ids map to global ids.
    pub identity: ShardIdentity,
    /// The induced-subgraph dataset, in local id space. Keeps the source
    /// dataset's name so spec resolution and per-dataset engine defaults
    /// (e.g. the products neighbor cap) behave identically on a shard.
    pub data: DatasetBundle,
}

/// Cut `shard`'s bundle out of the full dataset according to `map`.
///
/// Edges are kept iff at least one endpoint is owned: owned–owned edges
/// stay whole, owned–halo edges connect to the halo copy, halo–halo
/// edges are dropped (neither endpoint's queries run here).
///
/// # Panics
/// If `shard >= map.num_shards()` or the map's node count disagrees with
/// the dataset's.
pub fn extract_shard(full: &DatasetBundle, map: &ShardMap, shard: u32) -> ShardBundle {
    assert!(shard < map.num_shards(), "shard {shard} of {}", map.num_shards());
    assert_eq!(
        map.num_nodes() as usize,
        full.tag.num_nodes(),
        "shard map was built for a different graph"
    );
    let tag = &full.tag;
    let csr = tag.graph();

    let owned = map.owned_nodes(shard);
    let num_owned = owned.len() as u32;
    let mut halo: Vec<u32> = Vec::new();
    for &u in &owned {
        for &v in csr.neighbors(NodeId(u)) {
            if map.owner(v) != shard {
                halo.push(v);
            }
        }
    }
    halo.sort_unstable();
    halo.dedup();

    let mut global_ids = owned;
    global_ids.extend_from_slice(&halo);
    let local_ids: HashMap<u32, u32> =
        global_ids.iter().enumerate().map(|(l, &g)| (g, l as u32)).collect();

    let n = global_ids.len();
    let mut builder = GraphBuilder::new(n);
    for local_u in 0..num_owned {
        let gu = global_ids[local_u as usize];
        for &gv in csr.neighbors(NodeId(gu)) {
            let local_v = local_ids[&gv];
            // Owned–owned edges are walked from both ends: keep the one
            // walk where this end is the lower global id. Owned–halo
            // edges are walked only from the owned end: always keep.
            if local_v >= num_owned || gu < gv {
                builder.add_edge(local_u, local_v).expect("local ids are dense");
            }
        }
    }

    let texts = global_ids.iter().map(|&g| tag.text(NodeId(g)).clone()).collect();
    let labels = global_ids.iter().map(|&g| tag.label(NodeId(g))).collect();
    let alphas = global_ids.iter().map(|&g| full.alphas[g as usize]).collect();
    let adversarial = global_ids.iter().map(|&g| full.adversarial[g as usize]).collect();
    let sub_tag =
        Tag::new(tag.name(), builder.build(), texts, labels, tag.class_names().to_vec())
            .expect("induced subgraph arrays are consistent by construction");

    ShardBundle {
        identity: ShardIdentity {
            shard_id: shard,
            num_shards: map.num_shards(),
            num_owned,
            global_ids,
            local_ids,
        },
        data: DatasetBundle {
            tag: sub_tag,
            lexicon: full.lexicon.clone(),
            alphas,
            adversarial,
            spec: full.spec.clone(),
            scale: full.scale,
        },
    }
}

impl ShardIdentity {
    /// Assemble an identity directly from the local→global map:
    /// `global_ids` lists owned nodes first (the leading `num_owned`
    /// entries), then halo nodes. For tools and tests building shard
    /// views without going through [`extract_shard`]; global ids must
    /// be distinct.
    pub fn new(
        shard_id: u32,
        num_shards: u32,
        num_owned: u32,
        global_ids: Vec<u32>,
    ) -> ShardIdentity {
        assert!(shard_id < num_shards, "shard id out of range");
        assert!(
            (num_owned as usize) <= global_ids.len(),
            "owned count exceeds the local id space"
        );
        let local_ids: HashMap<u32, u32> =
            global_ids.iter().enumerate().map(|(l, &g)| (g, l as u32)).collect();
        assert_eq!(local_ids.len(), global_ids.len(), "duplicate global id");
        ShardIdentity { shard_id, num_shards, num_owned, global_ids, local_ids }
    }

    /// Owned node count; local ids below this are owned, at or above are
    /// halo.
    pub fn num_owned(&self) -> u32 {
        self.num_owned
    }

    /// Total local nodes (owned + halo).
    pub fn num_locals(&self) -> u32 {
        self.global_ids.len() as u32
    }

    /// Whether `local` refers to an owned node (vs a halo copy).
    #[inline]
    pub fn is_owned_local(&self, local: u32) -> bool {
        local < self.num_owned
    }

    /// Global id of a local node.
    #[inline]
    pub fn global_of(&self, local: u32) -> u32 {
        self.global_ids[local as usize]
    }

    /// Local id of a global node, if present on this shard.
    #[inline]
    pub fn local_of(&self, global: u32) -> Option<u32> {
        self.local_ids.get(&global).copied()
    }

    /// The shards owning off-shard neighbors of the owned node `local` —
    /// the exchange targets for a pseudo-label minted on it — given the
    /// shard's local-space graph. Sorted, deduplicated, never contains
    /// this shard. Empty for interior nodes.
    pub fn neighbor_shards(
        &self,
        graph: &mqo_graph::Csr,
        map: &ShardMap,
        local: u32,
    ) -> Vec<u32> {
        debug_assert!(self.is_owned_local(local));
        let mut shards: Vec<u32> = graph
            .neighbors(NodeId(local))
            .iter()
            .filter(|&&v| !self.is_owned_local(v))
            .map(|&v| map.owner(self.global_of(v)))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

impl ShardBundle {
    /// Owned node count (see [`ShardIdentity::num_owned`]).
    pub fn num_owned(&self) -> u32 {
        self.identity.num_owned()
    }

    /// Total local nodes (see [`ShardIdentity::num_locals`]).
    pub fn num_locals(&self) -> u32 {
        self.identity.num_locals()
    }

    /// Whether `local` is owned (see [`ShardIdentity::is_owned_local`]).
    #[inline]
    pub fn is_owned_local(&self, local: u32) -> bool {
        self.identity.is_owned_local(local)
    }

    /// Global id of a local node (see [`ShardIdentity::global_of`]).
    #[inline]
    pub fn global_of(&self, local: u32) -> u32 {
        self.identity.global_of(local)
    }

    /// Local id of a global node (see [`ShardIdentity::local_of`]).
    #[inline]
    pub fn local_of(&self, global: u32) -> Option<u32> {
        self.identity.local_of(global)
    }

    /// Exchange targets of an owned node (see
    /// [`ShardIdentity::neighbor_shards`]).
    pub fn neighbor_shards(&self, map: &ShardMap, local: u32) -> Vec<u32> {
        self.identity.neighbor_shards(self.data.tag.graph(), map, local)
    }

    /// Serialize: fingerprinted shard header, then the inner dataset
    /// image (which carries its own fingerprint).
    pub fn to_bytes(&self) -> Bytes {
        let id = &self.identity;
        let mut header = BytesMut::with_capacity(16 + 4 * id.global_ids.len());
        header.put_u32_le(id.shard_id);
        header.put_u32_le(id.num_shards);
        header.put_u32_le(id.num_owned);
        header.put_u32_le(id.global_ids.len() as u32);
        for &g in &id.global_ids {
            header.put_u32_le(g);
        }
        let header = header.freeze();
        let inner = persist::to_bytes(&self.data);
        let mut framed = BytesMut::with_capacity(MAGIC.len() + 8 + header.len() + inner.len());
        framed.put_slice(MAGIC);
        framed.put_u64_le(fingerprint(&header));
        framed.put_slice(&header);
        framed.put_slice(&inner);
        framed.freeze()
    }

    /// Deserialize bytes written by [`ShardBundle::to_bytes`]; the caller
    /// supplies the spec, exactly as `mqo_data::persist::load` does.
    pub fn from_bytes(mut buf: Bytes, spec: DatasetSpec) -> Result<ShardBundle, PersistError> {
        use PersistError::Corrupt;
        if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
            return Err(Corrupt("bad shard magic"));
        }
        if buf.remaining() < 8 + 16 {
            return Err(Corrupt("truncated shard header"));
        }
        let stored = buf.get_u64_le();
        // The header fingerprint covers only the shard header; the inner
        // dataset image that follows verifies itself. Keep a cheap view
        // from before the reads so the whole header can be hashed.
        let header_probe = buf.clone();
        let shard_id = buf.get_u32_le();
        let num_shards = buf.get_u32_le();
        let num_owned = buf.get_u32_le();
        let num_locals = buf.get_u32_le() as usize;
        if buf.remaining() < 4 * num_locals {
            return Err(Corrupt("truncated local id map"));
        }
        if fingerprint(&header_probe[..16 + 4 * num_locals]) != stored {
            return Err(Corrupt("shard header fingerprint mismatch"));
        }
        if shard_id >= num_shards || num_owned as usize > num_locals {
            return Err(Corrupt("inconsistent shard header"));
        }
        let mut global_ids = Vec::with_capacity(num_locals);
        for _ in 0..num_locals {
            global_ids.push(buf.get_u32_le());
        }
        let data = persist::from_bytes(buf, spec)?;
        if data.tag.num_nodes() != num_locals {
            return Err(Corrupt("shard header disagrees with inner image"));
        }
        let local_ids = global_ids.iter().enumerate().map(|(l, &g)| (g, l as u32)).collect();
        Ok(ShardBundle {
            identity: ShardIdentity { shard_id, num_shards, num_owned, global_ids, local_ids },
            data,
        })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Load from a file, attaching `spec`.
    pub fn load(
        path: impl AsRef<Path>,
        spec: DatasetSpec,
    ) -> Result<ShardBundle, PersistError> {
        ShardBundle::from_bytes(Bytes::from(std::fs::read(path)?), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionStrategy};
    use mqo_data::{dataset, DatasetId};

    fn fixture() -> (DatasetBundle, ShardMap) {
        let full = dataset(DatasetId::Cora, Some(0.2), 17);
        let map = partition(full.tag.graph(), 3, 17, PartitionStrategy::EdgeCut);
        (full, map)
    }

    #[test]
    fn shards_cover_all_nodes_and_all_edges_once() {
        let (full, map) = fixture();
        let mut owned_seen = vec![0u32; full.tag.num_nodes()];
        let mut edges_seen: HashMap<(u32, u32), u32> = HashMap::new();
        for s in 0..map.num_shards() {
            let sb = extract_shard(&full, &map, s);
            for l in 0..sb.num_owned() {
                owned_seen[sb.global_of(l) as usize] += 1;
            }
            for (u, v) in sb.data.tag.graph().edges() {
                // Count only edges with an owned endpoint on the lower
                // global side or an owned–halo edge, in global space.
                let (gu, gv) = (sb.global_of(u.0), sb.global_of(v.0));
                let key = (gu.min(gv), gu.max(gv));
                *edges_seen.entry(key).or_default() += 1;
            }
        }
        assert!(owned_seen.iter().all(|&c| c == 1), "every node owned exactly once");
        // An edge interior to a shard appears once; a cut edge appears on
        // both shards that carry an owned endpoint of it.
        let mut total_once = 0u64;
        let mut total_twice = 0u64;
        for (&(gu, gv), &c) in &edges_seen {
            let cut = map.owner(gu) != map.owner(gv);
            assert_eq!(c, if cut { 2 } else { 1 }, "edge ({gu},{gv}) seen {c} times");
            if cut {
                total_twice += 1;
            } else {
                total_once += 1;
            }
        }
        assert_eq!(total_twice, map.total_cut());
        assert_eq!(total_once + total_twice, full.tag.num_edges());
    }

    #[test]
    fn id_maps_invert_and_halo_is_marked() {
        let (full, map) = fixture();
        let sb = extract_shard(&full, &map, 1);
        assert!(sb.num_owned() > 0 && sb.num_locals() > sb.num_owned());
        for l in 0..sb.num_locals() {
            let g = sb.global_of(l);
            assert_eq!(sb.local_of(g), Some(l));
            assert_eq!(sb.is_owned_local(l), map.owner(g) == 1);
            // Node payloads survive the cut.
            assert_eq!(sb.data.tag.label(NodeId(l)), full.tag.label(NodeId(g)));
            assert_eq!(sb.data.tag.text(NodeId(l)), full.tag.text(NodeId(g)));
        }
        // Boundary nodes have at least one halo neighbor with a
        // nonempty exchange-target set.
        let boundary_global = map.boundary(1)[0];
        let l = sb.local_of(boundary_global).unwrap();
        let targets = sb.neighbor_shards(&map, l);
        assert!(!targets.is_empty() && !targets.contains(&1));
    }

    #[test]
    fn file_roundtrip_and_corruption() {
        let (full, map) = fixture();
        let sb = extract_shard(&full, &map, 0);
        let bytes = sb.to_bytes();
        let back = ShardBundle::from_bytes(bytes.clone(), full.spec.clone()).unwrap();
        assert_eq!(back.identity.shard_id, 0);
        assert_eq!(back.identity.num_shards, 3);
        assert_eq!(back.num_owned(), sb.num_owned());
        assert_eq!(back.identity.global_ids, sb.identity.global_ids);
        assert_eq!(back.data.tag.num_edges(), sb.data.tag.num_edges());
        assert_eq!(&back.to_bytes()[..], &bytes[..], "shard serialization must be byte-stable");

        // Header corruption and inner corruption both fail loudly.
        let mut bad_header = bytes.to_vec();
        bad_header[MAGIC.len() + 8 + 2] ^= 1;
        assert!(ShardBundle::from_bytes(Bytes::from(bad_header), full.spec.clone()).is_err());
        let mut bad_inner = bytes.to_vec();
        let tail = bad_inner.len() - 8;
        bad_inner[tail] ^= 1;
        assert!(ShardBundle::from_bytes(Bytes::from(bad_inner), full.spec.clone()).is_err());
    }
}
