//! The seeded, deterministic graph partitioner and its [`ShardMap`].
//!
//! A `ShardMap` is the single source of truth for node ownership in a
//! sharded deployment: the partitioner emits it, every worker loads it
//! (to know its own range and its exchange targets), and the router
//! loads it (to route classify traffic and forward exchanged labels).
//! It is deliberately tiny next to the dataset — ranges, boundary
//! lists, and cut statistics, not per-node tables — and its binary
//! serialization is byte-stable: the same graph and seed produce the
//! same bytes, which is what lets a cluster verify that router and
//! workers agree on the partition by comparing fingerprints.
//!
//! Two ownership rules:
//!
//! * [`PartitionStrategy::EdgeCut`] — contiguous node-id ranges with
//!   seeded, cut-aware refinement. Nominal equal-size cut points are
//!   jittered by the seed and then slid within a local window to the
//!   position crossed by the fewest edges (computed exactly, in O(m),
//!   from a difference array over cut positions). Generated TAGs assign
//!   ids with locality, so ranges already capture most edges; the
//!   refinement shaves the boundary further.
//! * [`PartitionStrategy::Ring`] — the consistent-hash ring from
//!   [`crate::ring`]. Membership-stable, cut-oblivious.

use crate::ring::{splitmix64, HashRing};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mqo_data::persist::fingerprint;
use mqo_graph::{Csr, NodeId};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MQOSHM1\n";

/// How node ownership is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous ranges with seeded edge-cut-aware cut points.
    EdgeCut,
    /// Consistent-hash ring on node id.
    Ring,
}

/// Per-shard partition statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Nodes owned by this shard.
    pub owned_nodes: u32,
    /// Edges with both endpoints in this shard (each counted once).
    pub internal_edges: u64,
    /// Edges with exactly one endpoint in this shard (each such edge
    /// appears in the count of both shards it touches).
    pub cut_edges: u64,
}

/// Errors from shard-map persistence.
#[derive(Debug)]
pub enum ShardMapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid shard map.
    Corrupt(&'static str),
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapError::Io(e) => write!(f, "io error: {e}"),
            ShardMapError::Corrupt(what) => write!(f, "corrupt shard map: {what}"),
        }
    }
}

impl std::error::Error for ShardMapError {}

impl From<io::Error> for ShardMapError {
    fn from(e: io::Error) -> Self {
        ShardMapError::Io(e)
    }
}

/// A deterministic partition of `[0, num_nodes)` into shards, plus the
/// boundary structure the label exchange needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    seed: u64,
    num_nodes: u32,
    strategy: PartitionStrategy,
    /// `EdgeCut`: shard `s` owns `[starts[s], starts[s+1])`; length
    /// `num_shards + 1`. Empty for `Ring`.
    starts: Vec<u32>,
    /// `Ring`: the ownership ring, reconstructed from `(seed,
    /// num_shards)` on load. `None` for `EdgeCut`.
    ring: Option<HashRing>,
    /// Per shard: owned nodes with at least one neighbor on another
    /// shard, sorted ascending (global ids).
    boundary: Vec<Vec<u32>>,
    stats: Vec<ShardStats>,
    /// Edges whose endpoints live on different shards (each once).
    total_cut: u64,
}

/// Partition `csr` into `num_shards` shards. Deterministic in `(csr,
/// num_shards, seed, strategy)`.
///
/// # Panics
/// If `num_shards` is zero, or exceeds the node count of a non-empty
/// graph (every shard must own at least one node).
pub fn partition(
    csr: &Csr,
    num_shards: u32,
    seed: u64,
    strategy: PartitionStrategy,
) -> ShardMap {
    assert!(num_shards > 0, "cannot partition into zero shards");
    let n = csr.num_nodes() as u32;
    assert!(n == 0 || num_shards <= n, "cannot give each of {num_shards} shards a node of {n}");
    let (starts, ring) = match strategy {
        PartitionStrategy::EdgeCut => (edge_cut_starts(csr, num_shards, seed), None),
        PartitionStrategy::Ring => (Vec::new(), Some(HashRing::new(seed, num_shards))),
    };
    let mut map = ShardMap {
        seed,
        num_nodes: n,
        strategy,
        starts,
        ring,
        boundary: vec![Vec::new(); num_shards as usize],
        stats: vec![ShardStats::default(); num_shards as usize],
        total_cut: 0,
    };
    map.fill_boundary_and_stats(csr);
    map
}

/// Choose the `EdgeCut` range starts: nominal equal splits, seeded
/// jitter, then an exact local search for the cut position crossed by
/// the fewest edges.
fn edge_cut_starts(csr: &Csr, num_shards: u32, seed: u64) -> Vec<u32> {
    let n = csr.num_nodes();
    let k = num_shards as usize;
    // crossing(p) = number of edges {u, v} with u < p <= v: exactly the
    // edges severed by cutting between node p-1 and node p. Built as a
    // difference array (+1 at u+1, -1 at v+1 per edge), then summed.
    let mut crossing = vec![0i64; n + 2];
    for (u, v) in csr.edges() {
        if u != v {
            crossing[u.index() + 1] += 1;
            crossing[v.index() + 1] -= 1;
        }
    }
    for p in 1..crossing.len() {
        crossing[p] += crossing[p - 1];
    }

    let mut starts = Vec::with_capacity(k + 1);
    starts.push(0u32);
    let window = (n / (16 * k)).max(1);
    for s in 1..k {
        let nominal = s * n / k;
        // The seed nudges the search center so distinct seeds can land on
        // distinct (equally valid) partitions of the same graph.
        let jitter = (window / 4) as i64;
        let offset = if jitter > 0 {
            (splitmix64(seed ^ s as u64) % (2 * jitter as u64 + 1)) as i64 - jitter
        } else {
            0
        };
        let center = (nominal as i64 + offset).clamp(0, n as i64) as usize;
        // Every shard, including the ones still to be cut, must keep at
        // least one node.
        let lo = center.saturating_sub(window).max(starts[s - 1] as usize + 1);
        let hi = (center + window).min(n - (k - s));
        let mut best = lo.max(1).min(hi.max(lo));
        let mut best_key = (i64::MAX, usize::MAX);
        for (p, &crossed) in crossing.iter().enumerate().take(hi.max(lo) + 1).skip(lo) {
            let key = (crossed, p.abs_diff(nominal));
            if key < best_key {
                best_key = key;
                best = p;
            }
        }
        starts.push(best as u32);
    }
    starts.push(n as u32);
    starts
}

impl ShardMap {
    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.stats.len() as u32
    }

    /// Number of nodes in the partitioned graph (the global id space).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The partitioner seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ownership rule in force.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    /// If `node` is outside the partitioned id space.
    #[inline]
    pub fn owner(&self, node: u32) -> u32 {
        assert!(node < self.num_nodes, "node {node} outside partition of {}", self.num_nodes);
        match &self.ring {
            Some(ring) => ring.owner(u64::from(node)),
            None => (self.starts.partition_point(|&s| s <= node) - 1) as u32,
        }
    }

    /// The contiguous owned range of `shard` (`EdgeCut` only).
    pub fn owned_range(&self, shard: u32) -> Option<(u32, u32)> {
        let s = shard as usize;
        (!self.starts.is_empty()).then(|| (self.starts[s], self.starts[s + 1]))
    }

    /// Owned nodes of `shard`, ascending. For `EdgeCut` this is the
    /// range; for `Ring` it scans the id space.
    pub fn owned_nodes(&self, shard: u32) -> Vec<u32> {
        match self.owned_range(shard) {
            Some((lo, hi)) => (lo..hi).collect(),
            None => (0..self.num_nodes).filter(|&v| self.owner(v) == shard).collect(),
        }
    }

    /// Boundary nodes of `shard`: owned nodes with at least one neighbor
    /// on another shard, sorted ascending.
    pub fn boundary(&self, shard: u32) -> &[u32] {
        &self.boundary[shard as usize]
    }

    /// Partition statistics of `shard`.
    pub fn stats(&self, shard: u32) -> ShardStats {
        self.stats[shard as usize]
    }

    /// Edges with endpoints on two different shards, each counted once.
    pub fn total_cut(&self) -> u64 {
        self.total_cut
    }

    fn fill_boundary_and_stats(&mut self, csr: &Csr) {
        for u in 0..self.num_nodes {
            let su = self.owner(u);
            self.stats[su as usize].owned_nodes += 1;
            let mut is_boundary = false;
            for &v in csr.neighbors(NodeId(u)) {
                let sv = self.owner(v);
                if sv != su {
                    is_boundary = true;
                    // Each cut edge is visited from both endpoints; count
                    // the total once (from the lower endpoint) and the
                    // per-shard incidence from each side.
                    self.stats[su as usize].cut_edges += u64::from(u < v);
                    if u < v {
                        self.total_cut += 1;
                        self.stats[sv as usize].cut_edges += 1;
                    }
                } else if u <= v {
                    self.stats[su as usize].internal_edges += 1;
                }
            }
            if is_boundary {
                self.boundary[su as usize].push(u);
            }
        }
    }

    /// Serialize. Byte-stable: equal maps produce equal bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(64 + 4 * self.boundary.iter().map(Vec::len).sum::<usize>());
        buf.put_u8(match self.strategy {
            PartitionStrategy::EdgeCut => 0,
            PartitionStrategy::Ring => 1,
        });
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.num_nodes);
        buf.put_u32_le(self.num_shards());
        for &s in &self.starts {
            buf.put_u32_le(s);
        }
        buf.put_u64_le(self.total_cut);
        for (stats, boundary) in self.stats.iter().zip(&self.boundary) {
            buf.put_u32_le(stats.owned_nodes);
            buf.put_u64_le(stats.internal_edges);
            buf.put_u64_le(stats.cut_edges);
            buf.put_u32_le(boundary.len() as u32);
            for &v in boundary {
                buf.put_u32_le(v);
            }
        }
        let payload = buf.freeze();
        let mut framed = BytesMut::with_capacity(MAGIC.len() + 8 + payload.len());
        framed.put_slice(MAGIC);
        framed.put_u64_le(fingerprint(&payload));
        framed.put_slice(&payload);
        framed.freeze()
    }

    /// Deserialize bytes written by [`ShardMap::to_bytes`].
    pub fn from_bytes(mut buf: Bytes) -> Result<ShardMap, ShardMapError> {
        use ShardMapError::Corrupt;
        if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
            return Err(Corrupt("bad magic"));
        }
        if buf.remaining() < 8 {
            return Err(Corrupt("truncated fingerprint"));
        }
        let stored = buf.get_u64_le();
        if fingerprint(&buf) != stored {
            return Err(Corrupt("fingerprint mismatch (truncated or corrupt file)"));
        }
        if buf.remaining() < 1 + 8 + 4 + 4 {
            return Err(Corrupt("truncated header"));
        }
        let strategy = match buf.get_u8() {
            0 => PartitionStrategy::EdgeCut,
            1 => PartitionStrategy::Ring,
            _ => return Err(Corrupt("unknown strategy")),
        };
        let seed = buf.get_u64_le();
        let num_nodes = buf.get_u32_le();
        let num_shards = buf.get_u32_le();
        if num_shards == 0 {
            return Err(Corrupt("zero shards"));
        }
        let (starts, ring) = match strategy {
            PartitionStrategy::EdgeCut => {
                let mut starts = Vec::with_capacity(num_shards as usize + 1);
                for _ in 0..=num_shards {
                    if buf.remaining() < 4 {
                        return Err(Corrupt("truncated range starts"));
                    }
                    starts.push(buf.get_u32_le());
                }
                if starts[0] != 0
                    || *starts.last().unwrap() != num_nodes
                    || starts.windows(2).any(|w| w[0] > w[1])
                {
                    return Err(Corrupt("non-monotone range starts"));
                }
                (starts, None)
            }
            PartitionStrategy::Ring => (Vec::new(), Some(HashRing::new(seed, num_shards))),
        };
        if buf.remaining() < 8 {
            return Err(Corrupt("truncated cut total"));
        }
        let total_cut = buf.get_u64_le();
        let mut stats = Vec::with_capacity(num_shards as usize);
        let mut boundary = Vec::with_capacity(num_shards as usize);
        for _ in 0..num_shards {
            if buf.remaining() < 4 + 8 + 8 + 4 {
                return Err(Corrupt("truncated shard stats"));
            }
            let owned_nodes = buf.get_u32_le();
            let internal_edges = buf.get_u64_le();
            let cut_edges = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * len {
                return Err(Corrupt("truncated boundary list"));
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                list.push(buf.get_u32_le());
            }
            stats.push(ShardStats { owned_nodes, internal_edges, cut_edges });
            boundary.push(list);
        }
        Ok(ShardMap { seed, num_nodes, strategy, starts, ring, boundary, stats, total_cut })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ShardMapError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<ShardMap, ShardMapError> {
        ShardMap::from_bytes(Bytes::from(std::fs::read(path)?))
    }

    /// Human-facing partition summary as JSON.
    pub fn stats_json(&self) -> String {
        let shards: Vec<_> = (0..self.num_shards())
            .map(|s| {
                let st = self.stats(s);
                serde_json::json!({
                    "shard": s,
                    "owned_nodes": st.owned_nodes,
                    "internal_edges": st.internal_edges,
                    "cut_edges": st.cut_edges,
                    "boundary_nodes": self.boundary(s).len(),
                })
            })
            .collect();
        let v = serde_json::json!({
            "strategy": match self.strategy {
                PartitionStrategy::EdgeCut => "edge-cut",
                PartitionStrategy::Ring => "ring",
            },
            "seed": self.seed,
            "nodes": self.num_nodes,
            "num_shards": self.num_shards(),
            "total_cut_edges": self.total_cut,
            "shards": shards,
        });
        serde_json::to_string(&v).expect("stats serialization")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_graph::GraphBuilder;

    /// Two dense clusters joined by one bridge edge: the cut refinement
    /// must place its single cut point on the bridge.
    fn two_clusters(size: u32) -> Csr {
        let mut b = GraphBuilder::new((2 * size) as usize);
        for c in 0..2u32 {
            let base = c * size;
            for i in 0..size {
                for j in (i + 1)..(i + 4).min(size) {
                    b.add_edge(base + i, base + j).unwrap();
                }
            }
        }
        b.add_edge(size - 1, size).unwrap();
        b.build()
    }

    #[test]
    fn edge_cut_finds_the_bridge() {
        let csr = two_clusters(64);
        let map = partition(&csr, 2, 42, PartitionStrategy::EdgeCut);
        assert_eq!(map.owned_range(0), Some((0, 64)));
        assert_eq!(map.total_cut(), 1, "only the bridge edge should be cut");
        assert_eq!(map.boundary(0), &[63]);
        assert_eq!(map.boundary(1), &[64]);
    }

    #[test]
    fn every_node_is_owned_exactly_once() {
        let csr = two_clusters(50);
        for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::Ring] {
            let map = partition(&csr, 4, 7, strategy);
            let mut counts = [0u32; 4];
            for v in 0..csr.num_nodes() as u32 {
                counts[map.owner(v) as usize] += 1;
            }
            for (s, &c) in counts.iter().enumerate() {
                assert_eq!(c, map.stats(s as u32).owned_nodes, "strategy {strategy:?}");
                assert!(c > 0, "shard {s} owns nothing under {strategy:?}");
            }
            assert_eq!(counts.iter().sum::<u32>(), csr.num_nodes() as u32);
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let csr = two_clusters(40);
        for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::Ring] {
            let map = partition(&csr, 3, 99, strategy);
            let bytes = map.to_bytes();
            let back = ShardMap::from_bytes(bytes.clone()).unwrap();
            assert_eq!(back, map);
            assert_eq!(
                &back.to_bytes()[..],
                &bytes[..],
                "re-serialization must be byte-stable"
            );
        }
    }

    #[test]
    fn corrupt_maps_are_rejected() {
        let csr = two_clusters(10);
        let map = partition(&csr, 2, 1, PartitionStrategy::EdgeCut);
        let bytes = map.to_bytes();
        assert!(ShardMap::from_bytes(Bytes::from_static(b"nope")).is_err());
        let cut = Bytes::from(bytes[..bytes.len() - 3].to_vec());
        assert!(matches!(ShardMap::from_bytes(cut), Err(ShardMapError::Corrupt(_))));
        let mut flipped = bytes.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        assert!(matches!(
            ShardMap::from_bytes(Bytes::from(flipped)),
            Err(ShardMapError::Corrupt(_))
        ));
    }
}
