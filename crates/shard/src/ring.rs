//! Consistent-hash ring over shard ids.
//!
//! The alternative ownership rule to the edge-cut range partition: each
//! shard contributes a fixed number of seeded virtual points on a u64
//! ring, and a node is owned by the shard whose point is the first at or
//! clockwise-after the node's hash. Ownership is stable under shard-set
//! growth (adding a shard moves only the keys landing in its new arcs),
//! which is what a deployment that reshards in place cares about; the
//! price is that graph edges are scattered uniformly across shard pairs,
//! so nearly every edge is cut. The partitioner offers both and the
//! [`crate::ShardMap`] records which rule is in force.

/// SplitMix64 — the workspace's standard cheap bijective mixer.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded consistent-hash ring mapping `u64` keys to shard ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(position, shard)` points sorted by position.
    points: Vec<(u64, u32)>,
}

/// Virtual points per shard. Enough that the largest arc imbalance stays
/// within a few percent at 4–64 shards; small enough that ring lookup
/// stays a cache-resident binary search.
pub const VNODES_PER_SHARD: u32 = 64;

impl HashRing {
    /// Build the ring for `num_shards` shards with `seed`. Deterministic:
    /// same inputs, same ring. Positions collide with negligible
    /// probability; ties break toward the lower shard id via the sort.
    pub fn new(seed: u64, num_shards: u32) -> Self {
        // Pre-mix the seed: xoring a *raw* small seed into the small
        // `(shard, vnode)` ids would only permute them within the same
        // set, yielding the identical ring for every seed below 2⁶.
        let base = splitmix64(seed);
        let mut points = Vec::with_capacity((num_shards * VNODES_PER_SHARD) as usize);
        for shard in 0..num_shards {
            for v in 0..VNODES_PER_SHARD {
                let pos = splitmix64(base ^ ((u64::from(shard) << 32) | u64::from(v)));
                points.push((pos, shard));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning `key`: first point at or clockwise-after
    /// `hash(key)`, wrapping past the top of the ring.
    #[inline]
    pub fn owner(&self, key: u64) -> u32 {
        let h = splitmix64(key);
        let i = self.points.partition_point(|&(pos, _)| pos < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_complete() {
        let a = HashRing::new(7, 4);
        let b = HashRing::new(7, 4);
        assert_eq!(a, b);
        for key in 0..10_000u64 {
            assert!(a.owner(key) < 4);
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn seed_changes_the_assignment() {
        let a = HashRing::new(1, 4);
        let b = HashRing::new(2, 4);
        let moved = (0..10_000u64).filter(|&k| a.owner(k) != b.owner(k)).count();
        assert!(moved > 5_000, "different seeds must shuffle ownership, moved {moved}");
    }

    #[test]
    fn balance_is_reasonable() {
        let ring = HashRing::new(42, 4);
        let mut counts = [0usize; 4];
        for key in 0..40_000u64 {
            counts[ring.owner(key) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (5_000..=15_000).contains(&c),
                "shard {s} owns {c} of 40000 keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn growth_moves_few_keys() {
        // The consistent-hashing contract: adding a shard re-homes only
        // the keys the new shard captures, not an arbitrary reshuffle.
        let four = HashRing::new(42, 4);
        let five = HashRing::new(42, 5);
        let keys = 40_000u64;
        let moved =
            (0..keys).filter(|&k| four.owner(k) != five.owner(k) && five.owner(k) != 4).count();
        assert!(
            moved < (keys as usize) / 50,
            "keys moving between surviving shards: {moved} (expected ~0)"
        );
    }
}
