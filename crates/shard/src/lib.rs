//! # mqo-shard — graph partitioning and routed serving
//!
//! The paper's largest target, Ogbn-Products, is a 2.4M-node TAG; one
//! in-memory executor cannot own it comfortably, and the query-boosting
//! rule (Algorithm 2) is the part that does not shard trivially:
//! pseudo-labels of executed queries must enrich *unexecuted neighbors*,
//! and a partition boundary severs exactly those edges. This crate is
//! the scale-out substrate:
//!
//! * [`ShardMap`] — a seeded, deterministic partition of node-id space
//!   with per-shard ranges, boundary-node lists, and cut statistics
//!   ([`mod@partition`]). Two strategies: an edge-cut-aware contiguous-range
//!   split (default — generated ids are locality-friendly) and a
//!   consistent-hash ring ([`ring`]) for deployments that prioritize
//!   membership stability over cut size.
//! * [`ShardBundle`] — the per-shard dataset image ([`bundle`]): the
//!   induced subgraph on owned ∪ halo nodes plus the local↔global id
//!   maps, persisted in a binary format extending `mqo_data::persist`
//!   so a worker loads only its shard.
//! * [`Router`] — a std-only HTTP front ([`router`]) that routes
//!   classify traffic by node ownership, fans out batches spanning
//!   shards, tracks per-shard health (eject on consecutive failures,
//!   re-admit on probe), and relays the cross-shard pseudo-label
//!   exchange: workers push boundary-node pseudo-labels to
//!   `POST /v1/labels`, the router forwards each to the shards owning
//!   the node's neighbors, and the receiving worker ingests them so the
//!   γ₁/γ₂ readiness rule sees remote cues.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod partition;
pub mod ring;
pub mod router;

pub use bundle::{extract_shard, ShardBundle, ShardIdentity};
pub use partition::{partition, PartitionStrategy, ShardMap, ShardMapError, ShardStats};
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
