//! The bounded response cache: LRU eviction + round-based invalidation.
//!
//! Correctness rule for the MQO pipeline: a completion cached during
//! boosting round *k* must not be served in round *k+1*, because the label
//! store (and therefore the pseudo-label context a fresh render would
//! carry) may have changed between rounds. Fingerprints already make a
//! *re-rendered* prompt miss; the **epoch** closes the remaining hole —
//! identical prompt text whose surrounding knowledge state moved on. Each
//! entry remembers the epoch it was inserted at; [`ResponseCache::get`]
//! treats entries from an older epoch as stale (dropped and counted, never
//! returned), and [`ResponseCache::advance_epoch`] bumps the epoch — the
//! boosting loop does so at every round boundary via [`RoundInvalidator`].
//!
//! Eviction is classic LRU over an intrusive doubly-linked list threaded
//! through the entry map, so `get`/`insert` are O(1) and the scan-free
//! bound holds at any capacity.

use crate::fingerprint::Fingerprint;
use mqo_obs::{Event, EventSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone counters describing cache behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that found nothing servable (includes stale drops).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped because their epoch predated the current round.
    pub stale_drops: u64,
}

struct Entry<V> {
    value: V,
    epoch: u64,
    prev: Option<Fingerprint>,
    next: Option<Fingerprint>,
}

/// The LRU list + map state guarded by one mutex.
struct Inner<V> {
    map: HashMap<u64, Entry<V>>,
    head: Option<Fingerprint>,
    tail: Option<Fingerprint>,
}

impl<V> Inner<V> {
    fn unlink(&mut self, fp: Fingerprint) {
        let (prev, next) = {
            let e = self.map.get(&fp.0).expect("unlink of resident entry");
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.map.get_mut(&p.0).expect("prev resident").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.map.get_mut(&n.0).expect("next resident").prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, fp: Fingerprint) {
        let old_head = self.head;
        {
            let e = self.map.get_mut(&fp.0).expect("push of resident entry");
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.map.get_mut(&h.0).expect("head resident").prev = Some(fp);
        }
        self.head = Some(fp);
        if self.tail.is_none() {
            self.tail = Some(fp);
        }
    }
}

/// A thread-safe, LRU-bounded, epoch-invalidated response cache.
///
/// Generic over the cached value so this crate stays independent of the
/// LLM client types; `mqo-llm`'s `CachedLlm` instantiates it with
/// completions. A capacity of **zero disables the cache** (every lookup
/// misses, nothing is stored) — callers use that for `--no-cache` without
/// changing their wiring.
pub struct ResponseCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_drops: AtomicU64,
}

impl<V: Clone> ResponseCache<V> {
    /// Cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Inner { map: HashMap::new(), head: None, tail: None }),
            capacity,
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
        }
    }

    /// Whether the cache can store anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries (stale entries count until they are looked up or
    /// evicted — invalidation is lazy).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current invalidation epoch (boosting round boundary counter).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidate every entry inserted before now: entries from earlier
    /// epochs are dropped (and counted as stale) on their next lookup.
    /// Called at every boosting round boundary.
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Look `fp` up, refreshing its recency on a hit.
    pub fn get(&self, fp: Fingerprint) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        match inner.map.get(&fp.0) {
            Some(e) if e.epoch == epoch => {
                let value = e.value.clone();
                inner.unlink(fp);
                inner.push_front(fp);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                // Stale: cached under an older round's knowledge state.
                inner.unlink(fp);
                inner.map.remove(&fp.0);
                drop(inner);
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `fp → value` at the current epoch, evicting the
    /// least-recently-used entry if the bound is exceeded.
    pub fn insert(&self, fp: Fingerprint, value: V) {
        if self.capacity == 0 {
            return;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&fp.0) {
            inner.unlink(fp);
            let e = inner.map.get_mut(&fp.0).expect("resident");
            e.value = value;
            e.epoch = epoch;
            inner.push_front(fp);
            return;
        }
        inner.map.insert(fp.0, Entry { value, epoch, prev: None, next: None });
        inner.push_front(fp);
        if inner.map.len() > self.capacity {
            let victim = inner.tail.expect("over-capacity cache has a tail");
            inner.unlink(victim);
            inner.map.remove(&victim.0);
            drop(inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
        }
    }
}

/// An event-sink adapter that advances the cache epoch whenever a boosting
/// round completes, so round-based invalidation rides the telemetry stream
/// the boosting loop already emits instead of a bespoke callback.
pub struct RoundInvalidator<V> {
    cache: Arc<ResponseCache<V>>,
}

impl<V: Clone> RoundInvalidator<V> {
    /// Invalidate `cache` on every [`Event::RoundCompleted`].
    pub fn new(cache: Arc<ResponseCache<V>>) -> Self {
        RoundInvalidator { cache }
    }
}

impl<V: Clone + Send + Sync> EventSink for RoundInvalidator<V> {
    fn emit(&self, event: &Event) {
        if matches!(event, Event::RoundCompleted { .. }) {
            self.cache.advance_epoch();
        }
    }

    /// The invalidator consumes round boundaries but records nothing, so
    /// it must not make emitters render optional extra detail (e.g. the
    /// executor's hypothetical full-prompt cost attribution).
    fn observing(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn fp(s: &str) -> Fingerprint {
        fingerprint("m", s)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ResponseCache::new(4);
        assert_eq!(c.get(fp("a")), None);
        c.insert(fp("a"), 1);
        assert_eq!(c.get(fp("a")), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_follows_lru_order_exactly() {
        // Insert a, b, c into a 3-entry cache; touch a so b becomes LRU;
        // inserting d must evict b (not a, the older-but-refreshed entry),
        // and inserting e must then evict c.
        let c = ResponseCache::new(3);
        c.insert(fp("a"), 1);
        c.insert(fp("b"), 2);
        c.insert(fp("c"), 3);
        assert_eq!(c.get(fp("a")), Some(1), "refresh a's recency");
        c.insert(fp("d"), 4);
        assert_eq!(c.get(fp("b")), None, "b was least recently used");
        assert_eq!(c.get(fp("a")), Some(1));
        c.insert(fp("e"), 5);
        assert_eq!(c.get(fp("c")), None, "c was next in LRU order");
        assert_eq!(c.get(fp("d")), Some(4));
        assert_eq!(c.get(fp("e")), Some(5));
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let c = ResponseCache::new(2);
        c.insert(fp("a"), 1);
        c.insert(fp("b"), 2);
        c.insert(fp("a"), 10); // refresh, not a new entry
        assert_eq!(c.len(), 2);
        c.insert(fp("x"), 3); // evicts b, the true LRU
        assert_eq!(c.get(fp("b")), None);
        assert_eq!(c.get(fp("a")), Some(10));
    }

    #[test]
    fn advance_epoch_invalidates_everything_resident() {
        let c = ResponseCache::new(4);
        c.insert(fp("a"), 1);
        c.insert(fp("b"), 2);
        c.advance_epoch();
        assert_eq!(c.get(fp("a")), None, "pre-round entry must not serve");
        assert_eq!(c.get(fp("b")), None);
        let s = c.stats();
        assert_eq!(s.stale_drops, 2);
        assert_eq!(s.hits, 0);
        // Entries inserted after the bump serve normally.
        c.insert(fp("a"), 9);
        assert_eq!(c.get(fp("a")), Some(9));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = ResponseCache::new(0);
        assert!(!c.enabled());
        c.insert(fp("a"), 1);
        assert_eq!(c.get(fp("a")), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn round_invalidator_listens_for_round_events_only() {
        let cache = Arc::new(ResponseCache::new(4));
        cache.insert(fp("a"), 1);
        let inv = RoundInvalidator::new(cache.clone());
        inv.emit(&Event::WorkerThroughput { worker: 0, queries: 1, wall_micros: 1 });
        assert_eq!(cache.get(fp("a")), Some(1), "unrelated events do not invalidate");
        inv.emit(&Event::RoundCompleted {
            round: 0,
            executed: 1,
            gamma1: 3,
            gamma2: 2,
            pseudo_label_uses: 0,
        });
        assert_eq!(cache.get(fp("a")), None, "round boundary invalidates");
        assert_eq!(cache.epoch(), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c = Arc::new(ResponseCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..500u32 {
                        let key = fp(&format!("k{}", (i + t) % 80));
                        if c.get(key).is_none() {
                            c.insert(key, i);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 2000);
        assert!(c.len() <= 64);
    }
}
