//! # mqo-cache — black-box prompt caching and prefix accounting
//!
//! The paper's strategies cut tokens *inside* each prompt; this crate cuts
//! tokens *across* prompts, on the client side of the black-box boundary,
//! where a serving deployment amortizes repeated and overlapping traffic:
//!
//! * [`mod@fingerprint`] — canonical prompt identity: a 64-bit FNV-1a hash of
//!   `(model profile name, rendered prompt)`. Two requests with the same
//!   fingerprint are the same request for caching purposes.
//! * [`ResponseCache`] — a bounded LRU response cache with explicit
//!   **round-based invalidation**: [`ResponseCache::advance_epoch`] marks
//!   every existing entry stale, so prompts rendered before a boosting
//!   round folded in new pseudo-labels are never served from cache after
//!   it. (Content-addressed fingerprints already make a *re-rendered*
//!   prompt miss; the epoch guards the identical-text-across-rounds case.)
//! * [`PrefixStore`] — a radix-style trie over rendered prompt *segments*
//!   measuring how many leading tokens each prompt shares with traffic
//!   already seen: the reuse a white-box prefix cache (vLLM/Hydragen-style)
//!   would realize. Reported, not exploited — the black box hides its KV
//!   cache — so the number quantifies what composes with this crate's
//!   whole-response cache rather than replacing it.
//! * [`common_prefix_bytes`] / [`common_prefix_tokens`] — the shared
//!   prefix-length helpers the analysis benches use; the token variant is
//!   exact for the workspace tokenizer (a partial trailing subword is not
//!   counted, since a serving cache could not reuse it).
//! * [`RoundInvalidator`] — an [`mqo_obs::EventSink`] adapter that calls
//!   [`ResponseCache::advance_epoch`] whenever a boosting round completes,
//!   so invalidation wires through the existing telemetry stream instead
//!   of a bespoke callback channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod lru;
pub mod prefix;

pub use fingerprint::{fingerprint, Fingerprint};
pub use lru::{CacheStats, ResponseCache, RoundInvalidator};
pub use prefix::{
    common_prefix_bytes, common_prefix_tokens, segment_paragraphs, PrefixReuse, PrefixStore,
};
