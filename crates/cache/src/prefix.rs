//! Shared-prefix accounting: how much of each prompt a prefix-reusing
//! serving cache could skip.
//!
//! Two measurement tools live here:
//!
//! * [`common_prefix_bytes`] / [`common_prefix_tokens`] — pairwise prefix
//!   length between two rendered prompts. The token variant reports what a
//!   serving cache would actually save: tokens are the unit the KV cache
//!   stores, and a *partial* trailing subword is not reusable, so it is
//!   excluded (exact for the workspace tokenizer, not an estimate).
//! * [`PrefixStore`] — a radix-style trie over prompt *segments* (target
//!   block / neighbor blocks / task block). Observing prompts in serving
//!   order yields, per prompt, the leading tokens already present in the
//!   trie: the **realized** reuse of a radix prompt cache under that
//!   traffic, as opposed to the theoretical pairwise numbers.
//!
//! Segmenting at structural boundaries rather than characters keeps the
//! trie small and mirrors how radix serving caches (vLLM prefix caching,
//! SGLang RadixAttention) match whole cached blocks.

use mqo_token::Tokenizer;
use std::collections::HashMap;

/// Byte length of the common prefix of `a` and `b` (whole chars only, so
/// the result always lies on a UTF-8 boundary of both).
pub fn common_prefix_bytes(a: &str, b: &str) -> usize {
    let mut len = 0usize;
    for (ca, cb) in a.chars().zip(b.chars()) {
        if ca != cb {
            break;
        }
        len += ca.len_utf8();
    }
    len
}

/// Number of whole tokens shared between the tokenizations of `a` and `b`
/// at their common prefix.
///
/// This is exact for [`mqo_token::Tokenizer`]: a word is chunked into
/// 4-char subwords left to right, so every complete chunk inside the
/// common prefix tokenizes identically in both strings, while a partial
/// final chunk of a word that *continues* in either string becomes a
/// different token there and is therefore not reusable.
pub fn common_prefix_tokens(a: &str, b: &str) -> usize {
    let n = common_prefix_bytes(a, b);
    let p = &a[..n];
    let mut tokens = Tokenizer.count(p);
    let continues_word = |s: &str| s[n..].chars().next().is_some_and(|c| c.is_alphanumeric());
    let trailing_word_chars = p.chars().rev().take_while(|c| c.is_alphanumeric()).count();
    if trailing_word_chars > 0
        && trailing_word_chars % 4 != 0
        && (continues_word(a) || continues_word(b))
    {
        // The final subword chunk is partial and the word goes on: the
        // longer string tokenizes that chunk differently.
        tokens -= 1;
    }
    tokens
}

/// Split a rendered prompt into paragraph segments (blank-line separated).
///
/// Whitespace is token-free under the workspace tokenizer, so the token
/// counts of the segments sum exactly to the whole prompt's count. Callers
/// with structural knowledge of the prompt (e.g. `mqo-llm`, which knows
/// the neighbor-block markers) should segment more finely themselves and
/// use [`PrefixStore::observe_segments`].
pub fn segment_paragraphs(prompt: &str) -> Vec<&str> {
    prompt.split("\n\n").filter(|s| !s.is_empty()).collect()
}

/// What one observed prompt shared with the traffic before it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixReuse {
    /// Tokens in the leading segments already present in the store — what
    /// a radix cache would have reused for this prompt.
    pub reused_tokens: usize,
    /// Leading segments that matched.
    pub reused_segments: usize,
    /// Tokens across all of this prompt's segments.
    pub total_tokens: usize,
    /// Segments in this prompt.
    pub total_segments: usize,
}

#[derive(Default)]
struct Node {
    children: HashMap<u64, Node>,
}

/// Memoized segment token counts, keyed by segment fingerprint.
///
/// Serving traffic re-observes the same structural segments (the target
/// block of a replayed node, shared neighbor blocks, the task block on
/// every single prompt) over and over; counting is O(len) per segment,
/// so the store pays tokenization once per *distinct* segment instead of
/// once per observation. The key is the same fingerprint the trie edge
/// uses, so hits cost one hash lookup and no extra hashing.
#[derive(Default)]
struct TokenCountCache {
    counts: HashMap<u64, usize>,
    hits: u64,
    misses: u64,
}

impl TokenCountCache {
    /// Token count of `seg` whose fingerprint is `key`.
    fn count(&mut self, key: u64, seg: &str) -> usize {
        match self.counts.get(&key) {
            Some(&n) => {
                self.hits += 1;
                n
            }
            None => {
                self.misses += 1;
                let n = Tokenizer.count(seg);
                self.counts.insert(key, n);
                n
            }
        }
    }
}

/// A radix-style trie over prompt segments, accumulating realized
/// prefix-reuse statistics across the traffic it observes.
#[derive(Default)]
pub struct PrefixStore {
    root: Node,
    token_counts: TokenCountCache,
    prompts: usize,
    reused_tokens: u64,
    total_tokens: u64,
}

impl PrefixStore {
    /// Empty store.
    pub fn new() -> Self {
        PrefixStore::default()
    }

    /// Observe one prompt (paragraph segmentation) in serving order.
    pub fn observe(&mut self, prompt: &str) -> PrefixReuse {
        self.observe_segments(&segment_paragraphs(prompt))
    }

    /// Observe one prompt pre-split into structural segments: returns the
    /// reuse this prompt realized and records its segments for later
    /// traffic.
    pub fn observe_segments(&mut self, segments: &[&str]) -> PrefixReuse {
        let mut reuse = PrefixReuse { total_segments: segments.len(), ..Default::default() };
        let mut node = &mut self.root;
        let mut matching = true;
        for seg in segments {
            let key = crate::fingerprint::fingerprint("", seg).0;
            let tokens = self.token_counts.count(key, seg);
            reuse.total_tokens += tokens;
            if matching && node.children.contains_key(&key) {
                reuse.reused_tokens += tokens;
                reuse.reused_segments += 1;
            } else {
                matching = false;
            }
            node = node.children.entry(key).or_default();
        }
        self.prompts += 1;
        self.reused_tokens += reuse.reused_tokens as u64;
        self.total_tokens += reuse.total_tokens as u64;
        reuse
    }

    /// Prompts observed so far.
    pub fn prompts(&self) -> usize {
        self.prompts
    }

    /// Total leading tokens the observed traffic could have reused.
    pub fn reused_tokens(&self) -> u64 {
        self.reused_tokens
    }

    /// Total tokens across all observed prompts.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Realized reuse fraction over everything observed (0.0 when empty).
    pub fn reuse_fraction(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.reused_tokens as f64 / self.total_tokens as f64
        }
    }

    /// Token-count memo effectiveness: `(hits, misses)`. A miss
    /// tokenizes the segment (O(len)); a hit is one hash lookup. Misses
    /// equal the number of distinct segments observed.
    pub fn token_count_cache_stats(&self) -> (u64, u64) {
        (self.token_counts.hits, self.token_counts.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_prefix_respects_char_boundaries() {
        assert_eq!(common_prefix_bytes("abc", "abd"), 2);
        assert_eq!(common_prefix_bytes("", "x"), 0);
        assert_eq!(common_prefix_bytes("same", "same"), 4);
        // 'é' is 2 bytes; a divergent char contributes nothing partial.
        assert_eq!(common_prefix_bytes("café", "cafè"), 3);
    }

    #[test]
    fn token_prefix_matches_shared_tokenization_exactly() {
        // Brute-force oracle: longest common prefix of the two token
        // streams, where word tokens are compared as (chunk text) values.
        fn oracle(a: &str, b: &str) -> usize {
            let ta = Tokenizer.tokenize(a);
            let tb = Tokenizer.tokenize(b);
            ta.iter().zip(&tb).take_while(|(x, y)| x == y).count()
        }
        let cases = [
            ("Title: graph databases", "Title: graph algorithms"),
            ("databases", "datab"),    // word continues in one string
            ("database", "databases"), // 8 chars = aligned chunk boundary
            ("data", "data"),          // identical
            ("a, b", "a, c"),          // punctuation boundary
            ("Target paper: Title: x\nAbstract: y", "Target paper: Title: x\nAbstract: z"),
            ("", "anything"),
            ("word", "work"), // diverge inside a chunk
        ];
        for (a, b) in cases {
            assert_eq!(common_prefix_tokens(a, b), oracle(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn token_prefix_is_symmetric() {
        let a = "Target paper: Title: graph neural networks";
        let b = "Target paper: Title: graph transformers";
        assert_eq!(common_prefix_tokens(a, b), common_prefix_tokens(b, a));
    }

    #[test]
    fn paragraph_segments_cover_the_prompt_token_exactly() {
        let prompt = "Target paper: Title: t\nAbstract: a\n\nTask:\nCategories:\n[A, B]";
        let segs = segment_paragraphs(prompt);
        assert_eq!(segs.len(), 2);
        let sum: usize = segs.iter().map(|s| Tokenizer.count(s)).sum();
        assert_eq!(sum, Tokenizer.count(prompt), "whitespace separators are token-free");
    }

    #[test]
    fn store_reuses_leading_segments_only() {
        let mut store = PrefixStore::new();
        let first = store.observe_segments(&["SYS", "task A", "body A"]);
        assert_eq!(first.reused_tokens, 0);
        assert_eq!(first.total_segments, 3);

        // Same system preamble + task header, new body: two segments reused.
        let second = store.observe_segments(&["SYS", "task A", "body B"]);
        assert_eq!(second.reused_segments, 2);
        assert_eq!(second.reused_tokens, Tokenizer.count("SYS") + Tokenizer.count("task A"));

        // Divergence at the first segment blocks deeper reuse even if a
        // later segment exists somewhere in the trie (prefix semantics).
        let third = store.observe_segments(&["OTHER", "task A", "body A"]);
        assert_eq!(third.reused_segments, 0);
        assert_eq!(third.reused_tokens, 0);

        assert_eq!(store.prompts(), 3);
        assert!(store.reuse_fraction() > 0.0 && store.reuse_fraction() < 1.0);
    }

    #[test]
    fn token_counts_are_memoized_per_distinct_segment() {
        let mut store = PrefixStore::new();
        store.observe_segments(&["SYS", "task A", "body A"]);
        store.observe_segments(&["SYS", "task A", "body B"]);
        store.observe_segments(&["SYS", "task A", "body A"]);
        // 9 observations over 4 distinct segments: 4 misses, 5 hits.
        let (hits, misses) = store.token_count_cache_stats();
        assert_eq!(misses, 4, "one tokenization per distinct segment");
        assert_eq!(hits, 5, "repeat observations hit the memo");
    }

    #[test]
    fn memoized_counts_match_direct_tokenization() {
        // The memo must be invisible in the numbers: reuse accounting
        // with the cache equals what direct counting would produce.
        let mut store = PrefixStore::new();
        let segs = ["Target paper: Title: t", "Neighbor Paper0: n", "Task: classify"];
        store.observe_segments(&segs);
        let again = store.observe_segments(&segs);
        let direct: usize = segs.iter().map(|s| Tokenizer.count(s)).sum();
        assert_eq!(again.total_tokens, direct);
        assert_eq!(again.reused_tokens, direct);
        assert_eq!(store.total_tokens(), 2 * direct as u64);
    }

    #[test]
    fn identical_prompt_reuses_everything() {
        let mut store = PrefixStore::new();
        let p = "Target paper: Title: t\nAbstract: a\n\nTask:\nCategories:\n[A]";
        store.observe(p);
        let again = store.observe(p);
        assert_eq!(again.reused_tokens, again.total_tokens);
        assert_eq!(again.reused_segments, again.total_segments);
    }
}
