//! Canonical prompt identity.
//!
//! A response cache must never conflate two requests that could answer
//! differently. For a black-box client the answer is a function of
//! `(model, rendered prompt)` — sampling noise aside, which the simulated
//! models seed from the prompt itself — so the fingerprint hashes exactly
//! those two, with a separator that makes `("ab", "c")` and `("a", "bc")`
//! distinct.

/// A 64-bit canonical identity for one `(model, prompt)` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of one request: FNV-1a over the model profile name, a NUL
/// separator (impossible inside either string's meaningful content), and
/// the rendered prompt.
pub fn fingerprint(model: &str, prompt: &str) -> Fingerprint {
    let h = fnv1a(FNV_OFFSET, model.as_bytes());
    let h = fnv1a(h, &[0u8]);
    Fingerprint(fnv1a(h, prompt.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishes_inputs() {
        assert_eq!(fingerprint("m", "p"), fingerprint("m", "p"));
        assert_ne!(fingerprint("m", "p"), fingerprint("m", "q"));
        assert_ne!(fingerprint("m", "p"), fingerprint("n", "p"));
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        assert_ne!(fingerprint("ab", "c"), fingerprint("a", "bc"));
        assert_ne!(fingerprint("", "abc"), fingerprint("abc", ""));
    }

    #[test]
    fn spreads_over_similar_prompts() {
        // Structurally similar prompts (the MQO workload) must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let p = format!("Target paper: Title: paper {i}\nAbstract: text\n");
            assert!(seen.insert(fingerprint("gpt-3.5-turbo-0125", &p)), "collision at {i}");
        }
    }
}
