//! Class-conditioned document generation.
//!
//! A node's text is sampled word by word from a three-way mixture:
//!
//! * with probability `informativeness` — a word from the node's *own*
//!   class vocabulary (discriminative signal);
//! * with probability `(1 − informativeness) · cross_noise` — a word from a
//!   *different* class's vocabulary (misleading signal; this is what makes
//!   neighbor text able to *hurt*, reproducing the Pubmed/Arxiv endpoint
//!   inversion in Fig. 7);
//! * otherwise — a shared filler word.
//!
//! Zipf-like rank weighting inside each vocabulary gives the corpus a
//! realistic skewed frequency profile, which matters for the TF-IDF
//! encoder (`mqo-encoder`) and for the tokenizer's subword statistics.

use crate::lexicon::Lexicon;
use mqo_graph::ClassId;
use rand::Rng;

/// Shape parameters for one document (title + body lengths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocumentSpec {
    /// Words in the title.
    pub title_words: usize,
    /// Words in the body (abstract / description).
    pub body_words: usize,
    /// Probability that a non-class word is *cross-class* noise rather than
    /// shared filler, in `[0, 1]`.
    pub cross_noise: f64,
    /// Zipf skew exponent for within-vocabulary rank weighting (0 = uniform).
    pub zipf_s: f64,
}

impl Default for DocumentSpec {
    fn default() -> Self {
        DocumentSpec { title_words: 9, body_words: 120, cross_noise: 0.25, zipf_s: 1.05 }
    }
}

/// Stateless sampler binding a [`Lexicon`] to a [`DocumentSpec`].
#[derive(Debug, Clone)]
pub struct TextSampler<'a> {
    lexicon: &'a Lexicon,
    spec: DocumentSpec,
    /// Cumulative Zipf weights over ranks `0..per_class`, shared across
    /// classes (precomputed once; sampling is a binary search).
    zipf_cdf: Vec<f64>,
}

impl<'a> TextSampler<'a> {
    /// Build a sampler; precomputes the Zipf CDF for the class vocabularies.
    pub fn new(lexicon: &'a Lexicon, spec: DocumentSpec) -> Self {
        let n = lexicon.class_size() as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(spec.zipf_s);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for w in &mut cdf {
            *w /= total;
        }
        TextSampler { lexicon, spec, zipf_cdf: cdf }
    }

    /// The lexicon this sampler draws from.
    pub fn lexicon(&self) -> &Lexicon {
        self.lexicon
    }

    /// The document shape.
    pub fn spec(&self) -> &DocumentSpec {
        &self.spec
    }

    fn zipf_rank<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        match self.zipf_cdf.binary_search_by(|w| w.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => (i as u32).min(self.lexicon.class_size() - 1),
        }
    }

    /// Sample one word id for a node of class `class` with the given
    /// informativeness.
    pub fn sample_word<R: Rng>(
        &self,
        class: ClassId,
        informativeness: f64,
        rng: &mut R,
    ) -> u32 {
        let u: f64 = rng.gen();
        if u < informativeness {
            self.lexicon.class_id(class.0, self.zipf_rank(rng))
        } else if rng.gen::<f64>() < self.spec.cross_noise && self.lexicon.num_classes() > 1 {
            // Uniform over the other classes.
            let k = self.lexicon.num_classes();
            let mut other = rng.gen_range(0..k - 1);
            if other >= class.0 {
                other += 1;
            }
            self.lexicon.class_id(other, self.zipf_rank(rng))
        } else {
            self.lexicon.shared_id(rng.gen_range(0..self.lexicon.shared_size()))
        }
    }

    fn sample_text<R: Rng>(
        &self,
        class: ClassId,
        informativeness: f64,
        words: usize,
        rng: &mut R,
    ) -> String {
        let mut s = String::with_capacity(words * 7);
        for i in 0..words {
            if i > 0 {
                s.push(' ');
            }
            let id = self.sample_word(class, informativeness, rng);
            s.push_str(&self.lexicon.word(id));
        }
        s
    }

    /// Sample a title for a node of `class` with the given informativeness.
    pub fn sample_title<R: Rng>(
        &self,
        class: ClassId,
        informativeness: f64,
        rng: &mut R,
    ) -> String {
        self.sample_text(class, informativeness, self.spec.title_words, rng)
    }

    /// Sample a body (abstract / description).
    pub fn sample_body<R: Rng>(
        &self,
        class: ClassId,
        informativeness: f64,
        rng: &mut R,
    ) -> String {
        self.sample_text(class, informativeness, self.spec.body_words, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::WordKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Lexicon, DocumentSpec) {
        (Lexicon::new(7, 4, 50, 500), DocumentSpec::default())
    }

    fn class_fraction(lex: &Lexicon, text: &str, class: u16) -> f64 {
        let words: Vec<&str> = text.split_whitespace().collect();
        let own = words
            .iter()
            .filter(|w| lex.kind_of_word(w) == Some(WordKind::Class(class)))
            .count();
        own as f64 / words.len() as f64
    }

    #[test]
    fn title_and_body_lengths_match_spec() {
        let (lex, spec) = fixture();
        let s = TextSampler::new(&lex, spec);
        let mut rng = StdRng::seed_from_u64(1);
        let t = s.sample_title(ClassId(0), 0.5, &mut rng);
        let b = s.sample_body(ClassId(0), 0.5, &mut rng);
        assert_eq!(t.split_whitespace().count(), spec.title_words);
        assert_eq!(b.split_whitespace().count(), spec.body_words);
    }

    #[test]
    fn high_informativeness_yields_mostly_class_words() {
        let (lex, spec) = fixture();
        let s = TextSampler::new(&lex, spec);
        let mut rng = StdRng::seed_from_u64(2);
        let b = s.sample_body(ClassId(2), 0.9, &mut rng);
        assert!(class_fraction(&lex, &b, 2) > 0.75);
    }

    #[test]
    fn zero_informativeness_yields_no_own_class_words() {
        let (lex, spec) = fixture();
        let s = TextSampler::new(&lex, spec);
        let mut rng = StdRng::seed_from_u64(3);
        let b = s.sample_body(ClassId(1), 0.0, &mut rng);
        assert_eq!(class_fraction(&lex, &b, 1), 0.0);
    }

    #[test]
    fn cross_noise_produces_other_class_words() {
        let (lex, _) = fixture();
        let spec = DocumentSpec { cross_noise: 1.0, ..DocumentSpec::default() };
        let s = TextSampler::new(&lex, spec);
        let mut rng = StdRng::seed_from_u64(4);
        let b = s.sample_body(ClassId(0), 0.0, &mut rng);
        let other = b
            .split_whitespace()
            .filter(|w| matches!(lex.kind_of_word(w), Some(WordKind::Class(c)) if c != 0))
            .count();
        assert!(other as f64 / spec.body_words as f64 > 0.9);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let (lex, spec) = fixture();
        let s = TextSampler::new(&lex, spec);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; lex.class_size() as usize];
        for _ in 0..5000 {
            let id = s.sample_word(ClassId(0), 1.0, &mut rng);
            counts[(id - lex.class_id(0, 0)) as usize] += 1;
        }
        let head: usize = counts[..5].iter().sum();
        let tail: usize = counts[counts.len() - 5..].iter().sum();
        assert!(head > tail * 3, "head {head} not dominant over tail {tail}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (lex, spec) = fixture();
        let s = TextSampler::new(&lex, spec);
        let a = s.sample_body(ClassId(1), 0.6, &mut StdRng::seed_from_u64(11));
        let b = s.sample_body(ClassId(1), 0.6, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
