//! Seeded pseudo-word lexicon with an injective, decodable encoding.
//!
//! Word ids are laid out as:
//!
//! ```text
//! [0, shared)                         shared (non-discriminative) words
//! [shared + c·per_class, … + per_class)   class-c discriminative words
//! ```
//!
//! A word's surface form is its id written in base-`C·V` where each digit is
//! a consonant–vowel syllable; the per-seed shuffle of the consonant and
//! vowel tables changes surface forms without breaking injectivity, and the
//! inverse tables make decoding exact.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const CONSONANTS: &[u8; 16] = b"bdfgklmnprstvzjh";

/// What role a word plays in the generative language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordKind {
    /// A shared filler word carrying no class signal.
    Shared,
    /// A link-marker word: carries no class signal, but appears in the
    /// texts of *both* endpoints of specific edges (the "citing papers
    /// quote each other's terms" phenomenon link prediction exploits).
    Marker,
    /// A discriminative word owned by class `c` (dense class index).
    Class(u16),
}

/// The lexicon: sizes plus the seeded syllable permutation.
///
/// Word-id layout: `[0, shared)` shared filler, `[shared, shared + markers)`
/// link markers, then `per_class` discriminative words per class.
#[derive(Debug, Clone)]
pub struct Lexicon {
    seed: u64,
    shared: u32,
    markers: u32,
    per_class: u32,
    num_classes: u16,
    consonants: [u8; 16],
    vowels: [u8; 4],
    /// Inverse lookup: ASCII byte -> consonant digit (or 0xFF).
    inv_consonant: [u8; 256],
    /// Inverse lookup: ASCII byte -> vowel digit (or 0xFF).
    inv_vowel: [u8; 256],
}

impl Lexicon {
    /// Create a lexicon without a marker segment. See
    /// [`Lexicon::with_markers`].
    pub fn new(seed: u64, num_classes: u16, per_class: u32, shared: u32) -> Self {
        Self::with_markers(seed, num_classes, per_class, shared, 0)
    }

    /// Create a lexicon with `shared` filler words, `markers` link-marker
    /// words, and `per_class` discriminative words for each of
    /// `num_classes` classes. `seed` permutes the syllable tables so
    /// corpora from different seeds share no surface forms by accident of
    /// table order.
    pub fn with_markers(
        seed: u64,
        num_classes: u16,
        per_class: u32,
        shared: u32,
        markers: u32,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec7_0a11_dead_beef);
        let mut consonants = *CONSONANTS;
        let mut vowels = [b'a', b'e', b'i', b'o'];
        consonants.shuffle(&mut rng);
        vowels.shuffle(&mut rng);
        let mut inv_consonant = [0xFFu8; 256];
        let mut inv_vowel = [0xFFu8; 256];
        for (i, &c) in consonants.iter().enumerate() {
            inv_consonant[c as usize] = i as u8;
        }
        for (i, &v) in vowels.iter().enumerate() {
            inv_vowel[v as usize] = i as u8;
        }
        Lexicon {
            seed,
            shared,
            markers,
            per_class,
            num_classes,
            consonants,
            vowels,
            inv_consonant,
            inv_vowel,
        }
    }

    /// The seed this lexicon was built from (with
    /// [`Lexicon::with_markers`]'s other parameters, this fully
    /// reconstructs the lexicon — the basis of dataset persistence).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shared words.
    pub fn shared_size(&self) -> u32 {
        self.shared
    }

    /// Number of link-marker words.
    pub fn marker_size(&self) -> u32 {
        self.markers
    }

    /// Number of discriminative words per class.
    pub fn class_size(&self) -> u32 {
        self.per_class
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u16 {
        self.num_classes
    }

    /// Total number of word ids.
    pub fn total_words(&self) -> u32 {
        self.shared + self.markers + self.per_class * self.num_classes as u32
    }

    /// Word id of the `i`-th shared word.
    pub fn shared_id(&self, i: u32) -> u32 {
        debug_assert!(i < self.shared);
        i
    }

    /// Word id of the `i`-th link-marker word.
    pub fn marker_id(&self, i: u32) -> u32 {
        debug_assert!(i < self.markers);
        self.shared + i
    }

    /// Word id of the `i`-th discriminative word of class `c`.
    pub fn class_id(&self, c: u16, i: u32) -> u32 {
        debug_assert!(c < self.num_classes && i < self.per_class);
        self.shared + self.markers + c as u32 * self.per_class + i
    }

    /// Classify a word id.
    pub fn kind_of(&self, id: u32) -> Option<WordKind> {
        if id < self.shared {
            Some(WordKind::Shared)
        } else if id < self.shared + self.markers {
            Some(WordKind::Marker)
        } else {
            let rel = id - self.shared - self.markers;
            let c = rel / self.per_class;
            if c < self.num_classes as u32 {
                Some(WordKind::Class(c as u16))
            } else {
                None
            }
        }
    }

    /// Surface form of word `id`: base-64 syllables (consonant + vowel),
    /// least-significant syllable first, always at least two syllables so
    /// words look like words ("tibo", "rakedu", …).
    pub fn word(&self, id: u32) -> String {
        let mut s = String::with_capacity(8);
        let mut rest = id as u64;
        let base = 64u64; // 16 consonants × 4 vowels
        let mut syllables = 0;
        loop {
            let digit = (rest % base) as usize;
            rest /= base;
            s.push(self.consonants[digit / 4] as char);
            s.push(self.vowels[digit % 4] as char);
            syllables += 1;
            if rest == 0 && syllables >= 2 {
                break;
            }
        }
        s
    }

    /// Decode a surface form back to its word id. Returns `None` for
    /// strings not produced by [`Lexicon::word`] (wrong alphabet, odd
    /// length, out-of-range id). Punctuation should be stripped by the
    /// caller's tokenizer first.
    pub fn decode(&self, word: &str) -> Option<u32> {
        let bytes = word.as_bytes();
        if bytes.len() < 4 || !bytes.len().is_multiple_of(2) {
            return None;
        }
        let mut id: u64 = 0;
        // Most-significant syllable is last; walk pairs in reverse.
        for pair in bytes.chunks_exact(2).rev() {
            let c = self.inv_consonant[pair[0] as usize];
            let v = self.inv_vowel[pair[1] as usize];
            if c == 0xFF || v == 0xFF {
                return None;
            }
            id = id * 64 + (c as u64 * 4 + v as u64);
            if id > u32::MAX as u64 {
                return None;
            }
        }
        let id = id as u32;
        if id < self.total_words() {
            Some(id)
        } else {
            None
        }
    }

    /// Decode + classify in one call: the primary entry point for the
    /// simulated LLM's prompt reader.
    pub fn kind_of_word(&self, word: &str) -> Option<WordKind> {
        self.decode(word).and_then(|id| self.kind_of(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicon {
        Lexicon::new(42, 5, 100, 1000)
    }

    #[test]
    fn layout_sizes() {
        let l = lex();
        assert_eq!(l.total_words(), 1500);
        assert_eq!(l.shared_id(0), 0);
        assert_eq!(l.class_id(0, 0), 1000);
        assert_eq!(l.class_id(4, 99), 1499);
    }

    #[test]
    fn kinds() {
        let l = lex();
        assert_eq!(l.kind_of(999), Some(WordKind::Shared));
        assert_eq!(l.kind_of(1000), Some(WordKind::Class(0)));
        assert_eq!(l.kind_of(1499), Some(WordKind::Class(4)));
        assert_eq!(l.kind_of(1500), None);
    }

    #[test]
    fn words_roundtrip_for_all_ids() {
        let l = lex();
        for id in 0..l.total_words() {
            let w = l.word(id);
            assert_eq!(l.decode(&w), Some(id), "word {w} failed to roundtrip");
        }
    }

    #[test]
    fn words_are_distinct() {
        let l = lex();
        let mut seen = std::collections::HashSet::new();
        for id in 0..l.total_words() {
            assert!(seen.insert(l.word(id)), "duplicate surface form for id {id}");
        }
    }

    #[test]
    fn words_look_pronounceable() {
        let l = lex();
        for id in [0, 63, 64, 4095, 4096] {
            let w = l.word(id);
            assert!(w.len() >= 4 && w.len().is_multiple_of(2));
            assert!(w.is_ascii());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let l = lex();
        assert_eq!(l.decode(""), None);
        assert_eq!(l.decode("x"), None);
        assert_eq!(l.decode("the"), None);
        assert_eq!(l.decode("Category"), None);
        assert_eq!(l.decode("ab1c"), None);
    }

    #[test]
    fn different_seeds_different_surfaces() {
        let a = Lexicon::new(1, 2, 10, 10);
        let b = Lexicon::new(2, 2, 10, 10);
        // Not all ids need differ, but the table shuffle should change most.
        let differing = (0..30).filter(|&id| a.word(id) != b.word(id)).count();
        assert!(differing > 10, "seed had no effect on surface forms");
    }

    #[test]
    fn marker_segment_sits_between_shared_and_class_words() {
        let l = Lexicon::with_markers(3, 2, 50, 100, 30);
        assert_eq!(l.total_words(), 100 + 30 + 100);
        assert_eq!(l.kind_of(99), Some(WordKind::Shared));
        assert_eq!(l.kind_of(l.marker_id(0)), Some(WordKind::Marker));
        assert_eq!(l.kind_of(l.marker_id(29)), Some(WordKind::Marker));
        assert_eq!(l.kind_of(130), Some(WordKind::Class(0)));
        // Marker words still roundtrip through the surface encoding.
        let w = l.word(l.marker_id(7));
        assert_eq!(l.kind_of_word(&w), Some(WordKind::Marker));
    }

    #[test]
    fn zero_marker_lexicon_matches_legacy_layout() {
        let a = Lexicon::new(42, 5, 100, 1000);
        let b = Lexicon::with_markers(42, 5, 100, 1000, 0);
        assert_eq!(a.total_words(), b.total_words());
        assert_eq!(a.class_id(2, 5), b.class_id(2, 5));
    }

    #[test]
    fn kind_of_word_end_to_end() {
        let l = lex();
        let w = l.word(l.class_id(3, 7));
        assert_eq!(l.kind_of_word(&w), Some(WordKind::Class(3)));
        let s = l.word(l.shared_id(12));
        assert_eq!(l.kind_of_word(&s), Some(WordKind::Shared));
    }
}
