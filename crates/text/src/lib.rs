//! # mqo-text — synthetic language substrate
//!
//! The paper runs on five real text-attributed-graph datasets whose node
//! texts (paper titles/abstracts, product descriptions) we cannot download
//! in this environment. This crate provides the replacement: a *generative
//! synthetic language* whose statistical structure carries exactly the
//! signal the paper's experiments depend on —
//!
//! * every class owns a vocabulary of discriminative pseudo-words;
//! * a large shared vocabulary provides non-discriminative filler;
//! * each node's text is a mixture whose class-vocabulary weight is the
//!   node's latent *text informativeness* (the knob that creates the
//!   saturated / non-saturated split of Definition 2 in the paper).
//!
//! Words are produced by an **injective, decodable encoding** from word ids
//! to pronounceable strings ([`Lexicon::word`] / [`Lexicon::decode`]), so
//! downstream consumers (the simulated LLM, the feature encoders) can map a
//! surface form back to its id in O(len) without any dictionary, while the
//! per-seed syllable permutation still makes different corpora look
//! different.
//!
//! Nothing in this crate reads ambient entropy; all sampling goes through a
//! caller-provided `Rng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod lexicon;

pub use document::{DocumentSpec, TextSampler};
pub use lexicon::{Lexicon, WordKind};
