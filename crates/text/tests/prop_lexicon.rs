//! Property tests for the lexicon's injective decodable encoding and the
//! document sampler's statistical contracts.

use mqo_graph::ClassId;
use mqo_text::{DocumentSpec, Lexicon, TextSampler, WordKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every id in range round-trips through its surface form, for any
    /// seed and layout.
    #[test]
    fn word_roundtrip(
        seed in any::<u64>(),
        classes in 1u16..12,
        per_class in 1u32..200,
        shared in 0u32..500,
        markers in 0u32..200,
        probe in any::<u32>(),
    ) {
        let lex = Lexicon::with_markers(seed, classes, per_class, shared, markers);
        let id = probe % lex.total_words().max(1);
        let w = lex.word(id);
        prop_assert_eq!(lex.decode(&w), Some(id));
        prop_assert!(lex.kind_of(id).is_some());
    }

    /// Kind boundaries partition the id space exactly.
    #[test]
    fn kinds_partition_the_space(
        seed in any::<u64>(),
        classes in 1u16..8,
        per_class in 1u32..100,
        shared in 0u32..300,
        markers in 0u32..100,
    ) {
        let lex = Lexicon::with_markers(seed, classes, per_class, shared, markers);
        let (mut s, mut m, mut c) = (0u32, 0u32, 0u32);
        for id in 0..lex.total_words() {
            match lex.kind_of(id) {
                Some(WordKind::Shared) => s += 1,
                Some(WordKind::Marker) => m += 1,
                Some(WordKind::Class(_)) => c += 1,
                None => prop_assert!(false, "id {} unclassified", id),
            }
        }
        prop_assert_eq!(s, shared);
        prop_assert_eq!(m, markers);
        prop_assert_eq!(c, per_class * classes as u32);
        prop_assert_eq!(lex.kind_of(lex.total_words()), None);
    }

    /// Sampled documents contain only words from the lexicon, and the
    /// own-class fraction grows with informativeness.
    #[test]
    fn documents_come_from_the_lexicon(
        seed in any::<u64>(),
        class in 0u16..4,
        alpha in 0.0f64..0.95,
    ) {
        let lex = Lexicon::with_markers(7, 4, 80, 400, 0);
        let sampler = TextSampler::new(&lex, DocumentSpec {
            title_words: 6, body_words: 40, cross_noise: 0.2, zipf_s: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let body = sampler.sample_body(ClassId(class), alpha, &mut rng);
        for w in body.split_whitespace() {
            prop_assert!(lex.kind_of_word(w).is_some(), "alien word {}", w);
        }
    }
}
