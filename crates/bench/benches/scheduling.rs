//! Query-scheduling cost: the boosting scheduler recounts neighbor-label
//! support for every pending query each round; this measures that loop at
//! the paper's scale (1,000 queries, 50 rounds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mqo_core::boosting::pseudo_label_utilization;
use mqo_core::LabelStore;
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scheduler(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(1.0), 1);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 1000 },
        &mut StdRng::seed_from_u64(1),
    )
    .unwrap();
    let labels = LabelStore::from_split(tag, &split);
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    for scheduled in [false, true] {
        let name = if scheduled { "with_scheduling" } else { "without_scheduling" };
        group.bench_function(format!("{name}_1000q_50rounds"), |b| {
            b.iter(|| {
                black_box(pseudo_label_utilization(
                    tag,
                    &labels,
                    split.queries(),
                    2,
                    10,
                    50,
                    scheduled,
                    7,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
