//! Simulated-LLM latency: the per-completion cost bounds how fast the
//! experiment harness can replay the paper's 1,000-query workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mqo_core::predictor::{KhopRandom, Predictor, SelectCtx};
use mqo_core::{Executor, LabelStore};
use mqo_data::{dataset, DatasetId};
use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_complete(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(0.5), 1);
    let tag = &bundle.tag;
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let labels = LabelStore::empty(tag.num_nodes());
    let exec = Executor::new(tag, &llm, 4, 1);
    let predictor = KhopRandom::new(1, tag.num_nodes());
    let ctx = SelectCtx { tag, labels: &labels, max_neighbors: 4 };
    let mut rng = StdRng::seed_from_u64(2);
    let v = mqo_graph::NodeId(3);
    let neighbors = predictor.select_neighbors(&ctx, v, &mut rng);
    let entries: Vec<_> = neighbors.iter().map(|&n| predictor.entry_for(&ctx, n)).collect();
    let t = tag.text(v);
    let prompt = mqo_llm::NodePromptSpec {
        title: &t.title,
        abstract_text: &t.body,
        neighbors: &entries,
        categories: tag.class_names(),
        ranked: false,
    }
    .render();

    c.bench_function("simllm_complete_one_prompt", |b| {
        b.iter(|| black_box(llm.complete(black_box(&prompt)).unwrap()))
    });

    let labels = LabelStore::empty(tag.num_nodes());
    let queries: Vec<mqo_graph::NodeId> = (0..100u32).map(mqo_graph::NodeId).collect();
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    group.bench_function("run_100_queries_1hop", |b| {
        b.iter(|| black_box(exec.run_all(&predictor, &labels, &queries, |_| false).unwrap()))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("run_100_queries_1hop_{threads}threads"), |b| {
            b.iter(|| {
                black_box(
                    mqo_core::parallel::run_all_parallel(
                        &exec,
                        &predictor,
                        &labels,
                        &queries,
                        |_| false,
                        threads,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_complete);
criterion_main!(benches);
