//! Tokenizer throughput: counting is on the hot path of budget
//! enforcement (every prompt is counted before dispatch).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mqo_data::{dataset, DatasetId};
use mqo_llm::{NeighborEntry, NodePromptSpec};
use mqo_token::Tokenizer;

fn bench_count(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(0.5), 1);
    let tag = &bundle.tag;
    let t0 = tag.text(mqo_graph::NodeId(0));
    let neighbors: Vec<NeighborEntry> = (1..5)
        .map(|i| NeighborEntry {
            title: tag.text(mqo_graph::NodeId(i)).title.clone(),
            label: Some("Theory".into()),
        })
        .collect();
    let prompt = NodePromptSpec {
        title: &t0.title,
        abstract_text: &t0.body,
        neighbors: &neighbors,
        categories: tag.class_names(),
        ranked: false,
    }
    .render();

    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Bytes(prompt.len() as u64));
    group.bench_function("count_full_prompt", |b| {
        b.iter(|| black_box(Tokenizer.count(black_box(&prompt))))
    });
    group.bench_function("tokenize_full_prompt", |b| {
        b.iter(|| black_box(Tokenizer.tokenize(black_box(&prompt)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_count);
criterion_main!(benches);
