//! Text-inadequacy scoring throughput: D(t_i) must be cheap relative to
//! an LLM call, since it runs once per query before any dispatch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::{Executor, InadequacyScorer};
use mqo_data::{dataset, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLlm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scoring(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(0.5), 1);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 300 },
        &mut StdRng::seed_from_u64(1),
    )
    .unwrap();
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let exec = Executor::new(tag, &llm, 4, 1);
    let scorer =
        InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(1), 10, 2).unwrap();

    c.bench_function("inadequacy_score_300_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &v in split.queries() {
                acc += scorer.score(tag, v);
            }
            black_box(acc)
        })
    });
    c.bench_function("inadequacy_rank_300_queries", |b| {
        b.iter(|| black_box(scorer.rank_ascending(tag, split.queries())))
    });
}

fn bench_training(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(0.4), 1);
    let tag = &bundle.tag;
    let split = LabeledSplit::generate(
        tag,
        SplitConfig::PerClass { per_class: 20, num_queries: 100 },
        &mut StdRng::seed_from_u64(1),
    )
    .unwrap();
    let llm =
        SimLlm::new(bundle.lexicon.clone(), tag.class_names().to_vec(), ModelProfile::gpt35());
    let exec = Executor::new(tag, &llm, 4, 1);
    let mut group = c.benchmark_group("scorer_build");
    group.sample_size(10);
    group.bench_function("surrogate_cv_plus_calibration", |b| {
        b.iter(|| {
            black_box(
                InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(1), 10, 2)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scoring, bench_training);
criterion_main!(benches);
