//! Micro-benchmarks of the graph substrate hot paths: CSR construction,
//! edge tests, and the k-hop BFS that neighbor selection runs per query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mqo_data::{dataset, DatasetId};
use mqo_graph::traversal::{khop_nodes, KhopBuffer};
use mqo_graph::{GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 20_000u32;
    let edges: Vec<(u32, u32)> =
        (0..100_000).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
    c.bench_function("csr_build_100k_edges", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(n as usize, edges.len());
            for &(u, v) in &edges {
                builder.add_edge(u, v).unwrap();
            }
            black_box(builder.build())
        })
    });
}

fn bench_khop(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Cora, Some(1.0), 1);
    let g = bundle.tag.graph();
    let mut buf = KhopBuffer::new(g.num_nodes());
    let mut out = Vec::new();
    let nodes: Vec<NodeId> = (0..g.num_nodes() as u32).step_by(7).map(NodeId).collect();
    for k in [1u8, 2, 3] {
        c.bench_function(format!("khop_bfs_cora_k{k}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &v in &nodes {
                    khop_nodes(g, v, k, &mut buf, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
}

fn bench_edge_tests(c: &mut Criterion) {
    let bundle = dataset(DatasetId::Pubmed, Some(0.5), 1);
    let g = bundle.tag.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let n = g.num_nodes() as u32;
    let pairs: Vec<(NodeId, NodeId)> = (0..10_000)
        .map(|_| (NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n))))
        .collect();
    c.bench_function("has_edge_10k_lookups", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &pairs {
                hits += usize::from(g.has_edge(u, v));
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench_build, bench_khop, bench_edge_tests);
criterion_main!(benches);
