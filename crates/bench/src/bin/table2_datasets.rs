//! Table II: dataset statistics — paper values (from the specs) next to
//! the measured statistics of the generated stand-ins.

use mqo_bench::harness::{scale_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_data::{dataset, DatasetId};
use mqo_graph::stats;
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for id in DatasetId::ALL {
        let spec = id.spec();
        let scale = scale_for(id);
        let bundle = dataset(id, Some(scale), SEED);
        let summary = stats::summarize(&bundle.tag);
        rows.push(vec![
            spec.name.to_string(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            spec.num_classes().to_string(),
            format!("{scale:.3}"),
            summary.nodes.to_string(),
            summary.edges.to_string(),
            format!("{:.3}", summary.homophily),
            format!("{:.1}", summary.mean_degree),
            format!("{:.0}", summary.mean_text_words),
        ]);
        artifacts.push(json!({
            "dataset": spec.name,
            "paper": {"nodes": spec.nodes, "edges": spec.edges, "classes": spec.num_classes()},
            "generated": {
                "scale": scale,
                "nodes": summary.nodes,
                "edges": summary.edges,
                "homophily": summary.homophily,
                "mean_degree": summary.mean_degree,
                "mean_text_words": summary.mean_text_words,
            },
        }));
    }
    print_table(
        "Table II — dataset statistics (paper spec vs generated)",
        &[
            "dataset",
            "paper #nodes",
            "paper #edges",
            "#classes",
            "scale",
            "gen #nodes",
            "gen #edges",
            "homophily",
            "mean deg",
            "text words",
        ],
        &rows,
    );
    write_json("table2_datasets", &json!(artifacts));
}
