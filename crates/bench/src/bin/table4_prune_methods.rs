//! Table IV (Q1): classification accuracy of three benchmark methods with
//! and without the token pruning strategy (top 20% by text inadequacy),
//! across all five datasets.

use mqo_bench::harness::{m_for, num_queries, setup, surrogate_for, SEED};
use mqo_bench::report::{delta_pct, print_table, write_json};
use mqo_core::predictor::{KhopRandom, Predictor, Sns};
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

/// Paper's Table IV (GPT-3.5): (method, [cora, citeseer, pubmed, arxiv, products]) pairs.
const PAPER: [(&str, [f64; 5], [f64; 5]); 3] = [
    ("1-hop random", [72.3, 64.1, 87.4, 71.8, 83.7], [72.5, 63.9, 88.9, 72.4, 83.4]),
    ("2-hop random", [72.0, 64.8, 88.8, 72.6, 83.5], [71.9, 64.5, 89.1, 72.9, 83.0]),
    ("SNS", [74.8, 69.3, 89.3, 71.5, 84.3], [74.4, 68.5, 88.8, 71.8, 84.0]),
];

fn main() {
    let tau = 0.2;
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let mut measured: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3]; // per method, per dataset

    for (d, id) in DatasetId::ALL.into_iter().enumerate() {
        eprintln!("[table4] {} ({} queries)…", id.name(), num_queries());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let plan = PrunePlan::by_inadequacy(&scorer, tag, ctx.split.queries(), tau);

        let methods: Vec<Box<dyn Predictor>> = vec![
            Box::new(KhopRandom::new(1, tag.num_nodes())),
            Box::new(KhopRandom::new(2, tag.num_nodes())),
            Box::new(Sns::fit(tag)),
        ];
        for (mi, method) in methods.iter().enumerate() {
            let base =
                exec.run_all(method.as_ref(), &labels, ctx.split.queries(), |_| false).unwrap();
            let pruned =
                run_with_pruning(&exec, method.as_ref(), &labels, ctx.split.queries(), &plan)
                    .unwrap();
            measured[mi].push((base.accuracy(), pruned.accuracy()));
            artifacts.push(json!({
                "dataset": id.name(),
                "method": method.name(),
                "tau": tau,
                "accuracy_base": base.accuracy() * 100.0,
                "accuracy_pruned": pruned.accuracy() * 100.0,
                "paper_base": PAPER[mi].1[d],
                "paper_pruned": PAPER[mi].2[d],
                "prompt_tokens_base": base.prompt_tokens(),
                "prompt_tokens_pruned": pruned.prompt_tokens(),
            }));
        }
    }

    let names = ["1-hop random", "2-hop random", "SNS"];
    for (mi, name) in names.iter().enumerate() {
        let cells = |f: fn(&(f64, f64)) -> f64| -> Vec<String> {
            measured[mi].iter().map(|p| format!("{:.1}", f(p) * 100.0)).collect()
        };
        let mut base_row = vec![name.to_string()];
        base_row.extend(cells(|p| p.0));
        rows.push(base_row);
        let mut prune_row = vec!["  w/ token prune".to_string()];
        prune_row.extend(cells(|p| p.1));
        rows.push(prune_row);
        let mut delta_row = vec!["  Δ%".to_string()];
        delta_row.extend(measured[mi].iter().map(|&(b, p)| delta_pct(p, b)));
        rows.push(delta_row);
        let mut paper_row = vec!["  (paper Δ%)".to_string()];
        paper_row.extend((0..5).map(|d| delta_pct(PAPER[mi].2[d], PAPER[mi].1[d])));
        rows.push(paper_row);
    }
    print_table(
        "Table IV — accuracy (%) with vs without token pruning (top 20% pruned)",
        &["method", "cora", "citeseer", "pubmed", "ogbn-arxiv", "ogbn-products"],
        &rows,
    );
    println!("\nExpected shape: Δ% stays negligible (|Δ| of a couple of percent or less),");
    println!("i.e. pruning 20% of queries' neighbor text does not degrade accuracy.");
    write_json("table4_prune_methods", &json!(artifacts));
}
