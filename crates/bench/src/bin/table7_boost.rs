//! Table VII (Q6): classification accuracy with vs without the query
//! boosting strategy, for three methods × three small datasets × two
//! models (GPT-4o-mini and GPT-3.5 profiles), M = 4, γ1 = 3, γ2 = 2.

use mqo_bench::harness::{setup, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::predictor::{KhopRandom, Predictor, Sns};
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

/// Paper Table VII baselines/boosted, GPT-3.5 block:
/// rows = methods, cols = cora/citeseer/pubmed.
const PAPER_35: [(&str, [f64; 3], [f64; 3]); 3] = [
    ("1-hop random", [72.3, 64.1, 87.4], [72.8, 65.3, 87.9]),
    ("2-hop random", [72.0, 64.8, 88.8], [74.2, 67.3, 89.4]),
    ("SNS", [74.8, 69.3, 89.3], [76.3, 70.6, 90.3]),
];

fn main() {
    let boost = BoostConfig { gamma1: 3, gamma2: 2 };
    let mut artifacts = Vec::new();
    for profile in [ModelProfile::gpt4o_mini(), ModelProfile::gpt35()] {
        let mut rows = Vec::new();
        let method_names = ["1-hop random", "2-hop random", "SNS"];
        let mut measured = [[(0.0f64, 0.0f64); 3]; 3];
        for (d, id) in DatasetId::SMALL.into_iter().enumerate() {
            eprintln!("[table7] {} × {}…", id.name(), profile.name);
            let ctx = setup(id, profile.clone());
            let tag = &ctx.bundle.tag;
            let exec = Executor::new(tag, &ctx.llm, 4, SEED);
            let methods: Vec<Box<dyn Predictor>> = vec![
                Box::new(KhopRandom::new(1, tag.num_nodes())),
                Box::new(KhopRandom::new(2, tag.num_nodes())),
                Box::new(Sns::fit(tag)),
            ];
            for (mi, method) in methods.iter().enumerate() {
                let labels = LabelStore::from_split(tag, &ctx.split);
                let base = exec
                    .run_all(method.as_ref(), &labels, ctx.split.queries(), |_| false)
                    .unwrap();
                let mut boost_labels = LabelStore::from_split(tag, &ctx.split);
                let (boosted, _) = run_with_boosting(
                    &exec,
                    method.as_ref(),
                    &mut boost_labels,
                    ctx.split.queries(),
                    boost,
                    &PrunePlan::default(),
                )
                .unwrap();
                measured[mi][d] = (base.accuracy(), boosted.accuracy());
                artifacts.push(json!({
                    "model": profile.name,
                    "dataset": id.name(),
                    "method": method.name(),
                    "accuracy_base": base.accuracy() * 100.0,
                    "accuracy_boosted": boosted.accuracy() * 100.0,
                    "pseudo_label_uses": boosted.pseudo_label_uses(),
                }));
            }
        }
        for (mi, per_ds) in measured.iter().enumerate() {
            let mut base_row = vec![method_names[mi].to_string()];
            base_row.extend(per_ds.iter().map(|(b, _)| format!("{:.1}", b * 100.0)));
            if profile.name.contains("3.5") {
                base_row.push(format!("paper: {:?}", PAPER_35[mi].1));
            }
            rows.push(base_row);
            let mut boost_row = vec!["  w/ query boost".to_string()];
            boost_row.extend(
                per_ds
                    .iter()
                    .map(|(b, q)| format!("{:.1}{}", q * 100.0, if q > b { "↑" } else { "" })),
            );
            if profile.name.contains("3.5") {
                boost_row.push(format!("paper: {:?}", PAPER_35[mi].2));
            }
            rows.push(boost_row);
        }
        print_table(
            &format!("Table VII — query boosting, {} (M=4, γ1=3, γ2=2)", profile.name),
            &["method", "cora", "citeseer", "pubmed", ""],
            &rows,
        );
    }
    println!("\nExpected shape: boosting lifts accuracy in nearly every cell, more for");
    println!("2-hop than 1-hop (more query associations → more pseudo-label slots).");
    write_json("table7_boost", &json!(artifacts));
}
