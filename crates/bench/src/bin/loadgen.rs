//! `loadgen` — deterministic load generator for `mqo serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT | --addr-file FILE
//!         [--requests N] [--concurrency C] [--batch B] [--node-max N]
//!         [--seed S] [--tenant T] [--mode closed|open] [--rate R]
//!         [--warmup W] [--trace-id HEX] [--out FILE] [--merge-into FILE]
//!         [--drain] [--malformed]
//! ```
//!
//! Each worker thread holds one **keep-alive connection** for its whole
//! run (reconnecting if the server closes it), so the harness measures
//! request service time, not TCP setup. Two driving disciplines:
//!
//! * **closed** (default) — C workers each fire the next request the
//!   moment the previous response lands. Measures service capacity;
//!   latency excludes client-side queueing.
//! * **open** — requests depart on a fixed schedule (`--rate` per
//!   second, shared across workers) regardless of completion, and
//!   latency is measured from the *scheduled* departure so server-side
//!   queueing shows up in the tail (avoids coordinated omission).
//!   Pacing sleeps until just before each deadline and spins only the
//!   final sliver, so the waiting client does not burn a core that
//!   competes with the server under test.
//!
//! `--warmup W` sends W extra requests (request indices `0..W`) before
//! the measured window and discards their samples; all workers cross a
//! barrier between the phases, so the measured wall clock contains only
//! measured requests. Node choices derive from `(--seed, request
//! index)` — not from per-thread state — so a given seed produces the
//! same request multiset regardless of how threads race to claim work.
//! That is what lets a resumed server replay a repeated burst entirely
//! from its journal. `--node-max 0` (default) discovers the node range
//! from `GET /v1/stats`.
//!
//! Summary JSON (rps, p50/p90/p99/p99.9/max/mean ms, status counts)
//! goes to stdout and `--out`; `--merge-into` folds the serving metrics
//! into an existing stats JSON, which is how the bench baseline
//! acquires `serve_*` fields for the CI gate; `--drain` requests a
//! graceful drain once the burst completes.
//!
//! Every response's `x-mqo-trace-id` header is captured per sample, the
//! summary lists the 5 slowest requests with their trace ids (paste one
//! into `GET /v1/debug/flight` to see where the time went server-side),
//! and `--trace-id HEX` stamps a caller-supplied id on every request —
//! the smoke-test hook proving ids round-trip through the server.
//!
//! `--malformed` runs a framing-abuse probe instead of a load run: it
//! sends requests with conflicting duplicate `Content-Length` headers,
//! truncated header blocks, and header floods, expects a `400` for
//! each, and then verifies the server still answers `/v1/healthz` —
//! the smoke-test hook proving malformed framing is rejected without
//! taking the server down.
//!
//! `--overload` calibrates sustainable throughput closed-loop, then
//! offers a multiple of it (`--overload-factor`, default 5×) open-loop
//! and reports admitted-vs-offered goodput, shed rate, and the
//! degraded-response rate — self-gating on admitted p99
//! (`--slo-p99-ms`) and on every shed response carrying a well-formed
//! computed `Retry-After`. `--deadline-ms` stamps an `x-mqo-deadline-ms`
//! header on every request in any mode.
//!
//! `--router --shard-map FILE` targets a `mqo route` front instead of a
//! single worker. Node picks still derive from `(seed, request index)`
//! but range over the **whole global id space** (the shard map's node
//! count), so multi-node batches routinely straddle shard boundaries
//! and exercise the router's fan-out/reassembly path. The summary then
//! carries per-shard node-pick counts (attributed through the loaded
//! map — the same ownership function the router uses), the number of
//! batches that spanned more than one shard, and the cluster's peak
//! worker RSS scraped from the router's aggregated `/v1/stats`;
//! `--merge-into` folds `routed_serve_rps`, `routed_p99_ms`, and
//! `peak_rss_mb` into the stats JSON for the bench gate.

use mqo_obs::httpd::HttpClient;
use mqo_obs::{http_get, http_post};
use mqo_shard::ShardMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         loadgen --addr HOST:PORT | --addr-file FILE\n          \
         [--requests N] [--concurrency C] [--batch B] [--node-max N]\n          \
         [--seed S] [--tenant T] [--mode closed|open] [--rate R]\n          \
         [--warmup W] [--trace-id HEX] [--deadline-ms MS] [--out FILE]\n          \
         [--merge-into FILE] [--drain] [--malformed]\n          \
         [--overload] [--overload-factor F] [--cal-requests N] [--slo-p99-ms MS]\n          \
         [--router --shard-map FILE]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if name == "drain" || name == "malformed" || name == "overload" || name == "router"
            {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            eprintln!("error: unexpected positional argument {:?}", args[i]);
            i += 1;
        }
    }
    flags
}

/// One request's outcome, tagged with when it (nominally) departed.
struct Sample {
    latency: Duration,
    status: u16,
    /// The server's `x-mqo-trace-id` response header (empty on
    /// transport failure) — the key into `GET /v1/debug/flight`.
    trace: String,
    /// Whether the server answered under brown-out (`"degraded": true`).
    degraded: bool,
    /// The `Retry-After` header of a shed response, if any.
    retry_after: Option<u64>,
}

fn status_code(status_line: &str) -> u16 {
    status_line.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// How long before a deadline [`pace_until`] switches from sleeping to
/// spinning. Sleeps undershoot by scheduler latency (typically well under
/// this), so the spin window stays short while departures stay precise.
const SPIN_SLIVER: Duration = Duration::from_micros(200);

/// Wait until `deadline`: sleep for the bulk of the wait, spin only the
/// final sliver. (The previous pacing loop slept in 1ms polls — a
/// busy-ish wait that burned a core competing with the server under
/// test on the bench box.)
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_SLIVER {
            std::thread::sleep(remaining - SPIN_SLIVER);
        } else {
            std::hint::spin_loop();
        }
    }
}

#[derive(Clone)]
struct Plan {
    addr: SocketAddr,
    requests: usize,
    warmup: usize,
    concurrency: usize,
    batch: usize,
    node_max: usize,
    seed: u64,
    tenant: String,
    open_loop: bool,
    rate: f64,
    /// Caller-supplied trace id stamped on every request (`--trace-id`).
    trace_id: Option<String>,
    /// Per-request deadline stamped as `x-mqo-deadline-ms`.
    deadline_ms: Option<u64>,
}

impl Plan {
    /// The one extra header a request carries: a caller-supplied trace
    /// id wins; otherwise the per-request deadline, if any.
    fn extra_header(&self) -> Option<(&str, String)> {
        if let Some(t) = &self.trace_id {
            return Some(("x-mqo-trace-id", t.clone()));
        }
        self.deadline_ms.map(|ms| ("x-mqo-deadline-ms", ms.to_string()))
    }
}

/// The nodes request `k` names. The RNG is keyed by `(seed, k)` alone
/// so the request multiset for a seed is scheduling-independent:
/// whichever thread claims request `k`, it sends the same nodes. The
/// router-mode summary recomputes these picks offline to attribute each
/// to its owning shard.
fn node_picks(k: usize, plan: &Plan) -> Vec<usize> {
    let mix = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k as u64 + 1);
    let mut rng = StdRng::seed_from_u64(plan.seed ^ mix);
    (0..plan.batch).map(|_| rng.gen_range(0..plan.node_max)).collect()
}

/// Body for request `k` (see [`node_picks`] for determinism).
fn build_body(k: usize, plan: &Plan) -> String {
    let picks = node_picks(k, plan);
    if plan.batch == 1 {
        format!("{{\"node\": {}, \"tenant\": \"{}\"}}", picks[0], plan.tenant)
    } else {
        let nodes: Vec<String> = picks.iter().map(usize::to_string).collect();
        format!("{{\"nodes\": [{}], \"tenant\": \"{}\"}}", nodes.join(", "), plan.tenant)
    }
}

/// POST over the worker's persistent connection, returning the status
/// and the response's trace id. A transport error gets one retry — the
/// client reconnects transparently — because a keep-alive peer may close
/// an idle connection between our read of its response and our next
/// write.
fn post_classify(
    client: &mut HttpClient,
    body: &str,
    extra_header: Option<(&str, &str)>,
) -> (u16, String, bool, Option<u64>) {
    for attempt in 0..2 {
        let result = match extra_header {
            Some((name, value)) => client.post_with_header("/v1/classify", body, (name, value)),
            None => client.post("/v1/classify", body),
        };
        match result {
            Ok((status_line, resp_body)) => {
                let trace =
                    client.last_header("x-mqo-trace-id").unwrap_or_default().to_string();
                let degraded = resp_body.contains("\"degraded\":true");
                let retry_after =
                    client.last_header("retry-after").and_then(|v| v.trim().parse().ok());
                return (status_code(&status_line), trace, degraded, retry_after);
            }
            Err(_) if attempt == 0 => {}
            Err(_) => break,
        }
    }
    (0, String::new(), false, None)
}

/// Fire requests and collect measured samples. Workers hold one
/// keep-alive connection each and race to claim request indices; warmup
/// requests (indices `0..warmup`) are sent and discarded before the
/// measured window opens at a barrier. In open-loop mode measured
/// request `k` departs at `epoch + (k - warmup)/rate`.
fn drive(plan: Arc<Plan>) -> (Vec<Sample>, Duration) {
    let warm_next = Arc::new(AtomicUsize::new(0));
    let next = Arc::new(AtomicUsize::new(plan.warmup));
    // Workers + this thread: everyone meets between warmup and measure.
    let barrier = Arc::new(Barrier::new(plan.concurrency + 1));
    // The measured epoch is set by whichever thread exits the barrier
    // first; all pacing and the wall clock share it.
    let epoch: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    let mut handles = Vec::new();
    for _ in 0..plan.concurrency {
        let plan = Arc::clone(&plan);
        let warm_next = Arc::clone(&warm_next);
        let next = Arc::clone(&next);
        let barrier = Arc::clone(&barrier);
        let epoch = Arc::clone(&epoch);
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(plan.addr).ok();
            let extra = plan.extra_header();
            let extra = extra.as_ref().map(|(n, v)| (*n, v.as_str()));
            let mut post = |body: &str| match &mut client {
                Some(c) => post_classify(c, body, extra),
                None => match HttpClient::connect(plan.addr) {
                    Ok(mut c) => {
                        let outcome = post_classify(&mut c, body, extra);
                        client = Some(c);
                        outcome
                    }
                    Err(_) => (0, String::new(), false, None),
                },
            };
            loop {
                let k = warm_next.fetch_add(1, Ordering::SeqCst);
                if k >= plan.warmup {
                    break;
                }
                let body = build_body(k, &plan);
                let _ = post(&body);
            }
            barrier.wait();
            let start = *epoch.get_or_init(Instant::now);
            let mut samples = Vec::new();
            loop {
                let k = next.fetch_add(1, Ordering::SeqCst);
                if k >= plan.warmup + plan.requests {
                    break;
                }
                let body = build_body(k, &plan);
                let departs = if plan.open_loop {
                    let scheduled =
                        Duration::from_secs_f64((k - plan.warmup) as f64 / plan.rate);
                    pace_until(start + scheduled);
                    start + scheduled
                } else {
                    Instant::now()
                };
                let (status, trace, degraded, retry_after) = post(&body);
                samples.push(Sample {
                    latency: departs.elapsed(),
                    status,
                    trace,
                    degraded,
                    retry_after,
                });
            }
            samples
        }));
    }
    barrier.wait();
    let start = *epoch.get_or_init(Instant::now);
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("load thread panicked"));
    }
    (samples, start.elapsed())
}

fn discover_node_max(addr: SocketAddr) -> Result<usize, String> {
    let (status, body) = http_get(addr, "/v1/stats")
        .map_err(|e| format!("cannot reach {addr}/v1/stats: {e}"))?;
    if !status.contains("200") {
        return Err(format!("/v1/stats returned {status}"));
    }
    let stats: serde_json::Value =
        serde_json::from_str(body.trim()).map_err(|e| format!("bad stats JSON: {e}"))?;
    stats
        .get("nodes")
        .and_then(|n| n.as_u64())
        .map(|n| n as usize)
        .ok_or_else(|| "stats JSON has no \"nodes\" field".to_string())
}

/// Best-effort scrape of the router's aggregated peak worker RSS (the
/// `max` across shard workers it computes in `/v1/stats`); 0 when the
/// router or field is unavailable — the bench gate treats a genuine
/// regression, not a scrape hiccup mid-drain, as the failure.
fn discover_peak_rss(addr: SocketAddr) -> u64 {
    let Ok((status, body)) = http_get(addr, "/v1/stats") else {
        return 0;
    };
    if !status.contains("200") {
        return 0;
    }
    serde_json::from_str(body.trim())
        .ok()
        .and_then(|v: serde_json::Value| v.get("peak_rss_mb").and_then(|n| n.as_u64()))
        .unwrap_or(0)
}

/// Fold serving metrics into an existing stats JSON (e.g. a bench
/// baseline), preserving every other key. The vendored `Map` is a
/// `BTreeMap`, so output stays canonically sorted for clean diffs.
fn merge_into(path: &str, entries: &[(&str, f64)]) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut doc: serde_json::Value =
        serde_json::from_str(raw.trim()).map_err(|e| format!("bad JSON in {path}: {e}"))?;
    let serde_json::Value::Object(map) = &mut doc else {
        return Err(format!("{path} is not a JSON object"));
    };
    for &(key, value) in entries {
        map.insert(key.into(), serde_json::json!(value));
    }
    let mut out = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    out.push('\n');
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

/// One framing-abuse probe: raw bytes on a fresh connection, optionally
/// half-closed (EOF mid-request), returning the response status (0 when
/// the server just dropped us).
fn raw_probe(addr: SocketAddr, raw: &[u8], half_close: bool) -> Result<u16, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream.write_all(raw).map_err(|e| format!("write: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    if half_close {
        stream.shutdown(Shutdown::Write).map_err(|e| format!("shutdown: {e}"))?;
    }
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf);
    Ok(text.lines().next().map_or(0, status_code))
}

/// The `--malformed` stage: framing-abuse probes that must each earn a
/// `400`, followed by a health check proving the server survived. Probes
/// run in-process (not shell `/dev/tcp` hacks) so smoke scripts get one
/// portable binary.
fn run_malformed(addr: SocketAddr, out: Option<&str>) -> Result<(), String> {
    let mut flood = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
    for i in 0..200 {
        flood.extend_from_slice(format!("X-Flood-{i}: value\r\n").as_bytes());
    }
    flood.extend_from_slice(b"\r\n");
    let probes: Vec<(&str, Vec<u8>, bool)> = vec![
        (
            "conflicting_content_length",
            b"POST /v1/classify HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\nhello"
                .to_vec(),
            false,
        ),
        (
            "truncated_headers",
            b"POST /v1/classify HTTP/1.1\r\nHost: x\r\nContent-Le".to_vec(),
            true,
        ),
        ("header_flood", flood, false),
    ];
    let mut results = Vec::new();
    let mut failed = false;
    for (name, raw, half_close) in probes {
        let status = raw_probe(addr, &raw, half_close)?;
        let pass = status == 400;
        failed |= !pass;
        results.push(serde_json::json!({"probe": name, "status": status, "pass": pass}));
    }
    // The point of rejecting malformed framing is that the server keeps
    // serving everyone else.
    let (health_status, _) = http_get(addr, "/v1/healthz")
        .map_err(|e| format!("server unreachable after malformed probes: {e}"))?;
    let alive = health_status.contains("200");
    failed |= !alive;
    results.push(serde_json::json!({
        "probe": "healthz_after_abuse",
        "status": status_code(&health_status),
        "pass": alive,
    }));
    // Every rejected connection must be visible in the error counter.
    // The increment happens in the handler thread after the 400 goes
    // out, so poll briefly.
    let want = 3u64;
    let mut errors_total = 0u64;
    for _ in 0..100 {
        let (_, text) = http_get(addr, "/metrics")
            .map_err(|e| format!("cannot scrape /metrics after probes: {e}"))?;
        errors_total = text
            .lines()
            .find_map(|l| l.strip_prefix("mqo_http_errors_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if errors_total >= want {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let counted = errors_total >= want;
    failed |= !counted;
    results.push(serde_json::json!({
        "probe": "errors_counted_in_metrics",
        "mqo_http_errors_total": errors_total,
        "pass": counted,
    }));
    let summary = serde_json::json!({"mode": "malformed", "probes": results});
    let mut text = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
    text.push('\n');
    if let Some(path) = out {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    print!("{text}");
    if failed {
        return Err("malformed-request probes failed".into());
    }
    Ok(())
}

/// The `--overload` stage: drive the server well past saturation and
/// check it degrades *gracefully* instead of falling over.
///
/// Phase 1 calibrates sustainable throughput with a short closed-loop
/// run. Phase 2 offers a multiple of that rate (`--overload-factor`,
/// default 5×) open-loop, so shedding is guaranteed. The report splits
/// offered load into admitted goodput, shed (429), drained (503),
/// deadline-expired (504), and transport errors, and measures the
/// degraded-response rate among admitted requests.
///
/// Self-gating checks (non-zero exit on violation):
/// * at least one request must be admitted — shedding everything is an
///   outage, not overload control;
/// * every `429` must carry a well-formed `Retry-After` in `[1, 30]`;
/// * with `--slo-p99-ms N`, admitted p99 must stay under N — admitted
///   work must still meet its SLO *while* the excess is refused.
fn run_overload(flags: &HashMap<String, String>, plan: Plan) -> Result<(), String> {
    let factor: f64 = flags
        .get("overload-factor")
        .map_or(Ok(5.0), |s| s.parse().map_err(|_| "bad --overload-factor"))?;
    if factor <= 1.0 {
        return Err("--overload-factor must be > 1".into());
    }
    let cal_requests: usize = flags
        .get("cal-requests")
        .map_or(Ok(32), |s| s.parse().map_err(|_| "bad --cal-requests"))?;

    // Phase 1: closed-loop calibration of sustainable throughput.
    let mut cal = plan.clone();
    cal.requests = cal_requests.max(plan.concurrency);
    cal.warmup = 0;
    cal.open_loop = false;
    let (cal_samples, cal_wall) = drive(Arc::new(cal));
    let cal_ok = cal_samples.iter().filter(|s| s.status == 200).count();
    if cal_ok == 0 {
        return Err("calibration run had no successful request".into());
    }
    let sustainable = cal_ok as f64 / cal_wall.as_secs_f64().max(1e-9);
    let rate = (sustainable * factor).max(10.0);
    println!(
        "calibration     : {cal_ok} ok in {:.2}s → {sustainable:.1} rps sustainable, \
         offering {rate:.1} rps ({factor:.1}×)",
        cal_wall.as_secs_f64(),
    );

    // Phase 2: open-loop burst past saturation.
    let mut burst = plan;
    burst.open_loop = true;
    burst.rate = rate;
    let slo_p99_ms: Option<f64> = flags
        .get("slo-p99-ms")
        .map(|s| s.parse().map_err(|_| "bad --slo-p99-ms"))
        .transpose()?;
    let addr = burst.addr;
    let (samples, wall) = drive(Arc::new(burst));

    let offered = samples.len();
    let mut ok = 0usize;
    let mut degraded_ok = 0usize;
    let mut shed = 0usize;
    let mut bad_shed = 0usize;
    let mut drained = 0usize;
    let mut deadline_expired = 0usize;
    let mut errors = 0usize;
    let mut ok_ms: Vec<f64> = Vec::new();
    for s in &samples {
        match s.status {
            200 => {
                ok += 1;
                if s.degraded {
                    degraded_ok += 1;
                }
                ok_ms.push(s.latency.as_secs_f64() * 1e3);
            }
            429 => {
                shed += 1;
                if !matches!(s.retry_after, Some(r) if (1..=30).contains(&r)) {
                    bad_shed += 1;
                }
            }
            503 => drained += 1,
            504 => deadline_expired += 1,
            _ => errors += 1,
        }
    }
    ok_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    let p50 = percentile(&ok_ms, 0.50);
    let p99 = percentile(&ok_ms, 0.99);
    let goodput = if wall.as_secs_f64() > 0.0 { ok as f64 / wall.as_secs_f64() } else { 0.0 };
    let shed_rate = if offered > 0 { (shed + drained) as f64 / offered as f64 } else { 0.0 };
    let degraded_rate = if ok > 0 { degraded_ok as f64 / ok as f64 } else { 0.0 };
    println!(
        "overload        : offered {offered} at {rate:.1} rps → {ok} admitted \
         ({goodput:.1} rps goodput), {shed} shed, {drained} drained, \
         {deadline_expired} past deadline, {errors} errors"
    );
    println!(
        "overload        : shed rate {:.1}%, degraded rate {:.1}%, admitted p99 {p99:.1} ms",
        100.0 * shed_rate,
        100.0 * degraded_rate,
    );

    let summary = serde_json::json!({
        "mode": "overload",
        "offered": offered,
        "offered_rate_rps": rate,
        "sustainable_rps": sustainable,
        "overload_factor": factor,
        "admitted": ok,
        "degraded": degraded_ok,
        "degraded_rate": degraded_rate,
        "shed_429": shed,
        "shed_without_valid_retry_after": bad_shed,
        "rejected_503": drained,
        "deadline_504": deadline_expired,
        "errors": errors,
        "shed_rate": shed_rate,
        "goodput_rps": goodput,
        "wall_s": wall.as_secs_f64(),
        "admitted_p50_ms": p50,
        "admitted_p99_ms": p99,
    });
    let mut text = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
    text.push('\n');
    print!("{text}");
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if flags.contains_key("drain") {
        let (status, _) = http_post(addr, "/v1/drain", "{}")
            .map_err(|e| format!("drain request failed: {e}"))?;
        if !status.contains("202") {
            return Err(format!("drain request refused: {status}"));
        }
    }

    if ok == 0 {
        return Err("overload run admitted nothing — that is an outage, not shedding".into());
    }
    if bad_shed > 0 {
        return Err(format!(
            "{bad_shed} shed response(s) lacked a well-formed Retry-After in [1, 30]"
        ));
    }
    if let Some(slo) = slo_p99_ms {
        if p99 > slo {
            return Err(format!(
                "admitted p99 {p99:.1} ms breaches --slo-p99-ms {slo:.1} under overload"
            ));
        }
    }
    Ok(())
}

fn run(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr_text = match (flags.get("addr"), flags.get("addr-file")) {
        (Some(a), _) => a.clone(),
        (None, Some(f)) => std::fs::read_to_string(f)
            .map_err(|e| format!("cannot read {f}: {e}"))?
            .trim()
            .to_string(),
        (None, None) => return Err("need --addr or --addr-file".into()),
    };
    let addr: SocketAddr =
        addr_text.parse().map_err(|_| format!("bad address {addr_text:?}"))?;
    if flags.contains_key("malformed") {
        return run_malformed(addr, flags.get("out").map(String::as_str));
    }
    let requests =
        flags.get("requests").map_or(Ok(100), |s| s.parse().map_err(|_| "bad --requests"))?;
    let warmup: usize =
        flags.get("warmup").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --warmup"))?;
    let concurrency: usize = flags
        .get("concurrency")
        .map_or(Ok(4), |s| s.parse().map_err(|_| "bad --concurrency"))?;
    let batch: usize =
        flags.get("batch").map_or(Ok(1), |s| s.parse().map_err(|_| "bad --batch"))?;
    let seed = flags.get("seed").map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
    let open_loop = match flags.get("mode").map(String::as_str) {
        None | Some("closed") => false,
        Some("open") => true,
        Some(other) => return Err(format!("bad --mode {other:?} (want closed|open)")),
    };
    let rate: f64 =
        flags.get("rate").map_or(Ok(50.0), |s| s.parse().map_err(|_| "bad --rate"))?;
    if open_loop && rate <= 0.0 {
        return Err("--rate must be positive in open-loop mode".into());
    }
    // Router mode: picks must range over the whole global id space so
    // batches straddle shard boundaries. The loaded map is the source of
    // truth for both the range and per-shard attribution.
    let shard_map = if flags.contains_key("router") {
        let path = flags
            .get("shard-map")
            .ok_or("--router needs --shard-map FILE for per-shard attribution")?;
        Some(ShardMap::load(path).map_err(|e| format!("cannot load shard map: {e}"))?)
    } else {
        None
    };
    let node_max = match flags
        .get("node-max")
        .map_or(Ok(0), |s| s.parse().map_err(|_| "bad --node-max"))?
    {
        0 => match &shard_map {
            Some(map) => map.num_nodes() as usize,
            None => discover_node_max(addr)?,
        },
        n => n,
    };
    if node_max == 0 {
        return Err("node range is empty".into());
    }
    if let Some(map) = &shard_map {
        if node_max > map.num_nodes() as usize {
            return Err(format!(
                "--node-max {node_max} exceeds the shard map's {} nodes",
                map.num_nodes()
            ));
        }
    }

    let plan = Plan {
        addr,
        requests,
        warmup,
        concurrency: concurrency.max(1),
        batch: batch.max(1),
        node_max,
        seed,
        tenant: flags.get("tenant").cloned().unwrap_or_else(|| "default".into()),
        open_loop,
        rate,
        trace_id: flags.get("trace-id").cloned(),
        deadline_ms: flags
            .get("deadline-ms")
            .map(|s| s.parse().map_err(|_| "bad --deadline-ms"))
            .transpose()?,
    };
    if flags.contains_key("overload") {
        return run_overload(flags, plan);
    }
    let plan = Arc::new(plan);
    let (samples, wall) = drive(Arc::clone(&plan));

    let mut ok = 0usize;
    let mut rejected = 0usize;
    let mut drained = 0usize;
    let mut errors = 0usize;
    let mut ok_ms: Vec<f64> = Vec::new();
    for s in &samples {
        match s.status {
            200 => {
                ok += 1;
                ok_ms.push(s.latency.as_secs_f64() * 1e3);
            }
            429 => rejected += 1,
            503 => drained += 1,
            _ => errors += 1,
        }
    }
    ok_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    let rps = if wall.as_secs_f64() > 0.0 { ok as f64 / wall.as_secs_f64() } else { 0.0 };
    let p50 = percentile(&ok_ms, 0.50);
    let p90 = percentile(&ok_ms, 0.90);
    let p99 = percentile(&ok_ms, 0.99);
    let p999 = percentile(&ok_ms, 0.999);
    let max = ok_ms.last().copied().unwrap_or(0.0);
    let mean =
        if ok_ms.is_empty() { 0.0 } else { ok_ms.iter().sum::<f64>() / ok_ms.len() as f64 };

    // Router-mode attribution: recompute the measured window's node
    // picks offline (they are pure functions of `(seed, k)`) and charge
    // each to its owning shard via the same map the router consults.
    let mut router_extra: Option<(Vec<u64>, usize, u64)> = None;
    if let Some(map) = &shard_map {
        let mut per_shard = vec![0u64; map.num_shards() as usize];
        let mut mixed = 0usize;
        for k in plan.warmup..plan.warmup + plan.requests {
            let mut seen: Vec<u32> = Vec::new();
            for n in node_picks(k, &plan) {
                let owner = map.owner(n as u32);
                per_shard[owner as usize] += 1;
                if !seen.contains(&owner) {
                    seen.push(owner);
                }
            }
            if seen.len() > 1 {
                mixed += 1;
            }
        }
        for (s, count) in per_shard.iter().enumerate() {
            println!("shard {s:<11}: {count} node picks");
        }
        println!("mixed batches   : {mixed} of {} spanned more than one shard", plan.requests);
        let peak_rss = discover_peak_rss(addr);
        println!("cluster peak rss: {peak_rss} MiB (max across workers)");
        router_extra = Some((per_shard, mixed, peak_rss));
    }

    // The tail, with handles: these trace ids key straight into the
    // server's GET /v1/debug/flight.
    let mut slowest: Vec<&Sample> = samples.iter().filter(|s| s.status == 200).collect();
    slowest.sort_by_key(|s| std::cmp::Reverse(s.latency));
    slowest.truncate(5);
    for s in &slowest {
        println!(
            "slow request    : {:9.3} ms  trace {}",
            s.latency.as_secs_f64() * 1e3,
            if s.trace.is_empty() { "-" } else { &s.trace },
        );
    }

    let mut summary = serde_json::json!({
        "mode": if plan.open_loop { "open" } else { "closed" },
        "requests": requests,
        "warmup": warmup,
        "concurrency": plan.concurrency,
        "batch": plan.batch,
        "seed": seed,
        "ok": ok,
        "rejected_429": rejected,
        "rejected_503": drained,
        "errors": errors,
        "wall_s": wall.as_secs_f64(),
        "serve_rps": rps,
        "serve_p50_ms": p50,
        "serve_p90_ms": p90,
        "serve_p99_ms": p99,
        "serve_p999_ms": p999,
        "serve_max_ms": max,
        "serve_mean_ms": mean,
        "slowest": slowest
            .iter()
            .map(|s| {
                serde_json::json!({
                    "trace": s.trace,
                    "ms": s.latency.as_secs_f64() * 1e3,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let (Some((per_shard, mixed, peak_rss)), serde_json::Value::Object(o)) =
        (&router_extra, &mut summary)
    {
        o.insert("router".into(), serde_json::json!(true));
        o.insert("per_shard_nodes".into(), serde_json::json!(per_shard.clone()));
        o.insert("mixed_shard_requests".into(), serde_json::json!(*mixed));
        o.insert("peak_rss_mb".into(), serde_json::json!(*peak_rss));
    }
    let mut text = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
    text.push('\n');
    print!("{text}");
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = flags.get("merge-into") {
        match &router_extra {
            Some((_, _, peak_rss)) => merge_into(
                path,
                &[
                    ("routed_serve_rps", rps),
                    ("routed_p99_ms", p99),
                    ("peak_rss_mb", *peak_rss as f64),
                ],
            )?,
            None => merge_into(
                path,
                &[("serve_rps", rps), ("serve_p50_ms", p50), ("serve_p99_ms", p99)],
            )?,
        }
    }
    if flags.contains_key("drain") {
        // Worker connections are already closed (drive joined them), so
        // the server's handlers can join promptly once draining starts.
        let (status, _) = http_post(addr, "/v1/drain", "{}")
            .map_err(|e| format!("drain request failed: {e}"))?;
        if !status.contains("202") {
            return Err(format!("drain request refused: {status}"));
        }
    }
    if ok == 0 {
        return Err("no request succeeded".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        return usage();
    }
    let flags = parse_flags(&args);
    match run(&flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let ms = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&ms, 0.50), 3.0);
        assert_eq!(percentile(&ms, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn status_line_parses() {
        assert_eq!(status_code("HTTP/1.1 200 OK"), 200);
        assert_eq!(status_code("HTTP/1.1 429 Too Many Requests"), 429);
        assert_eq!(status_code("garbage"), 0);
    }

    fn plan(batch: usize, seed: u64) -> Plan {
        Plan {
            addr: "127.0.0.1:1".parse().unwrap(),
            requests: 8,
            warmup: 0,
            concurrency: 2,
            batch,
            node_max: 50,
            seed,
            tenant: "default".into(),
            open_loop: false,
            rate: 1.0,
            trace_id: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn body_shape_matches_batch_flag() {
        let single = build_body(0, &plan(1, 7));
        assert!(single.contains("\"node\":"), "{single}");
        let multi = build_body(0, &plan(3, 7));
        assert!(multi.contains("\"nodes\": ["), "{multi}");
    }

    #[test]
    fn request_bodies_depend_only_on_seed_and_index() {
        let p = plan(2, 13);
        for k in 0..8 {
            assert_eq!(build_body(k, &p), build_body(k, &p));
        }
        assert_ne!(build_body(0, &p), build_body(1, &p), "indices draw distinct nodes");
        assert_ne!(build_body(0, &p), build_body(0, &plan(2, 14)), "seeds shift the stream");
    }

    #[test]
    fn pace_until_reaches_the_deadline_without_oversleeping_wildly() {
        let deadline = Instant::now() + Duration::from_millis(5);
        pace_until(deadline);
        let now = Instant::now();
        assert!(now >= deadline, "returned before the deadline");
        assert!(
            now.duration_since(deadline) < Duration::from_millis(50),
            "overslept by {:?}",
            now.duration_since(deadline)
        );
    }

    #[test]
    fn build_body_matches_node_picks() {
        // The summary's per-shard attribution replays node_picks offline;
        // it must see exactly the nodes the wire bodies named.
        let p = plan(3, 21);
        for k in 0..4 {
            let picks = node_picks(k, &p);
            let body = build_body(k, &p);
            for n in picks {
                assert!(body.contains(&n.to_string()), "{body} lacks {n}");
            }
        }
    }

    #[test]
    fn router_mode_attribution_counts_every_pick_once() {
        // A 2-shard map over 50 nodes: every pick lands on exactly one
        // shard, so the per-shard counts sum to requests × batch.
        let mut b = mqo_graph::GraphBuilder::new(50);
        for v in 1..50u32 {
            b.add_edge(v - 1, v).unwrap();
        }
        let map = mqo_shard::partition(&b.build(), 2, 9, mqo_shard::PartitionStrategy::EdgeCut);
        let p = plan(4, 33);
        let mut per_shard = [0u64; 2];
        let mut total = 0u64;
        for k in 0..p.requests {
            for n in node_picks(k, &p) {
                per_shard[map.owner(n as u32) as usize] += 1;
                total += 1;
            }
        }
        assert_eq!(per_shard.iter().sum::<u64>(), total);
        assert_eq!(total, (p.requests * p.batch) as u64);
    }

    #[test]
    fn pace_until_with_past_deadline_returns_immediately() {
        let deadline = Instant::now();
        let started = Instant::now();
        pace_until(deadline);
        assert!(started.elapsed() < Duration::from_millis(5));
    }
}
