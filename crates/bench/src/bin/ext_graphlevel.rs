//! Extension experiment (the paper's future work, §VII): graph-level
//! token pruning. Sweeps the node-text budget for relevance-ranked vs
//! random node inclusion on a synthetic graph-classification collection —
//! "refining token pruning to exclude irrelevant subgraph tokens".

use mqo_bench::harness::SEED;
use mqo_bench::report::{print_table, write_json};
use mqo_core::graphlevel::{run_graph_task, NodeBudget};
use mqo_data::graphlevel::{generate_collection, GraphCollectionSpec};
use mqo_llm::graphllm::SimGraphLlm;
use mqo_llm::{LanguageModel, ModelProfile};
use serde_json::json;

fn main() {
    let spec = GraphCollectionSpec { num_graphs: 300, ..Default::default() };
    let collection = generate_collection(&spec, SEED);
    let llm = SimGraphLlm::new(
        collection.lexicon.clone(),
        collection.class_names.clone(),
        collection.spec.topics_per_class,
        ModelProfile::gpt35(),
    );

    let all = run_graph_task(&collection, &llm, NodeBudget::All, SEED).unwrap();
    let mut rows = vec![vec![
        "all nodes".to_string(),
        format!("{:.1}", all.mean_nodes_included),
        format!("{:.1}", all.accuracy() * 100.0),
        "—".into(),
        all.prompt_tokens.to_string(),
    ]];
    let mut artifacts = vec![json!({
        "budget": "all",
        "mean_nodes": all.mean_nodes_included,
        "accuracy": all.accuracy() * 100.0,
        "prompt_tokens": all.prompt_tokens,
    })];
    for k in [2usize, 4, 6, 8, 12] {
        llm.meter().reset();
        let rel = run_graph_task(&collection, &llm, NodeBudget::RelevanceK(k), SEED).unwrap();
        let rnd = run_graph_task(&collection, &llm, NodeBudget::RandomK(k), SEED).unwrap();
        rows.push(vec![
            format!("k = {k}"),
            format!("{k}"),
            format!("{:.1}", rel.accuracy() * 100.0),
            format!("{:.1}", rnd.accuracy() * 100.0),
            rel.prompt_tokens.to_string(),
        ]);
        artifacts.push(json!({
            "budget": k,
            "accuracy_relevance": rel.accuracy() * 100.0,
            "accuracy_random": rnd.accuracy() * 100.0,
            "prompt_tokens_relevance": rel.prompt_tokens,
        }));
    }
    print_table(
        "Extension — graph-level token pruning (300 graphs, 4 communities)",
        &["node budget", "nodes/prompt", "relevance-ranked", "random", "tokens (ranked)"],
        &rows,
    );
    println!("\nShape: relevance-ranked inclusion approaches the all-nodes accuracy");
    println!("with a fraction of the tokens; random inclusion trails it at every k.");
    write_json("ext_graphlevel", &json!(artifacts));
}
