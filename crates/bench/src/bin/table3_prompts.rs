//! Table III: the prompt templates, rendered on a real generated node so
//! the exact strings the LLM sees are inspectable, with token costs.

use mqo_bench::harness::{setup, SEED};
use mqo_bench::report::write_json;
use mqo_core::predictor::{KhopRandom, Predictor, SelectCtx, Sns};
use mqo_core::LabelStore;
use mqo_data::DatasetId;
use mqo_llm::{ModelProfile, NeighborEntry, NodePromptSpec};
use mqo_token::Tokenizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    std::env::set_var("MQO_QUERIES", "50");
    let ctx = setup(DatasetId::Cora, ModelProfile::gpt35());
    let tag = &ctx.bundle.tag;
    let labels = LabelStore::from_split(tag, &ctx.split);
    let v = ctx.split.queries()[0];
    let t = tag.text(v);
    let rng = StdRng::seed_from_u64(SEED);

    let select = |p: &dyn Predictor| -> Vec<NeighborEntry> {
        let sctx = SelectCtx { tag, labels: &labels, max_neighbors: 4 };
        p.select_neighbors(&sctx, v, &mut StdRng::seed_from_u64(1))
            .into_iter()
            .map(|n| p.entry_for(&sctx, n))
            .collect()
    };

    let zero = NodePromptSpec {
        title: &t.title,
        abstract_text: &t.body,
        neighbors: &[],
        categories: tag.class_names(),
        ranked: false,
    }
    .render();

    let khop = KhopRandom::new(1, tag.num_nodes());
    let khop_entries = select(&khop);
    let khop_prompt = NodePromptSpec {
        title: &t.title,
        abstract_text: &t.body,
        neighbors: &khop_entries,
        categories: tag.class_names(),
        ranked: false,
    }
    .render();

    let sns = Sns::fit(tag);
    let sns_entries = select(&sns);
    let sns_prompt = NodePromptSpec {
        title: &t.title,
        abstract_text: &t.body,
        neighbors: &sns_entries,
        categories: tag.class_names(),
        ranked: true,
    }
    .render();

    let _ = rng;
    for (name, prompt) in
        [("vanilla zero-shot", &zero), ("1-hop random", &khop_prompt), ("SNS", &sns_prompt)]
    {
        println!(
            "\n===== Table III template: {name} ({} tokens) =====",
            Tokenizer.count(prompt)
        );
        println!("{prompt}");
    }
    write_json(
        "table3_prompts",
        &json!({
            "node": v.0,
            "templates": {
                "vanilla_zero_shot": {"tokens": Tokenizer.count(&zero), "text": zero},
                "khop_random": {"tokens": Tokenizer.count(&khop_prompt), "text": khop_prompt},
                "sns": {"tokens": Tokenizer.count(&sns_prompt), "text": sns_prompt},
            }
        }),
    );
}
