//! Table VIII (Q7): both strategies applied jointly — prune the top 20% by
//! text inadequacy, then execute through query boosting. Reports accuracy
//! and the "# Queries Equip N_i" cost indicator, for both model profiles.

use mqo_bench::harness::{num_queries, setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::BoostConfig;
use mqo_core::joint::run_joint;
use mqo_core::predictor::{KhopRandom, Predictor, Sns};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

fn main() {
    let tau = 0.2;
    let boost = BoostConfig { gamma1: 3, gamma2: 2 };
    let mut artifacts = Vec::new();
    for profile in [ModelProfile::gpt4o_mini(), ModelProfile::gpt35()] {
        let mut rows = Vec::new();
        for id in DatasetId::SMALL {
            eprintln!("[table8] {} × {}…", id.name(), profile.name);
            let ctx = setup(id, profile.clone());
            let tag = &ctx.bundle.tag;
            let exec = Executor::new(tag, &ctx.llm, 4, SEED);
            let scorer =
                InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED)
                    .unwrap();
            let methods: Vec<Box<dyn Predictor>> = vec![
                Box::new(KhopRandom::new(1, tag.num_nodes())),
                Box::new(KhopRandom::new(2, tag.num_nodes())),
                Box::new(Sns::fit(tag)),
            ];
            for method in &methods {
                let labels = LabelStore::from_split(tag, &ctx.split);
                let base = exec
                    .run_all(method.as_ref(), &labels, ctx.split.queries(), |_| false)
                    .unwrap();
                let mut joint_labels = LabelStore::from_split(tag, &ctx.split);
                let (joint, _) = run_joint(
                    &exec,
                    method.as_ref(),
                    &mut joint_labels,
                    ctx.split.queries(),
                    &scorer,
                    tau,
                    boost,
                )
                .unwrap();
                rows.push(vec![
                    format!("{} / {}", id.name(), method.name()),
                    base.queries_with_neighbors().to_string(),
                    format!("{:.1}", base.accuracy() * 100.0),
                    joint.queries_with_neighbors().to_string(),
                    format!(
                        "{:.1}{}",
                        joint.accuracy() * 100.0,
                        if joint.accuracy() > base.accuracy() { "↑" } else { "" }
                    ),
                ]);
                artifacts.push(json!({
                    "model": profile.name,
                    "dataset": id.name(),
                    "method": method.name(),
                    "queries": num_queries(),
                    "base": {
                        "queries_with_neighbors": base.queries_with_neighbors(),
                        "accuracy": base.accuracy() * 100.0,
                        "prompt_tokens": base.prompt_tokens(),
                    },
                    "joint": {
                        "queries_with_neighbors": joint.queries_with_neighbors(),
                        "accuracy": joint.accuracy() * 100.0,
                        "prompt_tokens": joint.prompt_tokens(),
                    },
                }));
            }
        }
        print_table(
            &format!("Table VIII — prune(20%) + boost, {}", profile.name),
            &["dataset / method", "#N base", "acc base", "#N joint", "acc joint"],
            &rows,
        );
    }
    println!("\nExpected shape: the joint version equips ~20% fewer queries with");
    println!("neighbor text (lower cost) while matching or beating base accuracy.");
    write_json("table8_joint", &json!(artifacts));
}
