//! Fig. 2 / §IV: the partial information decomposition behind the paper's
//! single-query analysis, computed *empirically* on a generated dataset.
//!
//! Sources: `X1` = the node text's own class vote, `X2` = the
//! neighborhood's label vote; target `Y` = the class (restricted to two
//! classes so the discrete PID stays readable). The decomposition
//! quantifies the paper's claims: neighbor information contributes only
//! through `U(N\t; y) + S(t, N; y)` (Eq. 5), and that term shrinks as
//! nodes saturate — the whole basis of token pruning.

use mqo_bench::harness::setup;
use mqo_bench::report::{print_table, write_json};
use mqo_data::DatasetId;
use mqo_graph::NodeId;
use mqo_llm::ModelProfile;
use mqo_nn::info::Joint;
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    // --- Canonical distributions (the Fig. 2 regions in isolation) -------
    for (name, joint) in [
        ("copies (pure R)", Joint::from_weights(&[((0, 0, 0), 1.0), ((1, 1, 1), 1.0)])),
        (
            "XOR (pure S)",
            Joint::from_weights(&[
                ((0, 0, 0), 1.0),
                ((0, 1, 1), 1.0),
                ((1, 0, 1), 1.0),
                ((1, 1, 0), 1.0),
            ]),
        ),
        (
            "only text informative (pure U_t)",
            Joint::from_weights(&[
                ((0, 0, 0), 1.0),
                ((0, 1, 0), 1.0),
                ((1, 0, 1), 1.0),
                ((1, 1, 1), 1.0),
            ]),
        ),
    ] {
        let pid = joint.pid();
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", pid.redundancy),
            format!("{:.3}", pid.unique_1),
            format!("{:.3}", pid.unique_2),
            format!("{:.3}", pid.synergy),
            format!("{:.3}", pid.information_gain()),
        ]);
        artifacts.push(json!({
            "distribution": name,
            "R": pid.redundancy, "U_t": pid.unique_1, "U_N": pid.unique_2,
            "S": pid.synergy, "IG": pid.information_gain(),
        }));
    }

    // --- Empirical decomposition on generated datasets --------------------
    // Restrict to nodes of classes 0 and 1 (so Y is one honest bit) and
    // use the two information channels the paper's analysis names:
    // X1 = the node text's own class vote (majority decoded topic),
    // X2 = the neighborhood's label vote (majority neighbor label).
    for id in [DatasetId::Cora, DatasetId::Pubmed] {
        eprintln!("[fig2] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let lex = &ctx.bundle.lexicon;
        let samples: Vec<(u8, u8, u8)> = tag
            .node_ids()
            .filter(|&v| tag.label(v).0 < 2)
            .map(|v| {
                // X1: does the text's dominant decoded topic point to class 1?
                let mut votes = [0usize; 2];
                for w in tag.text(v).full().split_whitespace() {
                    if let Some(mqo_text::WordKind::Class(c)) = lex.kind_of_word(w) {
                        if c < 2 {
                            votes[c as usize] += 1;
                        }
                    }
                }
                let x1 = u8::from(votes[1] > votes[0]);
                // X2: does the neighborhood's majority (class-0/1) label
                // point to class 1?
                let mut nvotes = [0usize; 2];
                for &u in tag.graph().neighbors(v) {
                    let c = tag.label(NodeId(u)).0;
                    if c < 2 {
                        nvotes[c as usize] += 1;
                    }
                }
                let x2 = u8::from(nvotes[1] > nvotes[0]);
                let y = tag.label(v).0 as u8;
                (x1, x2, y)
            })
            .collect();
        let joint = Joint::from_samples(&samples);
        let pid = joint.pid();
        rows.push(vec![
            format!("{} (empirical)", id.name()),
            format!("{:.4}", pid.redundancy),
            format!("{:.4}", pid.unique_1),
            format!("{:.4}", pid.unique_2),
            format!("{:.4}", pid.synergy),
            format!("{:.4}", pid.information_gain()),
        ]);
        artifacts.push(json!({
            "distribution": format!("{} empirical", id.name()),
            "R": pid.redundancy, "U_t": pid.unique_1, "U_N": pid.unique_2,
            "S": pid.synergy, "IG": pid.information_gain(),
        }));
    }
    print_table(
        "Fig. 2 — partial information decomposition (bits): I(t, N; y) = R + U_t + U_N + S",
        &["distribution", "R", "U_t", "U_N", "S", "IG = U_N + S"],
        &rows,
    );
    println!("\nEq. 5 in action: the neighbor side contributes only U_N + S, and on the");
    println!("highly-saturated dataset (pubmed) that term is a fraction of cora's —");
    println!("exactly the headroom structure token pruning exploits.");
    write_json("fig2_pid", &json!(artifacts));
}
