//! Table V (Q3): tokens theoretically reducible via token pruning, under
//! four neighbor-text configurations. The saturation proportion τ is
//! *measured* by running vanilla zero-shot on the query set (its accuracy
//! proxies the saturated fraction, as in the paper); neighbor-text token
//! costs are measured on the generated texts; the reducible count uses the
//! paper's full-scale node totals.

use mqo_bench::harness::{setup, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::predictor::ZeroShot;
use mqo_core::pruning::{mean_neighbor_text_tokens, reducible_tokens, NeighborTextConfig};
use mqo_core::{Executor, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

/// Paper Table V: measured saturation proportions per dataset.
const PAPER_TAU: [f64; 5] = [0.690, 0.601, 0.900, 0.731, 0.794];

fn main() {
    let configs = [
        (
            "4 neighbors, title only",
            NeighborTextConfig { neighbors: 4, include_abstract: false },
        ),
        (
            "10 neighbors, title only",
            NeighborTextConfig { neighbors: 10, include_abstract: false },
        ),
        (
            "4 neighbors, title+abstract",
            NeighborTextConfig { neighbors: 4, include_abstract: true },
        ),
        (
            "10 neighbors, title+abstract",
            NeighborTextConfig { neighbors: 10, include_abstract: true },
        ),
    ];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (d, id) in DatasetId::ALL.into_iter().enumerate() {
        eprintln!("[table5] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, 4, SEED);
        let zero = exec.run_all(&ZeroShot, &labels, ctx.split.queries(), |_| false).unwrap();
        let tau = zero.accuracy();
        let full_nodes = ctx.bundle.spec.nodes;
        rows.push(vec![
            id.name().to_string(),
            format!("{:.1}% (paper {:.1}%)", tau * 100.0, PAPER_TAU[d] * 100.0),
            String::new(),
            String::new(),
        ]);
        let mut cfg_json = Vec::new();
        for (name, cfg) in configs {
            let mean = mean_neighbor_text_tokens(tag, cfg, 400, SEED);
            let saved = reducible_tokens(full_nodes, tau, mean);
            rows.push(vec![
                format!("  {name}"),
                String::new(),
                format!("{mean:.1}"),
                format!("{saved:.3e}"),
            ]);
            cfg_json.push(json!({
                "config": name,
                "mean_neighbor_tokens": mean,
                "reducible_tokens": saved,
            }));
        }
        artifacts.push(json!({
            "dataset": id.name(),
            "measured_saturation": tau,
            "paper_saturation": PAPER_TAU[d],
            "full_scale_nodes": full_nodes,
            "configs": cfg_json,
        }));
    }
    print_table(
        "Table V — tokens reducible via token pruning (full-scale datasets)",
        &["dataset / config", "saturated τ", "mean N tokens", "reducible tokens"],
        &rows,
    );
    println!("\nPaper headline: Ogbn-Products at 10 neighbors title+abstract reaches ~2.7e9");
    println!("reducible tokens; the generated stand-ins should land within the same order.");
    write_json("table5_savings", &json!(artifacts));
}
