//! Table VI (Q4): mean text-inadequacy `D(t_i)` of saturated vs
//! non-saturated query nodes (saturation judged by whether vanilla
//! zero-shot classified the node correctly, as in the paper).

use mqo_bench::harness::{setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::predictor::ZeroShot;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

/// Paper Table VI: (saturated mean, non-saturated mean) per dataset.
const PAPER: [(f64, f64); 5] =
    [(0.421, 0.478), (0.350, 0.437), (0.265, 0.330), (0.298, 0.339), (0.144, 0.253)];

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (d, id) in DatasetId::ALL.into_iter().enumerate() {
        eprintln!("[table6] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, 4, SEED);
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let zero = exec.run_all(&ZeroShot, &labels, ctx.split.queries(), |_| false).unwrap();

        let (mut s_sum, mut s_n, mut n_sum, mut n_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for r in &zero.records {
            let dti = scorer.score(tag, r.node);
            if r.correct {
                s_sum += dti;
                s_n += 1;
            } else {
                n_sum += dti;
                n_n += 1;
            }
        }
        let (sat, nonsat) = (s_sum / s_n.max(1) as f64, n_sum / n_n.max(1) as f64);
        rows.push(vec![
            id.name().to_string(),
            format!("{sat:.3}"),
            format!("{nonsat:.3}"),
            format!("{:+.3}", nonsat - sat),
            format!("{:.3} / {:.3}", PAPER[d].0, PAPER[d].1),
        ]);
        artifacts.push(json!({
            "dataset": id.name(),
            "saturated_mean_D": sat,
            "non_saturated_mean_D": nonsat,
            "gap": nonsat - sat,
            "paper": {"saturated": PAPER[d].0, "non_saturated": PAPER[d].1},
            "n_saturated": s_n,
            "n_non_saturated": n_n,
        }));
    }
    print_table(
        "Table VI — mean text inadequacy D(t_i): saturated vs non-saturated",
        &["dataset", "saturated", "non-saturated", "gap", "paper (sat / non-sat)"],
        &rows,
    );
    println!("\nExpected shape: saturated mean < non-saturated mean on every dataset,");
    println!("with a modest gap (the paper calls its measure a simple heuristic).");
    write_json("table6_inadequacy", &json!(artifacts));
}
