//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **γ1/γ2 sensitivity** — query boosting accuracy and round count
//!    across threshold settings (the paper fixes γ1=3, γ2=2 everywhere).
//! 2. **Inadequacy-ranking quality** — pruning at τ=40% with four rankers:
//!    the full `D(t_i)` merger, the entropy channel alone, an *oracle*
//!    that prunes exactly the nodes zero-shot already gets right (the
//!    upper bound), and random (the lower bound).
//! 3. **SNS embedding dimension** — hashed-BoW width vs accuracy (the
//!    SimCSE-substitution fidelity knob).
//! 4. **Boosting vs pure label propagation** — query boosting is
//!    LLM-mediated label propagation; the text-free classic shows how much
//!    of the gain is graph structure alone.

use mqo_bench::harness::{setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::predictor::{KhopRandom, Sns, ZeroShot};
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_graph::NodeId;
use mqo_llm::ModelProfile;
use serde_json::json;
use std::collections::HashSet;

fn main() {
    let ctx = setup(DatasetId::Cora, ModelProfile::gpt35());
    let tag = &ctx.bundle.tag;
    let exec = Executor::new(tag, &ctx.llm, 4, SEED);
    let queries = ctx.split.queries();
    let mut artifacts = serde_json::Map::new();

    // ----- 1. γ sensitivity ------------------------------------------------
    eprintln!("[ablations] gamma sensitivity…");
    let predictor = KhopRandom::new(2, tag.num_nodes());
    let mut rows = Vec::new();
    let mut gamma_json = Vec::new();
    for gamma1 in [1usize, 2, 3, 4, 5] {
        for gamma2 in [1usize, 2, 3] {
            let mut labels = LabelStore::from_split(tag, &ctx.split);
            let (out, traces) = run_with_boosting(
                &exec,
                &predictor,
                &mut labels,
                queries,
                BoostConfig { gamma1, gamma2 },
                &PrunePlan::default(),
            )
            .unwrap();
            rows.push(vec![
                format!("γ1={gamma1}, γ2={gamma2}"),
                format!("{:.1}", out.accuracy() * 100.0),
                traces.len().to_string(),
                out.pseudo_label_uses().to_string(),
            ]);
            gamma_json.push(json!({
                "gamma1": gamma1, "gamma2": gamma2,
                "accuracy": out.accuracy() * 100.0,
                "rounds": traces.len(),
                "pseudo_label_uses": out.pseudo_label_uses(),
            }));
        }
    }
    print_table(
        "Ablation 1 — boosting threshold sensitivity (Cora, 2-hop random)",
        &["thresholds", "accuracy", "rounds", "pseudo uses"],
        &rows,
    );
    artifacts.insert("gamma_sensitivity".into(), json!(gamma_json));

    // ----- 2. ranking quality ---------------------------------------------
    eprintln!("[ablations] ranking quality…");
    let labels = LabelStore::from_split(tag, &ctx.split);
    let khop = KhopRandom::new(1, tag.num_nodes());
    let tau = 0.4;
    let scorer =
        InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(DatasetId::Cora), 10, SEED)
            .unwrap();

    let full_plan = PrunePlan::by_inadequacy(&scorer, tag, queries, tau);

    // Entropy channel alone: rank by H(p_i) without the bias merger.
    let mut by_entropy: Vec<(NodeId, f32)> =
        queries.iter().map(|&v| (v, scorer.surrogate().entropy_of(tag, v))).collect();
    by_entropy.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    let cut = (queries.len() as f64 * tau).round() as usize;
    let entropy_plan = PrunePlan::from_set(
        by_entropy.into_iter().take(cut).map(|(v, _)| v).collect::<HashSet<_>>(),
    );

    // Oracle: prune exactly the nodes vanilla zero-shot classifies
    // correctly (true saturated nodes for this model).
    let zero = exec.run_all(&ZeroShot, &labels, queries, |_| false).unwrap();
    let oracle_saturated: Vec<NodeId> =
        zero.records.iter().filter(|r| r.correct).map(|r| r.node).collect();
    let oracle_plan =
        PrunePlan::from_set(oracle_saturated.into_iter().take(cut).collect::<HashSet<_>>());

    let random_plan = PrunePlan::random(queries, tau, SEED);

    let base = exec.run_all(&khop, &labels, queries, |_| false).unwrap();
    let mut rows = Vec::new();
    let mut rank_json = Vec::new();
    for (name, plan) in [
        ("no pruning", &PrunePlan::default()),
        ("oracle (true saturated)", &oracle_plan),
        ("D(t_i) = g(H ‖ b) [ours]", &full_plan),
        ("entropy channel only", &entropy_plan),
        ("random", &random_plan),
    ] {
        let out = run_with_pruning(&exec, &khop, &labels, queries, plan).unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", out.accuracy() * 100.0),
            format!("{:+.1}", (out.accuracy() - base.accuracy()) * 100.0),
            out.prompt_tokens().to_string(),
        ]);
        rank_json.push(json!({
            "ranker": name,
            "accuracy": out.accuracy() * 100.0,
            "delta_pp": (out.accuracy() - base.accuracy()) * 100.0,
            "prompt_tokens": out.prompt_tokens(),
        }));
    }
    print_table(
        &format!("Ablation 2 — pruning-ranking quality (Cora, 1-hop, τ={tau})"),
        &["ranker", "accuracy", "Δ vs no-prune (pp)", "prompt tokens"],
        &rows,
    );
    artifacts.insert("ranking_quality".into(), json!(rank_json));

    // ----- 3. SNS embedding dimension ---------------------------------------
    eprintln!("[ablations] SNS embedding dimension…");
    let mut rows = Vec::new();
    let mut sns_json = Vec::new();
    for dim in [32usize, 128, 256, 1024] {
        let sns = Sns::fit_with_dim(tag, dim);
        let out = exec.run_all(&sns, &labels, queries, |_| false).unwrap();
        rows.push(vec![dim.to_string(), format!("{:.1}", out.accuracy() * 100.0)]);
        sns_json.push(json!({"dim": dim, "accuracy": out.accuracy() * 100.0}));
    }
    print_table("Ablation 3 — SNS hashed-embedding width (Cora)", &["dim", "accuracy"], &rows);
    artifacts.insert("sns_dimension".into(), json!(sns_json));

    // ----- 4. boosting vs pure label propagation ----------------------------
    eprintln!("[ablations] boosting vs label propagation…");
    let labeled: Vec<(mqo_graph::NodeId, mqo_graph::ClassId)> =
        ctx.split.labeled().iter().map(|&v| (v, tag.label(v))).collect();
    let lp_preds = mqo_gnn::label_propagation(
        tag.graph(),
        tag.num_classes(),
        &labeled,
        mqo_gnn::LabelPropConfig::default(),
    );
    let lp_acc = queries.iter().filter(|&&v| lp_preds[v.index()] == tag.label(v)).count()
        as f64
        / queries.len() as f64;
    let zero = exec.run_all(&ZeroShot, &labels, queries, |_| false).unwrap();
    let khop2 = KhopRandom::new(2, tag.num_nodes());
    let base2 = exec.run_all(&khop2, &labels, queries, |_| false).unwrap();
    let mut bl = LabelStore::from_split(tag, &ctx.split);
    let (boost2, _) = run_with_boosting(
        &exec,
        &khop2,
        &mut bl,
        queries,
        BoostConfig::default(),
        &PrunePlan::default(),
    )
    .unwrap();
    let rows = vec![
        vec!["label propagation (no text)".into(), format!("{:.1}", lp_acc * 100.0)],
        vec!["LLM zero-shot (no graph)".into(), format!("{:.1}", zero.accuracy() * 100.0)],
        vec!["LLM 2-hop (text + graph)".into(), format!("{:.1}", base2.accuracy() * 100.0)],
        vec!["LLM 2-hop + boosting".into(), format!("{:.1}", boost2.accuracy() * 100.0)],
    ];
    print_table(
        "Ablation 4 — what the gains are made of (Cora)",
        &["predictor", "accuracy"],
        &rows,
    );
    artifacts.insert(
        "boosting_vs_label_propagation".into(),
        json!({
            "label_propagation": lp_acc * 100.0,
            "llm_zero_shot": zero.accuracy() * 100.0,
            "llm_2hop": base2.accuracy() * 100.0,
            "llm_2hop_boosted": boost2.accuracy() * 100.0,
        }),
    );

    write_json("ablations", &serde_json::Value::Object(artifacts));
}
