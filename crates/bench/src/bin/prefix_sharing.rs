//! Prefix-sharing analysis (§II-C context): prior LLM-MQO work (prefix
//! caching, Hydragen, cascade inference) reuses shared prompt *prefixes*
//! across queries — but needs white-box serving. This analysis quantifies
//! how much prefix mass the paradigm's prompts actually share, and how the
//! paper's black-box strategies compare and compose with it.
//!
//! Method: for each dataset's query set, render all prompts and measure
//! (a) the longest prefix common to every prompt, and (b) pairwise shared
//! prefixes between consecutive prompts — the quantity a radix-tree prompt
//! cache would reuse — before and after token pruning.

use mqo_bench::harness::{m_for, setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use mqo_token::Tokenizer;
use serde_json::json;

/// Length (in chars) of the common prefix of two strings.
fn common_prefix_len(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for id in [DatasetId::Cora, DatasetId::Citeseer, DatasetId::Pubmed] {
        eprintln!("[prefix] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let plan = PrunePlan::by_inadequacy(&scorer, tag, ctx.split.queries(), 0.2);

        let render_all = |prune: bool| -> Vec<String> {
            ctx.split
                .queries()
                .iter()
                .map(|&v| {
                    let mut rng = exec.query_rng(v);
                    exec.render_for_estimate(
                        &predictor,
                        &labels,
                        v,
                        &mut rng,
                        prune && plan.is_pruned(v),
                    )
                })
                .collect()
        };
        for (arm, prompts) in [("base", render_all(false)), ("w/ prune 20%", render_all(true))]
        {
            let total_tokens: usize = prompts.iter().map(|p| Tokenizer.count(p)).sum();
            // Global common prefix across all prompts.
            let global = prompts
                .iter()
                .skip(1)
                .fold(prompts[0].len(), |acc, p| acc.min(common_prefix_len(&prompts[0], p)));
            // Mean pairwise (consecutive) shared prefix — what a radix-tree
            // cache would hit when prompts are served in order.
            let pairwise: usize =
                prompts.windows(2).map(|w| common_prefix_len(&w[0], &w[1])).sum::<usize>()
                    / (prompts.len() - 1);
            let mean_len: usize =
                prompts.iter().map(|p| p.len()).sum::<usize>() / prompts.len();
            rows.push(vec![
                format!("{} / {arm}", id.name()),
                format!("{total_tokens}"),
                format!("{global} B"),
                format!("{pairwise} B"),
                format!("{:.1}%", pairwise as f64 / mean_len as f64 * 100.0),
            ]);
            artifacts.push(json!({
                "dataset": id.name(),
                "arm": arm,
                "total_prompt_tokens": total_tokens,
                "global_common_prefix_bytes": global,
                "mean_pairwise_prefix_bytes": pairwise,
                "mean_prompt_bytes": mean_len,
            }));
        }
    }
    print_table(
        "Prefix sharing across the query set (§II-C context)",
        &["dataset / arm", "total tokens", "global prefix", "pairwise prefix", "prefix share"],
        &rows,
    );
    println!("\nThe paradigm front-loads each prompt with the *target* node's unique");
    println!("text, so shared prefixes are tiny — prefix-cache MQO has little to reuse");
    println!("here, while the paper's black-box strategies cut whole-prompt mass and");
    println!("compose with serving-side caching where it does apply.");
    write_json("prefix_sharing", &json!(artifacts));
}
