//! Prefix-sharing analysis (§II-C context): prior LLM-MQO work (prefix
//! caching, Hydragen, cascade inference) reuses shared prompt *prefixes*
//! across queries — but needs white-box serving. This analysis quantifies
//! how much prefix mass the paradigm's prompts actually share, and how the
//! paper's black-box strategies compare and compose with it.
//!
//! Method: for each dataset's query set, render all prompts and measure
//! (a) the longest prefix common to every prompt, (b) pairwise shared
//! prefixes between consecutive prompts — the quantity a radix-tree prompt
//! cache would reuse when prompts arrive in order — and (c) the *realized*
//! segment-level reuse a [`mqo_cache::PrefixStore`] observes over the same
//! serving order. All prefix quantities are measured in tokenizer tokens
//! (the unit providers bill), via [`mqo_cache::common_prefix_tokens`];
//! byte counts are kept only as a secondary column.

use mqo_bench::harness::{m_for, setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_cache::{common_prefix_bytes, common_prefix_tokens, PrefixStore};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::PrunePlan;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::{prompt::segments, ModelProfile};
use mqo_token::Tokenizer;
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for id in [DatasetId::Cora, DatasetId::Citeseer, DatasetId::Pubmed] {
        eprintln!("[prefix] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let predictor = KhopRandom::new(1, tag.num_nodes());
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let plan = PrunePlan::by_inadequacy(&scorer, tag, ctx.split.queries(), 0.2);

        let render_all = |prune: bool| -> Vec<String> {
            ctx.split
                .queries()
                .iter()
                .map(|&v| {
                    let mut rng = exec.query_rng(v);
                    exec.render_for_estimate(
                        &predictor,
                        &labels,
                        v,
                        &mut rng,
                        prune && plan.is_pruned(v),
                    )
                })
                .collect()
        };
        for (arm, prompts) in [("base", render_all(false)), ("w/ prune 20%", render_all(true))]
        {
            let total_tokens: usize = prompts.iter().map(|p| Tokenizer.count(p)).sum();
            // Global common prefix across all prompts (tokens).
            let global = prompts.iter().skip(1).fold(Tokenizer.count(&prompts[0]), |acc, p| {
                acc.min(common_prefix_tokens(&prompts[0], p))
            });
            // Mean pairwise (consecutive) shared prefix — what a serving
            // cache keyed on arrival adjacency would hit.
            let pair_tok: usize =
                prompts.windows(2).map(|w| common_prefix_tokens(&w[0], &w[1])).sum::<usize>()
                    / (prompts.len() - 1);
            let pair_bytes: usize =
                prompts.windows(2).map(|w| common_prefix_bytes(&w[0], &w[1])).sum::<usize>()
                    / (prompts.len() - 1);
            // Realized reuse over the whole serving order: feed every
            // prompt through the radix-style segment store the runtime
            // cache layer uses (`CachedLlm` accounts this same quantity
            // for actually-sent traffic).
            let mut store = PrefixStore::new();
            for p in &prompts {
                store.observe_segments(&segments(p));
            }
            let realized = store.reused_tokens();
            let mean_tokens = total_tokens / prompts.len();
            rows.push(vec![
                format!("{} / {arm}", id.name()),
                format!("{total_tokens}"),
                format!("{global} t"),
                format!("{pair_tok} t"),
                format!("{:.1}%", pair_tok as f64 / mean_tokens as f64 * 100.0),
                format!("{:.1}%", realized as f64 / store.total_tokens() as f64 * 100.0),
            ]);
            artifacts.push(json!({
                "dataset": id.name(),
                "arm": arm,
                "total_prompt_tokens": total_tokens,
                "global_common_prefix_tokens": global,
                "mean_pairwise_prefix_tokens": pair_tok,
                "mean_pairwise_prefix_bytes": pair_bytes,
                "realized_reuse_tokens": realized,
                "realized_reuse_fraction": realized as f64 / store.total_tokens() as f64,
            }));
        }
    }
    print_table(
        "Prefix sharing across the query set (§II-C context)",
        &[
            "dataset / arm",
            "total tokens",
            "global prefix",
            "pairwise prefix",
            "prefix share",
            "realized reuse",
        ],
        &rows,
    );
    println!("\nThe paradigm front-loads each prompt with the *target* node's unique");
    println!("text, so shared prefixes are tiny — prefix-cache MQO has little to reuse");
    println!("here, while the paper's black-box strategies cut whole-prompt mass and");
    println!("compose with serving-side caching where it does apply.");
    write_json("prefix_sharing", &json!(artifacts));
}
