//! Table IX (Q8): the strategies applied to six instruction-tuned
//! (instructGLM-style) backbones on Cora. Five configurations per
//! backbone: Base / w/ boost / w/ random prune / w/ our prune / w/ both,
//! with 30% of queries pruned in the pruning variants.

use mqo_bench::harness::{setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::{run_with_boosting, BoostConfig};
use mqo_core::joint::run_joint;
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::tuned::{instructglm_backbones, tuned_profile, TunedPredictor};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use serde_json::json;

fn main() {
    let tau = 0.3;
    let boost = BoostConfig { gamma1: 3, gamma2: 2 };
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for backbone in instructglm_backbones() {
        eprintln!("[table9] {}…", backbone.name);
        let profile = tuned_profile(&backbone);
        let ctx = setup(DatasetId::Cora, profile.clone());
        let tag = &ctx.bundle.tag;
        let exec = Executor::new(tag, &ctx.llm, 4, SEED);
        let predictor = TunedPredictor::new(backbone, tag.num_nodes());
        let scorer = InadequacyScorer::build(
            &exec,
            &ctx.split,
            &surrogate_for(DatasetId::Cora),
            10,
            SEED,
        )
        .unwrap();
        let queries = ctx.split.queries();

        let labels = LabelStore::from_split(tag, &ctx.split);
        let base = exec.run_all(&predictor, &labels, queries, |_| false).unwrap();

        let mut bl = LabelStore::from_split(tag, &ctx.split);
        let (boosted, _) = run_with_boosting(
            &exec,
            &predictor,
            &mut bl,
            queries,
            boost,
            &PrunePlan::default(),
        )
        .unwrap();

        let random_plan = PrunePlan::random(queries, tau, SEED);
        let random =
            run_with_pruning(&exec, &predictor, &labels, queries, &random_plan).unwrap();

        let our_plan = PrunePlan::by_inadequacy(&scorer, tag, queries, tau);
        let ours = run_with_pruning(&exec, &predictor, &labels, queries, &our_plan).unwrap();

        let mut jl = LabelStore::from_split(tag, &ctx.split);
        let (both, _) =
            run_joint(&exec, &predictor, &mut jl, queries, &scorer, tau, boost).unwrap();

        let accs = [
            base.accuracy(),
            boosted.accuracy(),
            random.accuracy(),
            ours.accuracy(),
            both.accuracy(),
        ];
        rows.push(
            std::iter::once(backbone.name.to_string())
                .chain(accs.iter().map(|a| format!("{:.1}", a * 100.0)))
                .collect(),
        );
        artifacts.push(json!({
            "backbone": backbone.name,
            "tau": tau,
            "accuracy": {
                "base": accs[0] * 100.0,
                "w_boost": accs[1] * 100.0,
                "w_random": accs[2] * 100.0,
                "w_prune": accs[3] * 100.0,
                "w_both": accs[4] * 100.0,
            },
        }));
    }
    print_table(
        "Table IX — strategies on instruction-tuned backbones (Cora, 30% pruned)",
        &["backbone", "Base", "w/ boost", "w/ random", "w/ prune", "w/ both"],
        &rows,
    );
    println!("\nExpected shape (paper): w/ prune ≫ w/ random (trade-off advantage);");
    println!("w/ boost > Base; w/ both > w/ prune.");
    write_json("table9_instruct", &json!(artifacts));
}
