//! Fig. 3: accuracy gain of 1-hop random over vanilla zero-shot (a proxy
//! for the information gain `IG^{N_i}`), grouped by whether the neighbor
//! text contained labels, plus the pie-chart proportions.

use mqo_bench::harness::{m_for, setup, SEED};
use mqo_bench::report::{pct, print_table, write_json};
use mqo_core::analysis::info_gain_experiment;
use mqo_core::predictor::KhopRandom;
use mqo_core::{Executor, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    // The paper's Fig. 3 shows Cora and Citeseer.
    for id in [DatasetId::Cora, DatasetId::Citeseer] {
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let khop = KhopRandom::new(1, tag.num_nodes());
        let report = info_gain_experiment(&exec, &khop, &labels, ctx.split.queries()).unwrap();
        rows.push(vec![
            id.name().to_string(),
            report.with_labels.to_string(),
            report.without_labels.to_string(),
            pct(report.labeled_fraction()),
            format!("{:+.1}", report.gain_with_labels * 100.0),
            format!("{:+.1}", report.gain_without_labels * 100.0),
        ]);
        artifacts.push(json!({
            "dataset": id.name(),
            "queries_with_neighbor_labels": report.with_labels,
            "queries_without_neighbor_labels": report.without_labels,
            "labeled_fraction": report.labeled_fraction(),
            "ig_proxy_with_labels_pp": report.gain_with_labels * 100.0,
            "ig_proxy_without_labels_pp": report.gain_without_labels * 100.0,
            "paper_expectation": "bars: gain(with labels) > gain(without); pies: both groups populated",
        }));
    }
    print_table(
        "Fig. 3 — IG proxy by neighbor-label presence (percentage points)",
        &[
            "dataset",
            "#N_L!=0",
            "#N_L==0",
            "% with labels",
            "gain w/ labels",
            "gain w/o labels",
        ],
        &rows,
    );
    write_json("fig3_info_gain", &json!(artifacts));
}
