//! Developer diagnostic: what does the `D(t_i)` ranking actually capture?
//! Prints the surrogate's out-of-fold accuracy, the estimated bias vector
//! `w`, the fitted merger coefficients, the saturated fraction per ranking
//! quintile, and the latent composition of the pruned set. Used when
//! recalibrating the simulator or generator knobs (see DESIGN.md §4b).
use mqo_bench::harness::{setup, surrogate_for, SEED};
use mqo_core::predictor::ZeroShot;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;

fn main() {
    let ctx = setup(DatasetId::Cora, ModelProfile::gpt35());
    let tag = &ctx.bundle.tag;
    let labels = LabelStore::from_split(tag, &ctx.split);
    let exec = Executor::new(tag, &ctx.llm, 4, SEED);
    let scorer =
        InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(DatasetId::Cora), 10, SEED)
            .unwrap();
    println!("surrogate oof acc: {:.3}", scorer.surrogate().oof_accuracy);
    println!(
        "bias weights w: {:?}",
        scorer.bias_weights().iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("merger coeffs (H, b, bias): {:?}", scorer.merger_coefficients());

    let zero = exec.run_all(&ZeroShot, &labels, ctx.split.queries(), |_| false).unwrap();
    let ranked = scorer.rank_ascending(tag, ctx.split.queries());
    let correct: std::collections::HashSet<_> =
        zero.records.iter().filter(|r| r.correct).map(|r| r.node).collect();
    // In each ranking decile, what fraction is zero-shot-correct (saturated)?
    let n = ranked.len();
    for d in 0..5 {
        let lo = d * n / 5;
        let hi = (d + 1) * n / 5;
        let frac = ranked[lo..hi].iter().filter(|v| correct.contains(v)).count() as f64
            / (hi - lo) as f64;
        println!("quintile {d}: saturated frac {:.3}", frac);
    }
    // alpha composition of pruned top-40%
    let cut = (n as f64 * 0.4) as usize;
    let (mut adv, mut weak, mut strong) = (0, 0, 0);
    for v in &ranked[..cut] {
        if ctx.bundle.adversarial[v.index()] {
            adv += 1;
        } else if ctx.bundle.alphas[v.index()] < 0.15 {
            weak += 1;
        } else {
            strong += 1;
        }
    }
    println!("top-40% pruned: adversarial {adv}, weak {weak}, strong {strong}");
}
