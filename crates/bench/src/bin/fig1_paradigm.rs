//! Fig. 1 context: the paradigm comparison from the paper's introduction.
//! Trains the conventional GNN pipeline (BoW features → GCN / GraphSAGE,
//! semi-supervised) and runs the training-free "LLMs as predictors"
//! methods on the same split, reporting accuracy, training cost, and the
//! per-query marginal cost that motivates MQO.

use mqo_bench::harness::{m_for, setup, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::predictor::{KhopRandom, Sns, ZeroShot};
use mqo_core::{Executor, LabelStore};
use mqo_data::DatasetId;
use mqo_encoder::{HashedEncoder, TextEncoder};
use mqo_gnn::{
    label_propagation, matrix::Matrix, GnnConfig, GnnKind, GnnModel, LabelPropConfig,
};
use mqo_llm::{LanguageModel, ModelProfile};
use mqo_token::GPT_35_TURBO_0125;
use serde_json::json;
use std::time::Instant;

fn main() {
    let id = DatasetId::Cora;
    let ctx = setup(id, ModelProfile::gpt35());
    let tag = &ctx.bundle.tag;
    let split = &ctx.split;
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();

    // --- GNN side --------------------------------------------------------
    let dim = 128;
    let enc = HashedEncoder::new(dim);
    let mut x = Matrix::zeros(tag.num_nodes(), dim);
    for v in tag.node_ids() {
        x.row_mut(v.index()).copy_from_slice(&enc.encode(&tag.text(v).full()));
    }
    let labeled: Vec<(usize, usize)> =
        split.labeled().iter().map(|&v| (v.index(), tag.label(v).index())).collect();
    for (name, kind) in [("GCN", GnnKind::Gcn), ("GraphSAGE-mean", GnnKind::SageMean)] {
        let start = Instant::now();
        let mut gnn = GnnModel::new(
            tag.graph(),
            dim,
            tag.num_classes(),
            GnnConfig { kind, epochs: 120, ..Default::default() },
        );
        gnn.fit(&x, &labeled);
        let train_secs = start.elapsed().as_secs_f64();
        let preds = gnn.predict_all(&x);
        let acc = split
            .queries()
            .iter()
            .filter(|&&v| preds[v.index()] == tag.label(v).index())
            .count() as f64
            / split.queries().len() as f64;
        rows.push(vec![
            name.into(),
            "trained".into(),
            format!("{:.1}", acc * 100.0),
            format!("{train_secs:.1}s train"),
            "$0 (self-hosted)".into(),
        ]);
        artifacts.push(
            json!({"predictor": name, "accuracy": acc * 100.0, "train_secs": train_secs}),
        );
    }
    // Label propagation: the no-text control.
    let lp_labeled: Vec<_> = split.labeled().iter().map(|&v| (v, tag.label(v))).collect();
    let lp = label_propagation(
        tag.graph(),
        tag.num_classes(),
        &lp_labeled,
        LabelPropConfig::default(),
    );
    let lp_acc = split.queries().iter().filter(|&&v| lp[v.index()] == tag.label(v)).count()
        as f64
        / split.queries().len() as f64;
    rows.push(vec![
        "Label propagation".into(),
        "none".into(),
        format!("{:.1}", lp_acc * 100.0),
        "—".into(),
        "$0".into(),
    ]);
    artifacts.push(json!({"predictor": "label propagation", "accuracy": lp_acc * 100.0}));

    // --- LLM side ---------------------------------------------------------
    let labels = LabelStore::from_split(tag, split);
    let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
    let zero = exec.run_all(&ZeroShot, &labels, split.queries(), |_| false).unwrap();
    let khop = KhopRandom::new(1, tag.num_nodes());
    let one = exec.run_all(&khop, &labels, split.queries(), |_| false).unwrap();
    let sns = Sns::fit(tag);
    let s = exec.run_all(&sns, &labels, split.queries(), |_| false).unwrap();
    for (name, out) in [("LLM zero-shot", &zero), ("LLM 1-hop random", &one), ("LLM SNS", &s)] {
        let per_query = out.prompt_tokens() as f64 / out.records.len() as f64;
        rows.push(vec![
            name.into(),
            "none".into(),
            format!("{:.1}", out.accuracy() * 100.0),
            format!("{per_query:.0} tok/query"),
            format!("${:.5}/query", GPT_35_TURBO_0125.input_cost(per_query as u64)),
        ]);
        artifacts.push(json!({
            "predictor": name,
            "accuracy": out.accuracy() * 100.0,
            "tokens_per_query": per_query,
        }));
    }
    let _ = ctx.llm.meter();

    print_table(
        &format!("Fig. 1 context — GNN vs LLM-as-predictor paradigms ({})", id.name()),
        &["predictor", "training", "accuracy", "marginal cost", "$ cost"],
        &rows,
    );
    println!("\nThe GNN needs the whole graph, features, and a training run; adding one");
    println!("node means re-encoding (and often re-training). The LLM paradigm answers");
    println!("any node with one prompt — which is why its per-query token cost, and");
    println!("hence MQO, is the deployment bottleneck the paper attacks.");
    write_json("fig1_paradigm", &json!(artifacts));
}
