//! `mqo` — command-line interface to the library.
//!
//! ```text
//! mqo generate <dataset> [--scale S] [--seed N] --out FILE
//! mqo inspect  FILE
//! mqo classify <dataset|FILE> [--method M] [--queries N] [--prune TAU]
//!              [--boost] [--model gpt35|gpt4o-mini] [--threads T]
//!              [--deterministic] [--budget B] [--retries N] [--trace FILE]
//!              [--trace-chrome FILE] [--serve-metrics ADDR]
//!              [--cost-json FILE] [--cache-cap N] [--no-cache]
//!              [--repeat K] [--batch B] [--stats-json FILE]
//!              [--faults SPEC] [--fault-kill-after N]
//!              [--journal FILE] [--resume] [--dump-records FILE]
//! mqo serve    <dataset|FILE> [--addr A] [--method M] [--queries N]
//!              [--workers W] [--queue-cap Q] [--budget B] [--boost]
//!              [--tenants a=1000,b=500] [--tenant-budget N]
//!              [--cache-cap N] [--no-cache] [--retries N] [--faults SPEC]
//!              [--journal FILE] [--resume] [--trace-chrome FILE]
//!              [--cost-json FILE] [--stats-json FILE] [--addr-file FILE]
//! mqo partition <dataset|FILE> --shards K --out-dir DIR [--seed N]
//!              [--scale S] [--strategy edge-cut|ring] [--stats-json FILE]
//! mqo route    MAPFILE --workers ADDR,ADDR,... [--addr A] [--addr-file F]
//!              [--eject-after N] [--probe-interval-ms MS]
//! mqo plan     <dataset> --dollars X [--queries N] [--method M]
//! mqo tables
//! ```
//!
//! Datasets: cora, citeseer, pubmed, ogbn-arxiv, ogbn-products.
//! Methods: zero-shot, 1hop, 2hop, sns, llmrank.
//!
//! Scale-out: `mqo partition` cuts a dataset into per-shard bundles plus
//! a shard map; `mqo serve --shard-id I --shard-map F [--router A]`
//! serves one shard (pushing boundary pseudo-labels to the router when
//! boosting); `mqo route` fronts the workers with ownership routing,
//! batch fan-out, health ejection, and the label exchange relay.
//!
//! Argument parsing is hand-rolled (std only) — the tool has seven verbs
//! and a few dozen flags, not enough to justify a parser dependency.

use mqo_bench::harness::Trace;
use mqo_core::boosting::{BoostConfig, DegradePolicy};
use mqo_core::journal::{RunHeader, RunJournal};
use mqo_core::metrics::ConfusionMatrix;
use mqo_core::planner::plan_campaign;
use mqo_core::predictor::{KhopRandom, LlmRanked, Predictor, Sns, ZeroShot};
use mqo_core::pruning::PrunePlan;
use mqo_core::surrogate::SurrogateConfig;
use mqo_core::{Executor, InadequacyScorer, LabelStore, Labels, SchedulePolicy, Scheduler};
use mqo_data::{dataset, persist, DatasetBundle, DatasetId};
use mqo_fault::{FaultConfig, FaultSchedule, FaultyLlm};
use mqo_graph::{LabeledSplit, NodeId, SplitConfig};
use mqo_llm::{
    CachedLlm, LanguageModel, LenientLlm, ModelProfile, ResilienceConfig, ResilientLlm,
    RetryingLlm, SimLlm, ValidatingLlm,
};
use mqo_obs::{
    ChromeTraceSink, CostLedger, Fanout, MetricsServer, MetricsSink, MonotonicClock, SpanId,
    Tracer, WaitClock,
};
use mqo_serve::{ServeConfig, ServerOptions};
use mqo_token::GPT_35_TURBO_0125;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         mqo generate <dataset> [--scale S] [--seed N] --out FILE\n  \
         mqo inspect  FILE\n  \
         mqo classify <dataset|FILE> [--method zero-shot|1hop|2hop|sns|llmrank]\n               \
         [--queries N] [--prune TAU] [--boost] [--model gpt35|gpt4o-mini] [--threads T]\n               \
         [--deterministic] [--budget B] [--retries N] [--trace FILE] [--trace-chrome FILE]\n               \
         [--serve-metrics ADDR] [--cost-json FILE] [--cache-cap N] [--no-cache]\n               \
         [--repeat K] [--batch B] [--stats-json FILE]\n               \
         [--faults error=R,malformed=R,rate-limit=R,latency=R,truncate=R,outage=S+L]\n               \
         [--fault-kill-after N] [--journal FILE] [--resume] [--dump-records FILE]\n  \
         mqo serve    <dataset|FILE> [--addr A] [--method M] [--queries N] [--workers W]\n               \
         [--queue-cap Q] [--budget B] [--boost] [--tenants a=1000,b=500]\n               \
         [--tenant-budget N] [--cache-cap N] [--no-cache] [--retries N]\n               \
         [--faults SPEC] [--journal FILE] [--resume] [--trace-chrome FILE]\n               \
         [--slo-p99-ms MS] [--slo-availability F] [--flight-slow N]\n               \
         [--flight-errors N] [--flight-dump FILE]\n               \
         [--cost-json FILE] [--stats-json FILE] [--addr-file FILE]\n               \
         [--sojourn-target-ms MS] [--shed-interval-ms MS] [--tenant-share-permille P]\n               \
         [--brownout-enter MILLI] [--brownout-exit MILLI]\n               \
         [--chaos reset=R,stall=R,partial=R,abort=R,stall-millis=MS]\n               \
         [--chaos-seed N] [--chaos-addr-file FILE]\n               \
         [--shard-id I --shard-map FILE] [--router ADDR]\n               \
         [--exchange-interval-ms MS]\n  \
         mqo partition <dataset|FILE> --shards K --out-dir DIR [--seed N] [--scale S]\n               \
         [--strategy edge-cut|ring] [--stats-json FILE]\n  \
         mqo route    MAPFILE --workers ADDR,ADDR,... [--addr A] [--addr-file FILE]\n               \
         [--eject-after N] [--probe-interval-ms MS]\n  \
         mqo plan     <dataset> --dollars X [--queries N] [--method M]\n  \
         mqo tables"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags take no value; value flags consume the next arg.
            match name {
                "boost" | "no-cache" | "resume" | "deterministic" => {
                    flags.insert(name.to_string(), "true".to_string());
                    i += 1;
                }
                _ => {
                    if i + 1 < args.len() {
                        flags.insert(name.to_string(), args[i + 1].clone());
                        i += 2;
                    } else {
                        flags.insert(name.to_string(), String::new());
                        i += 1;
                    }
                }
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn dataset_by_name(name: &str) -> Option<DatasetId> {
    DatasetId::ALL.into_iter().find(|id| id.name() == name)
}

/// Load from file when the argument looks like a path, else generate.
fn resolve_bundle(arg: &str, scale: Option<f64>, seed: u64) -> Result<DatasetBundle, String> {
    if let Some(id) = dataset_by_name(arg) {
        return Ok(dataset(id, scale, seed));
    }
    let path = std::path::Path::new(arg);
    if path.exists() {
        // Attach the spec whose name is stored in the file; fall back to
        // Cora's spec shape for foreign files.
        let probe = persist::load(path, DatasetId::Cora.spec())
            .map_err(|e| format!("cannot load {arg}: {e}"))?;
        let spec = dataset_by_name(probe.tag.name())
            .map(|id| id.spec())
            .unwrap_or_else(|| DatasetId::Cora.spec());
        return persist::load(path, spec).map_err(|e| format!("cannot load {arg}: {e}"));
    }
    Err(format!("'{arg}' is neither a known dataset nor an existing file"))
}

fn make_predictor(method: &str, bundle: &DatasetBundle) -> Result<Box<dyn Predictor>, String> {
    let n = bundle.tag.num_nodes();
    Ok(match method {
        "zero-shot" => Box::new(ZeroShot),
        "1hop" => Box::new(KhopRandom::new(1, n)),
        "2hop" => Box::new(KhopRandom::new(2, n)),
        "sns" => Box::new(Sns::fit(&bundle.tag)),
        "llmrank" => Box::new(LlmRanked::fit(&bundle.tag, 2)),
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn split_for(
    bundle: &DatasetBundle,
    queries: usize,
    seed: u64,
) -> Result<LabeledSplit, String> {
    let cfg = match bundle.spec.split {
        SplitConfig::PerClass { per_class, .. } => {
            SplitConfig::PerClass { per_class, num_queries: queries }
        }
        SplitConfig::Fraction { labeled_fraction, .. } => {
            SplitConfig::Fraction { labeled_fraction, num_queries: queries }
        }
    };
    LabeledSplit::generate(&bundle.tag, cfg, &mut StdRng::seed_from_u64(seed))
        .map_err(|e| format!("cannot split: {e}"))
}

fn cmd_generate(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let name = pos.first().ok_or("missing dataset name")?;
    let id = dataset_by_name(name).ok_or_else(|| format!("unknown dataset '{name}'"))?;
    let scale = flags.get("scale").map(|s| s.parse().map_err(|_| "bad --scale")).transpose()?;
    let seed = flags.get("seed").map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
    let out = flags.get("out").ok_or("missing --out FILE")?;
    let bundle = dataset(id, scale, seed);
    persist::save(&bundle, out).map_err(|e| format!("cannot save: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges) to {out}",
        bundle.tag.name(),
        bundle.tag.num_nodes(),
        bundle.tag.num_edges()
    );
    Ok(())
}

fn cmd_inspect(pos: &[String]) -> Result<(), String> {
    let arg = pos.first().ok_or("missing file or dataset")?;
    let bundle = resolve_bundle(arg, None, 42)?;
    let s = mqo_graph::stats::summarize(&bundle.tag);
    println!("dataset     : {}", s.name);
    println!("nodes       : {}", s.nodes);
    println!("edges       : {}", s.edges);
    println!("classes     : {}", s.classes);
    println!("homophily   : {:.3}", s.homophily);
    println!("mean degree : {:.2}", s.mean_degree);
    println!("text words  : {:.0} per node", s.mean_text_words);
    println!("scale       : {:.4}", bundle.scale);
    Ok(())
}

fn cmd_classify(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let arg = pos.first().ok_or("missing dataset or file")?;
    let seed = flags.get("seed").map_or(Ok(42u64), |s| s.parse().map_err(|_| "bad --seed"))?;
    let bundle = resolve_bundle(arg, flags.get("scale").and_then(|s| s.parse().ok()), seed)?;
    let queries: usize =
        flags.get("queries").map_or(Ok(200), |s| s.parse().map_err(|_| "bad --queries"))?;
    let method = flags.get("method").map(String::as_str).unwrap_or("1hop");
    let threads: usize =
        flags.get("threads").map_or(Ok(1), |s| s.parse().map_err(|_| "bad --threads"))?;
    let profile = match flags.get("model").map(String::as_str) {
        None | Some("gpt35") => ModelProfile::gpt35(),
        Some("gpt4o-mini") => ModelProfile::gpt4o_mini(),
        Some(other) => return Err(format!("unknown model '{other}'")),
    };

    // `--repeat K` replays the query list K times — the serving-style
    // workload (overlapping traffic) where a response cache pays off.
    let repeat: usize =
        flags.get("repeat").map_or(Ok(1), |s| s.parse().map_err(|_| "bad --repeat"))?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    let budget: Option<u64> =
        flags.get("budget").map(|b| b.parse().map_err(|_| "bad --budget")).transpose()?;

    let split = split_for(&bundle, queries, seed)?;
    // The client stack a production deployment runs: simulated model →
    // fault injection (identity pass-through without --faults) →
    // resilience (backoff, deadline, circuit breaker, rate-limit pacing)
    // → strict format validation → bounded retries with the format
    // reminder → lenient recovery (the executor's deterministic parse
    // fallback is the last resort rather than aborting a campaign).
    // Validation sits *above* resilience so the breaker counts transport
    // failures only, never format rejections.
    // With a hard budget the retry layer re-checks each retried prompt
    // against Eq. 2, so retries stay on by default either way.
    let retries: u32 =
        flags.get("retries").map_or(Ok(3), |s| s.parse().map_err(|_| "bad --retries"))?;
    let trace = flags
        .get("trace")
        .map(Trace::create)
        .transpose()
        .map_err(|e| format!("cannot create trace file: {e}"))?;
    let chrome = flags
        .get("trace-chrome")
        .map(ChromeTraceSink::create)
        .transpose()
        .map_err(|e| format!("cannot create chrome trace file: {e}"))?
        .map(Arc::new);
    let metrics = flags.get("serve-metrics").map(|_| Arc::new(MetricsSink::new()));
    let ledger = flags.get("cost-json").map(|_| Arc::new(CostLedger::new()));
    // Spans are stamped from the process monotonic clock only when a
    // Chrome trace asked for them; the disabled tracer otherwise makes
    // every span a free no-op (no ids, no clock reads, no events).
    let tracer = Arc::new(if chrome.is_some() {
        Tracer::new(Arc::new(MonotonicClock))
    } else {
        Tracer::disabled()
    });
    // Every observer shares one fanout; the cache invalidator joins it
    // below once the client stack exists.
    let fanout = Arc::new(Fanout::new());
    if let Some(t) = &trace {
        fanout.push(Arc::new(t.clone()));
    }
    if let Some(c) = &chrome {
        fanout.push(c.clone());
    }
    if let Some(m) = &metrics {
        fanout.push(m.clone());
    }
    if let Some(l) = &ledger {
        fanout.push(l.clone());
    }
    let observed = !fanout.is_empty();

    let wait_clock: Arc<dyn WaitClock> = Arc::new(MonotonicClock);
    let sim = SimLlm::new(bundle.lexicon.clone(), bundle.tag.class_names().to_vec(), profile);
    let schedule = match flags.get("faults") {
        Some(spec) => {
            let cfg = FaultConfig::parse(spec).map_err(|e| format!("bad --faults: {e}"))?;
            FaultSchedule::seeded(seed, cfg)
        }
        None => FaultSchedule::clean(),
    };
    let mut faulty = FaultyLlm::new(sim, schedule, wait_clock.clone());
    if let Some(n) = flags.get("fault-kill-after") {
        faulty = faulty.with_kill_after(n.parse().map_err(|_| "bad --fault-kill-after")?);
    }
    if observed {
        faulty = faulty.with_sink(fanout.clone());
    }
    let mut resilient = ResilientLlm::new(
        faulty,
        ResilienceConfig { seed, ..ResilienceConfig::default() },
        wait_clock,
    );
    if observed {
        resilient = resilient.with_sink(fanout.clone());
    }
    if tracer.enabled() {
        resilient = resilient.with_tracer(tracer.clone());
    }
    let mut retrying = RetryingLlm::new(
        ValidatingLlm::new(resilient, bundle.tag.class_names().to_vec()),
        retries.max(1),
    );
    if let Some(b) = budget {
        retrying = retrying.with_budget(b);
    }
    if observed {
        retrying = retrying.with_sink(fanout.clone());
    }
    if tracer.enabled() {
        retrying = retrying.with_tracer(tracer.clone());
    }
    // The response cache wraps the *whole* stack so hits skip validation
    // and retries entirely; `--no-cache` keeps the wrapper (capacity 0 is
    // a transparent pass-through) so both arms run identical code.
    let cache_cap: usize = if flags.contains_key("no-cache") {
        0
    } else {
        flags.get("cache-cap").map_or(Ok(4096), |s| s.parse().map_err(|_| "bad --cache-cap"))?
    };
    let llm = CachedLlm::new(LenientLlm::new(retrying), cache_cap);
    let m = if bundle.tag.name() == "ogbn-products" { 10 } else { 4 };
    // Round-based invalidation rides the telemetry stream: the invalidator
    // is an event sink that advances the cache epoch on RoundCompleted, so
    // boosting-enriched prompts are never answered from a previous round.
    let invalidator = llm.round_invalidator();
    fanout.push(Arc::new(invalidator));
    // The run journal is created (or resumed) before the executor borrows
    // it; the header fingerprints the run shape so `--resume` refuses a
    // journal written by a different campaign.
    let journal: Option<RunJournal> = match flags.get("journal") {
        Some(path) => {
            let header = RunHeader {
                dataset: bundle.tag.name().to_string(),
                method: method.to_string(),
                seed,
                queries: (split.queries().len() * repeat) as u64,
                boost: flags.contains_key("boost"),
                budget,
            };
            Some(if flags.contains_key("resume") {
                RunJournal::resume(path, &header)
                    .map_err(|e| format!("cannot resume journal {path}: {e}"))?
            } else {
                RunJournal::create(path, &header)
                    .map_err(|e| format!("cannot create journal {path}: {e}"))?
            })
        }
        None if flags.contains_key("resume") => {
            return Err("--resume requires --journal FILE".into())
        }
        None => None,
    };
    // Degraded mode is always on in the CLI: a failed query becomes a
    // recorded outcome instead of aborting the whole campaign.
    let mut exec = Executor::new(&bundle.tag, &llm, m, seed)
        .with_sink(&*fanout)
        .with_tracer(&tracer)
        .with_degrade();
    if let Some(j) = &journal {
        exec = exec.with_journal(j);
    }
    if let Some(b) = budget {
        exec = exec.with_budget(b);
    }
    if observed {
        llm.meter().attach_sink(fanout.clone());
    }
    let predictor = make_predictor(method, &bundle)?;

    let run_queries: Vec<NodeId> = split.queries().repeat(repeat);

    let plan = match flags.get("prune") {
        Some(tau_s) => {
            let tau: f64 = tau_s.parse().map_err(|_| "bad --prune")?;
            let scorer =
                InadequacyScorer::build(&exec, &split, &SurrogateConfig::small(seed), 10, seed)
                    .map_err(|e| format!("scorer: {e}"))?;
            PrunePlan::by_inadequacy(&scorer, &bundle.tag, split.queries(), tau)
        }
        None => PrunePlan::default(),
    };

    // The metrics endpoint comes up before the run so `/metrics` and
    // `/progress` can be polled while queries are in flight; it stays up
    // until the process exits.
    let _server = match (&metrics, flags.get("serve-metrics")) {
        (Some(m), Some(addr)) => {
            let srv = MetricsServer::start(addr, m.clone())
                .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
            println!("metrics         : http://{}/metrics (and /progress)", srv.addr());
            Some(srv)
        }
        _ => None,
    };

    // Root span of the whole campaign. Workers and rounds with no open
    // span on their own thread inherit it through the executor's scope.
    let run_span = tracer.span(
        &*fanout,
        "run",
        || format!("classify {} ({method})", bundle.tag.name()),
        SpanId::NONE,
    );
    exec.set_span_scope(run_span.id());

    let run_started = std::time::Instant::now();
    // One execution core for every shape of run: the scheduler policy is
    // the only thing the flags choose.
    let deterministic = flags.contains_key("deterministic");
    let outcome = if flags.contains_key("boost") {
        let mut labels = LabelStore::from_split(&bundle.tag, &split);
        let report = Scheduler::new(
            &exec,
            SchedulePolicy::CueGated {
                config: BoostConfig::default(),
                policy: DegradePolicy::default(),
                threads: threads.max(1),
                // Width 1 is deterministic by construction; wider runs
                // free-run unless --deterministic asks for wave barriers.
                deterministic: deterministic || threads <= 1,
            },
        )
        .run(predictor.as_ref(), Labels::Boosting(&mut labels), &run_queries, |v| {
            plan.is_pruned(v)
        })
        .map_err(|e| format!("boosting: {e}"))?;
        println!("boosting rounds: {}", report.rounds.len());
        report.outcome
    } else {
        let labels = LabelStore::from_split(&bundle.tag, &split);
        let policy = if let Some(b) = flags.get("batch") {
            let batch: usize = b.parse().map_err(|_| "bad --batch")?;
            SchedulePolicy::Batched { threads: threads.max(1), batch_size: batch.max(1) }
        } else if threads > 1 {
            SchedulePolicy::Parallel { threads }
        } else {
            SchedulePolicy::Fifo
        };
        Scheduler::new(&exec, policy)
            .run(predictor.as_ref(), Labels::Fixed(&labels), &run_queries, |v| {
                plan.is_pruned(v)
            })
            .map_err(|e| format!("run: {e}"))?
            .outcome
    };
    let wall_seconds = run_started.elapsed().as_secs_f64();
    drop(run_span);

    let matrix = ConfusionMatrix::from_outcome(&bundle.tag, &outcome);
    println!("method          : {}", predictor.name());
    println!("queries         : {}", outcome.records.len());
    println!("accuracy        : {:.1}%", outcome.accuracy() * 100.0);
    println!("macro F1        : {:.3}", matrix.macro_f1());
    println!("with neighbors  : {}", outcome.queries_with_neighbors());
    println!("prompt tokens   : {}", outcome.prompt_tokens());
    let totals = llm.meter().totals();
    if let Some(b) = exec.budget {
        println!(
            "budget          : {} of {} input tokens spent ({} queries starved)",
            totals.prompt_tokens,
            b,
            outcome.budget_starved(),
        );
    }
    if outcome.failed() > 0 {
        println!("failed queries  : {}", outcome.failed());
    }
    if let Some(j) = &journal {
        println!(
            "journal         : {} ({} replayed, {} recorded)",
            j.path().display(),
            j.replayed(),
            j.recorded(),
        );
    }
    println!(
        "est. cost       : ${:.4} at {} prices",
        GPT_35_TURBO_0125.cost(totals),
        GPT_35_TURBO_0125.name
    );
    let cstats = llm.stats();
    if cache_cap > 0 {
        println!(
            "cache           : {} hit, {} miss, {} coalesced ({:.1}% served; {} evict, {} stale)",
            cstats.cache.hits,
            cstats.cache.misses,
            cstats.coalesced,
            100.0 * cstats.serve_rate(),
            cstats.cache.evictions,
            cstats.cache.stale_drops,
        );
        println!(
            "tokens saved    : {} (+{} radix-prefix reusable)",
            cstats.tokens_saved, cstats.prefix_reuse_tokens,
        );
    }
    if observed {
        llm.report(&*fanout);
    }
    if let Some(t) = &trace {
        mqo_obs::EventSink::flush(t);
        print!("{}", t.summary());
        println!("trace written   : {}", flags["trace"]);
        let dropped = t.dropped();
        if dropped > 0 {
            if let Some(m) = &metrics {
                m.add_events_dropped(dropped);
            }
            println!(
                "warning         : {dropped} event(s) evicted from the summary ring \
                 (the JSONL trace file is complete)"
            );
        }
    }
    if let Some(c) = &chrome {
        mqo_obs::EventSink::flush(&**c);
        println!("chrome trace    : {} ({} spans)", flags["trace-chrome"], c.span_count());
    }
    if let Some(l) = &ledger {
        let report = l.report();
        print!("{report}");
        let reconciles = report.reconciles_with(totals.prompt_tokens);
        let path = &flags["cost-json"];
        std::fs::write(path, report.to_json(totals.prompt_tokens))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("cost ledger     : {path} (reconciles with meter: {reconciles})");
    }
    if let Some(path) = flags.get("stats-json") {
        let stats = serde_json::json!({
            "dataset": bundle.tag.name(),
            "method": predictor.name(),
            "queries": outcome.records.len(),
            "repeat": repeat,
            "cache_cap": cache_cap,
            "accuracy": outcome.accuracy(),
            "tokens_sent": totals.prompt_tokens,
            "requests_sent": totals.requests,
            "cache_hits": cstats.cache.hits,
            "cache_misses": cstats.cache.misses,
            "coalesced": cstats.coalesced,
            "serve_rate": cstats.serve_rate(),
            "tokens_saved": cstats.tokens_saved,
            "prefix_reuse_tokens": cstats.prefix_reuse_tokens,
            "failed": outcome.failed(),
            "replayed": journal.as_ref().map_or(0, |j| j.replayed()),
            "wall_seconds": wall_seconds,
        });
        let body =
            serde_json::to_string_pretty(&stats).map_err(|e| format!("stats json: {e}"))?;
        std::fs::write(path, body + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("stats written   : {path}");
    }
    if let Some(path) = flags.get("dump-records") {
        // Records sorted by node, one journal-format line each: resumed
        // and from-scratch runs of the same campaign must dump identical
        // bytes, which is exactly what the chaos gate diffs.
        let mut records = outcome.records.clone();
        records.sort_by_key(|r| (r.node.0, r.prompt_tokens));
        let mut body = String::new();
        for r in &records {
            let line = serde_json::to_string(&mqo_core::journal::record_to_json(r))
                .map_err(|e| format!("record json: {e}"))?;
            body.push_str(&line);
            body.push('\n');
        }
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("records written : {path}");
    }
    Ok(())
}

/// Long-running classification service over the same stack as
/// `classify`. Blocks until SIGTERM/SIGINT or `POST /v1/drain`, then
/// drains gracefully: in-flight work completes, the journal is sealed,
/// and artifacts (chrome trace, cost ledger, stats) are written — so a
/// `--resume` restart re-bills zero tokens.
/// Load a per-shard bundle file, probing the stored dataset name for
/// its spec (same two-pass trick as [`resolve_bundle`]).
fn load_shard_bundle(path: &str) -> Result<mqo_shard::ShardBundle, String> {
    let probe = mqo_shard::ShardBundle::load(path, DatasetId::Cora.spec())
        .map_err(|e| format!("cannot load shard bundle {path}: {e}"))?;
    let spec = dataset_by_name(probe.data.tag.name())
        .map(|id| id.spec())
        .unwrap_or_else(|| DatasetId::Cora.spec());
    mqo_shard::ShardBundle::load(path, spec)
        .map_err(|e| format!("cannot load shard bundle {path}: {e}"))
}

fn cmd_serve(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let arg = pos.first().ok_or("missing dataset or file")?;
    let seed = flags.get("seed").map_or(Ok(42u64), |s| s.parse().map_err(|_| "bad --seed"))?;
    let shard_id: Option<u32> =
        flags.get("shard-id").map(|s| s.parse().map_err(|_| "bad --shard-id")).transpose()?;

    let mut tenant_budgets = HashMap::new();
    if let Some(spec) = flags.get("tenants") {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, tokens) =
                part.split_once('=').ok_or("bad --tenants (want name=tokens,...)")?;
            tenant_budgets.insert(
                name.to_string(),
                tokens.parse().map_err(|_| "bad --tenants token budget")?,
            );
        }
    }
    let cache_cap: usize = if flags.contains_key("no-cache") {
        0
    } else {
        flags.get("cache-cap").map_or(Ok(4096), |s| s.parse().map_err(|_| "bad --cache-cap"))?
    };
    let cfg = ServeConfig {
        method: flags.get("method").cloned().unwrap_or_else(|| "1hop".into()),
        seed,
        split_queries: flags
            .get("queries")
            .map_or(Ok(200), |s| s.parse().map_err(|_| "bad --queries"))?,
        max_neighbors: 0,
        budget: flags
            .get("budget")
            .map(|b| b.parse().map_err(|_| "bad --budget"))
            .transpose()?,
        retries: flags
            .get("retries")
            .map_or(Ok(3), |s| s.parse().map_err(|_| "bad --retries"))?,
        cache_cap,
        boost: flags.contains_key("boost"),
        faults: flags.get("faults").cloned(),
        journal: flags.get("journal").map(PathBuf::from),
        resume: flags.contains_key("resume"),
        trace_chrome: flags.get("trace-chrome").map(PathBuf::from),
        tenant_budgets,
        default_tenant_budget: flags
            .get("tenant-budget")
            .map(|b| b.parse().map_err(|_| "bad --tenant-budget"))
            .transpose()?,
        slo_p99_ms: flags
            .get("slo-p99-ms")
            .map(|b| b.parse().map_err(|_| "bad --slo-p99-ms"))
            .transpose()?,
        slo_availability: flags
            .get("slo-availability")
            .map_or(Ok(0.999), |s| s.parse().map_err(|_| "bad --slo-availability"))?,
        flight_slow: flags
            .get("flight-slow")
            .map_or(Ok(32), |s| s.parse().map_err(|_| "bad --flight-slow"))?,
        flight_errors: flags
            .get("flight-errors")
            .map_or(Ok(64), |s| s.parse().map_err(|_| "bad --flight-errors"))?,
    };
    let engine = Arc::new(match shard_id {
        Some(id) => {
            // Sharded worker: the positional argument is a per-shard
            // bundle file cut by `mqo partition`.
            let map_path = flags.get("shard-map").ok_or("--shard-id needs --shard-map FILE")?;
            let map = mqo_shard::ShardMap::load(map_path)
                .map_err(|e| format!("cannot load shard map {map_path}: {e}"))?;
            let sb = load_shard_bundle(arg)?;
            if sb.identity.shard_id != id {
                return Err(format!(
                    "{arg} holds shard {} but --shard-id asked for {id}",
                    sb.identity.shard_id
                ));
            }
            mqo_serve::Engine::new_sharded(sb, map, cfg)?
        }
        None => {
            let bundle =
                resolve_bundle(arg, flags.get("scale").and_then(|s| s.parse().ok()), seed)?;
            mqo_serve::Engine::new(bundle, cfg)?
        }
    });
    let mut overload = mqo_serve::OverloadConfig::default();
    if let Some(ms) = flags.get("sojourn-target-ms") {
        overload.sojourn_target_micros =
            ms.parse::<u64>().map_err(|_| "bad --sojourn-target-ms")?.saturating_mul(1_000);
    }
    if let Some(ms) = flags.get("shed-interval-ms") {
        overload.shed_interval_micros =
            ms.parse::<u64>().map_err(|_| "bad --shed-interval-ms")?.saturating_mul(1_000);
    }
    if let Some(p) = flags.get("tenant-share-permille") {
        overload.tenant_share_permille =
            p.parse().map_err(|_| "bad --tenant-share-permille")?;
    }
    if let Some(m) = flags.get("brownout-enter") {
        overload.brownout_enter_milli = m.parse().map_err(|_| "bad --brownout-enter")?;
    }
    if let Some(m) = flags.get("brownout-exit") {
        overload.brownout_exit_milli = m.parse().map_err(|_| "bad --brownout-exit")?;
    }
    let public_addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:8080".into());
    let chaos = flags
        .get("chaos")
        .map(|spec| mqo_fault::NetFaultConfig::parse(spec))
        .transpose()
        .map_err(|e| format!("bad --chaos: {e}"))?;
    let options = ServerOptions {
        // Under network chaos the proxy owns the public address and the
        // server hides behind it on a free port.
        addr: if chaos.is_some() { "127.0.0.1:0".into() } else { public_addr.clone() },
        workers: flags
            .get("workers")
            .map_or(Ok(4), |s| s.parse().map_err(|_| "bad --workers"))?,
        queue_capacity: flags
            .get("queue-cap")
            .map_or(Ok(64), |s| s.parse().map_err(|_| "bad --queue-cap"))?,
        overload,
    };
    let workers = options.workers;
    let server = mqo_serve::Server::start(Arc::clone(&engine), options)
        .map_err(|e| format!("cannot serve: {e}"))?;
    // Chaos injections are announced through the engine's own fanout so
    // they land in the same metrics registry and flight recorder as
    // everything else.
    struct EngineSink(Arc<mqo_serve::Engine>);
    impl mqo_obs::EventSink for EngineSink {
        fn emit(&self, event: &mqo_obs::Event) {
            self.0.fanout().emit(event);
        }
    }
    let proxy = match chaos {
        None => None,
        Some(net_cfg) => {
            let chaos_seed = flags
                .get("chaos-seed")
                .map_or(Ok(seed), |s| s.parse().map_err(|_| "bad --chaos-seed"))?;
            let schedule = mqo_fault::NetFaultSchedule::seeded(chaos_seed, net_cfg);
            let sink: Arc<dyn mqo_obs::EventSink> = Arc::new(EngineSink(Arc::clone(&engine)));
            Some(
                mqo_fault::ChaosProxy::start(&public_addr, server.addr(), schedule, sink)
                    .map_err(|e| format!("cannot start chaos proxy on {public_addr}: {e}"))?,
            )
        }
    };
    let public = proxy.as_ref().map_or(server.addr(), |p| p.addr());
    println!("serving         : http://{public}/v1/classify");
    println!(
        "endpoints       : /v1/healthz /v1/stats /v1/slo /v1/debug/flight /v1/drain \
         /metrics /progress"
    );
    if proxy.is_some() {
        println!("chaos proxy     : fronting http://{} (direct, fault-free)", server.addr());
    }
    if let Some(path) = flags.get("addr-file") {
        std::fs::write(path, format!("{public}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = flags.get("chaos-addr-file") {
        std::fs::write(path, format!("{}\n", server.addr()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    // Sharded worker extras: announce the identity, and (when a router
    // address was given) start the background label exchanger pushing
    // boundary pseudo-labels for cross-shard boosting.
    if let Some(ctx) = engine.shard() {
        println!(
            "shard           : {} of {} ({} owned + {} halo nodes)",
            ctx.identity.shard_id,
            ctx.identity.num_shards,
            ctx.identity.num_owned(),
            ctx.identity.num_locals() - ctx.identity.num_owned(),
        );
    }
    let exchanger = match (engine.shard(), flags.get("router")) {
        (Some(_), Some(router)) => {
            let addr: std::net::SocketAddr = router
                .parse()
                .map_err(|_| format!("bad --router '{router}' (want IP:PORT)"))?;
            let interval_ms: u64 = flags
                .get("exchange-interval-ms")
                .map_or(Ok(200), |s| s.parse().map_err(|_| "bad --exchange-interval-ms"))?;
            println!(
                "label exchange  : pushing to http://{addr}/v1/labels every {interval_ms}ms"
            );
            Some(mqo_serve::LabelExchanger::start(
                Arc::clone(&engine),
                addr,
                std::time::Duration::from_millis(interval_ms),
            ))
        }
        _ => None,
    };

    mqo_serve::signal::install_term_handler();
    while !mqo_serve::signal::term_requested() && !engine.drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("drain requested : finishing in-flight work");
    if let Some(p) = proxy {
        let injected = p.injected();
        p.stop();
        println!("chaos proxy     : stopped after {injected} injected fault(s)");
    }
    let report = server.drain();
    // Stop the exchanger after the drain so the last in-flight batch's
    // boundary labels still get a final push.
    if let Some(ex) = exchanger {
        ex.stop();
    }

    let totals = engine.totals();
    println!("queries         : {} ({} replayed)", report.queries, report.replayed);
    println!("tokens billed   : {}", totals.prompt_tokens);
    if report.journal_sealed {
        if let Some(j) = engine.journal() {
            println!("journal sealed  : {}", j.path().display());
        }
    }
    let cstats = engine.cache_stats();
    if cache_cap > 0 {
        println!(
            "cache           : {} hit, {} miss, {} coalesced ({:.1}% served)",
            cstats.cache.hits,
            cstats.cache.misses,
            cstats.coalesced,
            100.0 * cstats.serve_rate(),
        );
    }
    let (flight_slow, flight_errors) = engine.flight().retained();
    println!(
        "flight recorder : {flight_slow} slow + {flight_errors} error request(s) retained"
    );
    if let Some(path) = flags.get("flight-dump") {
        std::fs::write(path, engine.flight().to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("flight dump     : {path}");
    }
    for t in &engine.slo().report().tenants {
        println!(
            "slo [{}]        : short burn {:.2} ({} good / {} bad), long burn {:.2} ({} good / {} bad)",
            t.tenant,
            t.short.burn_rate,
            t.short.good,
            t.short.bad,
            t.long.burn_rate,
            t.long.good,
            t.long.bad,
        );
    }
    if let Some(path) = flags.get("cost-json") {
        let ledger_report = engine.ledger().report();
        std::fs::write(path, ledger_report.to_json(totals.prompt_tokens))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "cost ledger     : {path} (reconciles with meter: {})",
            ledger_report.reconciles_with(totals.prompt_tokens)
        );
    }
    if let Some(spans) = engine.chrome_span_count() {
        println!("chrome trace    : {} ({spans} spans)", flags["trace-chrome"]);
    }
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(path, engine.stats_json(None, workers))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("stats written   : {path}");
    }
    Ok(())
}

/// Cut a dataset into per-shard bundles plus the shard map.
fn cmd_partition(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let arg = pos.first().ok_or("missing dataset or file")?;
    let seed = flags.get("seed").map_or(Ok(42u64), |s| s.parse().map_err(|_| "bad --seed"))?;
    let bundle = resolve_bundle(arg, flags.get("scale").and_then(|s| s.parse().ok()), seed)?;
    let shards: u32 =
        flags.get("shards").ok_or("missing --shards K")?.parse().map_err(|_| "bad --shards")?;
    if shards == 0 || shards as usize > bundle.tag.num_nodes() {
        return Err(format!(
            "--shards must be in 1..={} for this graph",
            bundle.tag.num_nodes()
        ));
    }
    let strategy = match flags.get("strategy").map(String::as_str) {
        None | Some("edge-cut") => mqo_shard::PartitionStrategy::EdgeCut,
        Some("ring") => mqo_shard::PartitionStrategy::Ring,
        Some(other) => return Err(format!("unknown strategy '{other}' (edge-cut|ring)")),
    };
    let out_dir = flags.get("out-dir").ok_or("missing --out-dir DIR")?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;

    let map = mqo_shard::partition(bundle.tag.graph(), shards, seed, strategy);
    let map_path = format!("{out_dir}/shard-map.bin");
    map.save(&map_path).map_err(|e| format!("cannot save shard map: {e}"))?;
    println!(
        "partitioned {} ({} nodes, {} edges) into {} shard(s), seed {}",
        bundle.tag.name(),
        bundle.tag.num_nodes(),
        bundle.tag.num_edges(),
        shards,
        seed
    );
    println!("shard map       : {map_path}");
    for s in 0..shards {
        let sb = mqo_shard::extract_shard(&bundle, &map, s);
        let path = format!("{out_dir}/shard-{s}.bin");
        sb.save(&path).map_err(|e| format!("cannot save shard {s}: {e}"))?;
        let stats = map.stats(s);
        println!(
            "  shard {s}      : {} owned + {} halo nodes, {} internal / {} cut edges → {path}",
            stats.owned_nodes,
            sb.num_locals() - sb.num_owned(),
            stats.internal_edges,
            stats.cut_edges,
        );
    }
    let cut_pct = if bundle.tag.num_edges() == 0 {
        0.0
    } else {
        100.0 * map.total_cut() as f64 / bundle.tag.num_edges() as f64
    };
    println!(
        "total cut       : {} of {} edges ({cut_pct:.2}%)",
        map.total_cut(),
        bundle.tag.num_edges()
    );
    if let Some(path) = flags.get("stats-json") {
        std::fs::write(path, map.stats_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("stats written   : {path}");
    }
    Ok(())
}

/// Front a set of shard workers with the consistent routing layer.
fn cmd_route(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let map_path = pos.first().ok_or("missing shard-map file")?;
    let map = mqo_shard::ShardMap::load(map_path)
        .map_err(|e| format!("cannot load shard map {map_path}: {e}"))?;
    let workers_spec = flags
        .get("workers")
        .ok_or("missing --workers ADDR,ADDR,... (one per shard, in shard-id order)")?;
    let shards: Vec<std::net::SocketAddr> = workers_spec
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad worker address '{}'", s.trim())))
        .collect::<Result<_, String>>()?;
    if shards.len() as u32 != map.num_shards() {
        return Err(format!(
            "map has {} shards but --workers lists {} address(es)",
            map.num_shards(),
            shards.len()
        ));
    }
    let mut cfg = mqo_shard::RouterConfig::new(shards);
    if let Some(n) = flags.get("eject-after") {
        cfg.eject_after = n.parse().map_err(|_| "bad --eject-after")?;
    }
    if let Some(ms) = flags.get("probe-interval-ms") {
        cfg.probe_interval = std::time::Duration::from_millis(
            ms.parse().map_err(|_| "bad --probe-interval-ms")?,
        );
    }
    let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:9090".into());
    let num_shards = map.num_shards();
    let router = mqo_shard::Router::start(&addr, map, cfg)
        .map_err(|e| format!("cannot route on {addr}: {e}"))?;
    println!(
        "routing         : http://{}/v1/classify over {num_shards} shard(s)",
        router.addr()
    );
    println!("endpoints       : /v1/healthz /v1/stats /v1/labels /metrics");
    if let Some(path) = flags.get("addr-file") {
        std::fs::write(path, format!("{}\n", router.addr()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    mqo_serve::signal::install_term_handler();
    while !mqo_serve::signal::term_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down   : router");
    router.shutdown();
    Ok(())
}

fn cmd_plan(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let arg = pos.first().ok_or("missing dataset")?;
    let seed = 42;
    let bundle = resolve_bundle(arg, None, seed)?;
    let dollars: f64 = flags
        .get("dollars")
        .ok_or("missing --dollars X")?
        .parse()
        .map_err(|_| "bad --dollars")?;
    let queries: usize =
        flags.get("queries").map_or(Ok(1000), |s| s.parse().map_err(|_| "bad --queries"))?;
    let method = flags.get("method").map(String::as_str).unwrap_or("1hop");

    let split = split_for(&bundle, queries, seed)?;
    let llm = SimLlm::new(
        bundle.lexicon.clone(),
        bundle.tag.class_names().to_vec(),
        ModelProfile::gpt35(),
    );
    let exec = Executor::new(&bundle.tag, &llm, 4, seed);
    let predictor = make_predictor(method, &bundle)?;
    let labels = LabelStore::from_split(&bundle.tag, &split);
    let plan = plan_campaign(
        &exec,
        predictor.as_ref(),
        &labels,
        split.queries(),
        30,
        &GPT_35_TURBO_0125,
        dollars,
    )
    .map_err(|e| format!("plan: {e}"))?;
    println!("campaign plan for {} × {} queries ({method}):", bundle.tag.name(), plan.queries);
    println!(
        "  mean tokens/query    : {:.0} ({:.0} neighbor text)",
        plan.tokens_full, plan.tokens_neighbor
    );
    println!(
        "  unoptimized          : {:.0} tokens = ${:.4}",
        plan.est_tokens_unpruned, plan.est_cost_unpruned
    );
    println!("  budget               : ${dollars:.4}");
    println!("  → prune τ            : {:.0}%", plan.tau * 100.0);
    println!(
        "  planned              : {:.0} tokens = ${:.4}",
        plan.est_tokens_planned, plan.est_cost_planned
    );
    Ok(())
}

fn cmd_tables() {
    println!(
        "table/figure → regenerating binary (cargo run --release -p mqo-bench --bin <name>)"
    );
    for (what, bin) in [
        ("Fig. 1    — GNN vs LLM paradigms", "fig1_paradigm"),
        ("Fig. 2    — partial information decomposition", "fig2_pid"),
        ("Table II  — dataset statistics", "table2_datasets"),
        ("Table III — prompt templates", "table3_prompts"),
        ("Fig. 3    — IG proxy by label presence", "fig3_info_gain"),
        ("Table IV  — token pruning × methods", "table4_prune_methods"),
        ("Fig. 7    — budget sweep, ranked vs random", "fig7_budget_sweep"),
        ("Table V   — reducible tokens", "table5_savings"),
        ("Table VI  — inadequacy separation", "table6_inadequacy"),
        ("Fig. 8    — scheduling utilization", "fig8_scheduling"),
        ("Table VII — query boosting", "table7_boost"),
        ("Table VIII— joint strategy", "table8_joint"),
        ("Table IX  — instruction-tuned backbones", "table9_instruct"),
        ("Table X   — link prediction", "table10_linkpred"),
        ("Extension — graph-level pruning (§VII)", "ext_graphlevel"),
        ("Analysis  — prefix sharing (§II-C context)", "prefix_sharing"),
        ("Analysis  — accuracy/cost frontier (intro)", "cost_frontier"),
        ("Ablations — γ, ranking quality, SNS dim", "ablations"),
        ("Calibration check", "calibrate"),
    ] {
        println!("  {what:44} {bin}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(verb) = args.first() else { return usage() };
    let (pos, flags) = parse_flags(&args[1..]);
    let result = match verb.as_str() {
        "generate" => cmd_generate(&pos, &flags),
        "inspect" => cmd_inspect(&pos),
        "classify" => cmd_classify(&pos, &flags),
        "plan" => cmd_plan(&pos, &flags),
        "serve" => cmd_serve(&pos, &flags),
        "partition" => cmd_partition(&pos, &flags),
        "route" => cmd_route(&pos, &flags),
        "tables" => {
            cmd_tables();
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
