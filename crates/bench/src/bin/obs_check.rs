//! `obs_check` — CI validator for the observability artifacts.
//!
//! ```text
//! obs_check <chrome_trace.json> <cost.json> [flight.json]
//! ```
//!
//! Checks the artifacts `mqo classify --trace-chrome --cost-json`
//! produces on the smoke workload (plus, optionally, a flight-recorder
//! dump from `mqo serve`):
//!
//! * the Chrome trace is valid JSON in trace-event format, every span's
//!   parent exists, children nest *inside* their parent's interval, and
//!   the causal chain is intact (`llm_call` under `query`, `query` under
//!   `round`/`run`, `retry` and `backoff` under `llm_call` — so on a
//!   faulty run every backoff and format retry is attributable to the
//!   exact model call that provoked it);
//! * the cost ledger conserves tokens — `billed == rendered −
//!   pruned_saved − cache_saved − starved − failed` per round and in
//!   total, the total is the sum of the rounds, and the recorded
//!   `unattributed` / `reconciles` fields match what the numbers
//!   actually say.
//! * the flight dump (when given): every retained entry carries a
//!   16-hex trace id, its span ids are unique, parent links resolve
//!   inside the entry (or to the serving run span outside it), children
//!   nest inside their parent's interval, and every slow-ring entry has
//!   a `request` span — so `/v1/debug/flight` output is always a
//!   causally well-formed tree, never a soup of orphaned spans.
//!
//! The gate is structural, not statistical: it holds on any workload, so
//! there is no baseline and no tolerance.

use std::collections::HashMap;
use std::process::ExitCode;

fn die(msg: &str) -> ExitCode {
    eprintln!("obs_check: {msg}");
    eprintln!("usage: obs_check <chrome_trace.json> <cost.json> [flight.json]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn u64_field(v: &serde_json::Value, name: &str, ctx: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("{ctx} has no numeric field '{name}'"))
}

/// One complete ("ph":"X") event from the trace.
struct Span {
    name: String,
    ts: u64,
    end: u64,
    parent: u64,
}

fn check_chrome(path: &str) -> Result<usize, String> {
    let doc = load(path)?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| format!("{path} has no traceEvents array"))?;

    let mut spans: HashMap<u64, Span> = HashMap::new();
    for ev in events {
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                let args = ev.get("args").ok_or("X event without args")?;
                let id = u64_field(args, "id", "span args")?;
                let ts = u64_field(ev, "ts", "span")?;
                let dur = u64_field(ev, "dur", "span")?;
                let span = Span {
                    name: ev
                        .get("name")
                        .and_then(|n| n.as_str())
                        .ok_or("span without name")?
                        .to_string(),
                    ts,
                    end: ts + dur,
                    parent: u64_field(args, "parent", "span args")?,
                };
                if spans.insert(id, span).is_some() {
                    return Err(format!("duplicate span id {id}"));
                }
            }
            Some("M") | None => {} // metadata rows gate nothing
            Some(other) => return Err(format!("unexpected event phase '{other}'")),
        }
    }
    if spans.is_empty() {
        return Err("trace contains no spans".into());
    }

    // Ancestor names of `id`, walking parent links (root excluded).
    let ancestors = |mut id: u64| -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let mut hops = 0;
        while id != 0 {
            let span = spans.get(&id).ok_or_else(|| format!("parent id {id} has no span"))?;
            names.push(span.name.clone());
            id = span.parent;
            hops += 1;
            if hops > spans.len() {
                return Err("parent links form a cycle".into());
            }
        }
        Ok(names)
    };

    let has_rounds = spans.values().any(|s| s.name == "round");
    let mut queries = 0usize;
    for (&id, span) in &spans {
        if span.parent != 0 {
            let parent = spans
                .get(&span.parent)
                .ok_or_else(|| format!("span {id} ({}) has unknown parent", span.name))?;
            if span.ts < parent.ts || span.end > parent.end {
                return Err(format!(
                    "span {id} ({}) [{}..{}] escapes parent {} [{}..{}]",
                    span.name, span.ts, span.end, parent.name, parent.ts, parent.end
                ));
            }
        }
        let up = ancestors(span.parent)?;
        match span.name.as_str() {
            "run" if span.parent != 0 => {
                return Err(format!("run span {id} is not a root"));
            }
            "query" => {
                queries += 1;
                if !up.iter().any(|n| n == "run") {
                    return Err(format!("query span {id} has no run ancestor"));
                }
                if has_rounds && !up.iter().any(|n| n == "round") {
                    return Err(format!("query span {id} outside every round"));
                }
            }
            "llm_call" if !up.iter().any(|n| n == "query") => {
                return Err(format!("llm_call span {id} has no query ancestor"));
            }
            "retry" | "backoff" if !up.iter().any(|n| n == "llm_call") => {
                return Err(format!("{} span {id} has no llm_call ancestor", span.name));
            }
            _ => {}
        }
    }
    if queries == 0 {
        return Err("trace contains no query spans".into());
    }
    Ok(spans.len())
}

/// `billed == rendered − pruned_saved − cache_saved − starved − failed`
/// for one ledger row; also returns the row's fields for the sum check.
fn check_conserves(row: &serde_json::Value, ctx: &str) -> Result<[u64; 8], String> {
    let fields = [
        "queries",
        "rendered_tokens",
        "billed_tokens",
        "pruned_saved_tokens",
        "cache_saved_tokens",
        "starved_tokens",
        "failed_tokens",
        "enrichment_tokens",
    ];
    let mut out = [0u64; 8];
    for (slot, name) in out.iter_mut().zip(fields) {
        *slot = u64_field(row, name, ctx)?;
    }
    let [_, rendered, billed, pruned, cached, starved, failed, _] = out;
    let expect = rendered
        .checked_sub(pruned)
        .and_then(|r| r.checked_sub(cached))
        .and_then(|r| r.checked_sub(starved))
        .and_then(|r| r.checked_sub(failed));
    if expect != Some(billed) {
        return Err(format!(
            "{ctx} violates conservation: billed {billed} != rendered {rendered} \
             - pruned {pruned} - cached {cached} - starved {starved} - failed {failed}"
        ));
    }
    if row.get("conserves").and_then(|c| c.as_bool()) != Some(true) {
        return Err(format!("{ctx} does not record conserves=true"));
    }
    Ok(out)
}

fn check_cost(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    let rounds = doc
        .get("rounds")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path} has no rounds array"))?;
    let mut sum = [0u64; 8];
    for (i, round) in rounds.iter().enumerate() {
        let row = check_conserves(round, &format!("{path} round {i}"))?;
        for (acc, x) in sum.iter_mut().zip(row) {
            *acc += x;
        }
    }
    let total =
        check_conserves(doc.get("total").ok_or_else(|| format!("{path} has no total"))?, path)?;
    if total != sum {
        return Err(format!("{path} total {total:?} is not the sum of its rounds {sum:?}"));
    }

    let meter = u64_field(&doc, "meter_billed_tokens", path)?;
    let unattributed = meter as i64 - total[2] as i64;
    let recorded = doc
        .get("unattributed_tokens")
        .and_then(|u| u.as_i64())
        .ok_or_else(|| format!("{path} has no unattributed_tokens"))?;
    if recorded != unattributed {
        return Err(format!(
            "{path} records unattributed {recorded} but meter {meter} - billed {} = {unattributed}",
            total[2]
        ));
    }
    if unattributed < 0 {
        return Err(format!("{path} attributes more than the meter billed ({unattributed})"));
    }
    let reconciles = doc.get("reconciles").and_then(|r| r.as_bool()).unwrap_or(false);
    if reconciles != (unattributed == 0) {
        return Err(format!(
            "{path} records reconciles={reconciles} but unattributed is {unattributed}"
        ));
    }
    println!(
        "  cost ledger : {} rounds, {} billed, {unattributed} unattributed (reconciles: {reconciles})",
        rounds.len(),
        total[2]
    );
    Ok(())
}

/// One reconstructed span from a flight entry's `spans` array.
struct FlightSpanRow {
    parent: u64,
    start: u64,
    end: u64,
    name: String,
}

/// Validate one flight entry's span tree; returns its span count.
fn check_flight_entry(entry: &serde_json::Value, ctx: &str) -> Result<usize, String> {
    let trace = entry
        .get("trace")
        .and_then(|t| t.as_str())
        .ok_or_else(|| format!("{ctx} has no trace id"))?;
    if trace.len() != 16 || !trace.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("{ctx} trace id {trace:?} is not 16 hex digits"));
    }
    let status = u64_field(entry, "status", ctx)?;
    u64_field(entry, "latency_micros", ctx)?;
    let rows = entry
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or_else(|| format!("{ctx} has no spans array"))?;

    let mut spans: HashMap<u64, FlightSpanRow> = HashMap::new();
    for (j, row) in rows.iter().enumerate() {
        let rctx = format!("{ctx} span {j}");
        let id = u64_field(row, "id", &rctx)?;
        let span = FlightSpanRow {
            parent: u64_field(row, "parent", &rctx)?,
            start: u64_field(row, "start_micros", &rctx)?,
            end: u64_field(row, "end_micros", &rctx)?,
            name: row
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| format!("{rctx} has no name"))?
                .to_string(),
        };
        if spans.insert(id, span).is_some() {
            return Err(format!("{ctx} has duplicate span id {id}"));
        }
    }
    // Parent links either resolve inside the entry (and must nest) or
    // point at the serving run span outside it (a root of this tree).
    let mut roots = 0usize;
    for (id, span) in &spans {
        match spans.get(&span.parent) {
            None => roots += 1,
            Some(parent) => {
                if span.start < parent.start {
                    return Err(format!(
                        "{ctx} span {id} ({}) starts before its parent",
                        span.name
                    ));
                }
                if parent.end != 0 && (span.end == 0 || span.end > parent.end) {
                    return Err(format!(
                        "{ctx} span {id} ({}) escapes its closed parent's interval",
                        span.name
                    ));
                }
            }
        }
    }
    if status == 200 {
        if !spans.values().any(|s| s.name == "request") {
            return Err(format!("{ctx} succeeded but has no request span"));
        }
        if spans.values().any(|s| s.end == 0) {
            return Err(format!("{ctx} succeeded but holds an unclosed span"));
        }
    }
    if !spans.is_empty() && roots == 0 {
        return Err(format!("{ctx} span parents form a cycle (no root)"));
    }
    Ok(spans.len())
}

fn check_flight(path: &str) -> Result<(usize, usize), String> {
    let doc = load(path)?;
    let mut entries = 0usize;
    let mut spans = 0usize;
    for ring in ["slow", "errors"] {
        let list = doc
            .get(ring)
            .and_then(|e| e.as_array())
            .ok_or_else(|| format!("{path} has no {ring} array"))?;
        for (i, entry) in list.iter().enumerate() {
            spans += check_flight_entry(entry, &format!("{path} {ring}[{i}]"))?;
            entries += 1;
        }
    }
    if entries == 0 {
        return Err(format!("{path} retained no requests at all"));
    }
    Ok((entries, spans))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (chrome_path, cost_path, flight_path) = match args.as_slice() {
        [chrome, cost] => (chrome, cost, None),
        [chrome, cost, flight] => (chrome, cost, Some(flight)),
        _ => return Err("expected two or three artifact paths".into()),
    };
    let spans = check_chrome(chrome_path)?;
    println!("  chrome trace: {spans} spans, nesting and causal chain intact");
    check_cost(cost_path)?;
    if let Some(path) = flight_path {
        let (entries, spans) = check_flight(path)?;
        println!("  flight dump : {entries} entries, {spans} spans, causally well-formed");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("obs check: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => die(&e),
    }
}
