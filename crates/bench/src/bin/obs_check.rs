//! `obs_check` — CI validator for the observability artifacts.
//!
//! ```text
//! obs_check <chrome_trace.json> <cost.json>
//! ```
//!
//! Checks the two artifacts `mqo classify --trace-chrome --cost-json`
//! produces on the smoke workload:
//!
//! * the Chrome trace is valid JSON in trace-event format, every span's
//!   parent exists, children nest *inside* their parent's interval, and
//!   the causal chain is intact (`llm_call` under `query`, `query` under
//!   `round`/`run`, `retry` and `backoff` under `llm_call` — so on a
//!   faulty run every backoff and format retry is attributable to the
//!   exact model call that provoked it);
//! * the cost ledger conserves tokens — `billed == rendered −
//!   pruned_saved − cache_saved − starved − failed` per round and in
//!   total, the total is the sum of the rounds, and the recorded
//!   `unattributed` / `reconciles` fields match what the numbers
//!   actually say.
//!
//! The gate is structural, not statistical: it holds on any workload, so
//! there is no baseline and no tolerance.

use std::collections::HashMap;
use std::process::ExitCode;

fn die(msg: &str) -> ExitCode {
    eprintln!("obs_check: {msg}");
    eprintln!("usage: obs_check <chrome_trace.json> <cost.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn u64_field(v: &serde_json::Value, name: &str, ctx: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("{ctx} has no numeric field '{name}'"))
}

/// One complete ("ph":"X") event from the trace.
struct Span {
    name: String,
    ts: u64,
    end: u64,
    parent: u64,
}

fn check_chrome(path: &str) -> Result<usize, String> {
    let doc = load(path)?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| format!("{path} has no traceEvents array"))?;

    let mut spans: HashMap<u64, Span> = HashMap::new();
    for ev in events {
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                let args = ev.get("args").ok_or("X event without args")?;
                let id = u64_field(args, "id", "span args")?;
                let ts = u64_field(ev, "ts", "span")?;
                let dur = u64_field(ev, "dur", "span")?;
                let span = Span {
                    name: ev
                        .get("name")
                        .and_then(|n| n.as_str())
                        .ok_or("span without name")?
                        .to_string(),
                    ts,
                    end: ts + dur,
                    parent: u64_field(args, "parent", "span args")?,
                };
                if spans.insert(id, span).is_some() {
                    return Err(format!("duplicate span id {id}"));
                }
            }
            Some("M") | None => {} // metadata rows gate nothing
            Some(other) => return Err(format!("unexpected event phase '{other}'")),
        }
    }
    if spans.is_empty() {
        return Err("trace contains no spans".into());
    }

    // Ancestor names of `id`, walking parent links (root excluded).
    let ancestors = |mut id: u64| -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let mut hops = 0;
        while id != 0 {
            let span = spans.get(&id).ok_or_else(|| format!("parent id {id} has no span"))?;
            names.push(span.name.clone());
            id = span.parent;
            hops += 1;
            if hops > spans.len() {
                return Err("parent links form a cycle".into());
            }
        }
        Ok(names)
    };

    let has_rounds = spans.values().any(|s| s.name == "round");
    let mut queries = 0usize;
    for (&id, span) in &spans {
        if span.parent != 0 {
            let parent = spans
                .get(&span.parent)
                .ok_or_else(|| format!("span {id} ({}) has unknown parent", span.name))?;
            if span.ts < parent.ts || span.end > parent.end {
                return Err(format!(
                    "span {id} ({}) [{}..{}] escapes parent {} [{}..{}]",
                    span.name, span.ts, span.end, parent.name, parent.ts, parent.end
                ));
            }
        }
        let up = ancestors(span.parent)?;
        match span.name.as_str() {
            "run" if span.parent != 0 => {
                return Err(format!("run span {id} is not a root"));
            }
            "query" => {
                queries += 1;
                if !up.iter().any(|n| n == "run") {
                    return Err(format!("query span {id} has no run ancestor"));
                }
                if has_rounds && !up.iter().any(|n| n == "round") {
                    return Err(format!("query span {id} outside every round"));
                }
            }
            "llm_call" if !up.iter().any(|n| n == "query") => {
                return Err(format!("llm_call span {id} has no query ancestor"));
            }
            "retry" | "backoff" if !up.iter().any(|n| n == "llm_call") => {
                return Err(format!("{} span {id} has no llm_call ancestor", span.name));
            }
            _ => {}
        }
    }
    if queries == 0 {
        return Err("trace contains no query spans".into());
    }
    Ok(spans.len())
}

/// `billed == rendered − pruned_saved − cache_saved − starved − failed`
/// for one ledger row; also returns the row's fields for the sum check.
fn check_conserves(row: &serde_json::Value, ctx: &str) -> Result<[u64; 8], String> {
    let fields = [
        "queries",
        "rendered_tokens",
        "billed_tokens",
        "pruned_saved_tokens",
        "cache_saved_tokens",
        "starved_tokens",
        "failed_tokens",
        "enrichment_tokens",
    ];
    let mut out = [0u64; 8];
    for (slot, name) in out.iter_mut().zip(fields) {
        *slot = u64_field(row, name, ctx)?;
    }
    let [_, rendered, billed, pruned, cached, starved, failed, _] = out;
    let expect = rendered
        .checked_sub(pruned)
        .and_then(|r| r.checked_sub(cached))
        .and_then(|r| r.checked_sub(starved))
        .and_then(|r| r.checked_sub(failed));
    if expect != Some(billed) {
        return Err(format!(
            "{ctx} violates conservation: billed {billed} != rendered {rendered} \
             - pruned {pruned} - cached {cached} - starved {starved} - failed {failed}"
        ));
    }
    if row.get("conserves").and_then(|c| c.as_bool()) != Some(true) {
        return Err(format!("{ctx} does not record conserves=true"));
    }
    Ok(out)
}

fn check_cost(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    let rounds = doc
        .get("rounds")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path} has no rounds array"))?;
    let mut sum = [0u64; 8];
    for (i, round) in rounds.iter().enumerate() {
        let row = check_conserves(round, &format!("{path} round {i}"))?;
        for (acc, x) in sum.iter_mut().zip(row) {
            *acc += x;
        }
    }
    let total =
        check_conserves(doc.get("total").ok_or_else(|| format!("{path} has no total"))?, path)?;
    if total != sum {
        return Err(format!("{path} total {total:?} is not the sum of its rounds {sum:?}"));
    }

    let meter = u64_field(&doc, "meter_billed_tokens", path)?;
    let unattributed = meter as i64 - total[2] as i64;
    let recorded = doc
        .get("unattributed_tokens")
        .and_then(|u| u.as_i64())
        .ok_or_else(|| format!("{path} has no unattributed_tokens"))?;
    if recorded != unattributed {
        return Err(format!(
            "{path} records unattributed {recorded} but meter {meter} - billed {} = {unattributed}",
            total[2]
        ));
    }
    if unattributed < 0 {
        return Err(format!("{path} attributes more than the meter billed ({unattributed})"));
    }
    let reconciles = doc.get("reconciles").and_then(|r| r.as_bool()).unwrap_or(false);
    if reconciles != (unattributed == 0) {
        return Err(format!(
            "{path} records reconciles={reconciles} but unattributed is {unattributed}"
        ));
    }
    println!(
        "  cost ledger : {} rounds, {} billed, {unattributed} unattributed (reconciles: {reconciles})",
        rounds.len(),
        total[2]
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [chrome_path, cost_path] = args.as_slice() else {
        return Err("expected exactly two artifact paths".into());
    };
    let spans = check_chrome(chrome_path)?;
    println!("  chrome trace: {spans} spans, nesting and causal chain intact");
    check_cost(cost_path)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("obs check: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => die(&e),
    }
}
