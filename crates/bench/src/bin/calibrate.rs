//! Calibration utility: zero-shot / 1-hop / 2-hop / SNS accuracy per
//! dataset against the paper's operating points. Not one of the paper's
//! tables — a development aid for tuning generator and profile knobs
//! (kept in-tree so recalibration after any simulator change is one
//! command: `cargo run --release -p mqo-bench --bin calibrate`).

use mqo_bench::harness::{m_for, setup, SEED};
use mqo_bench::report::print_table;
use mqo_core::predictor::{KhopRandom, Predictor, Sns, ZeroShot};
use mqo_core::{Executor, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;

/// Paper operating points (GPT-3.5): zero-shot (Table V), 1-hop, 2-hop,
/// SNS (Table IV). Arxiv/products SNS/k-hop from Table IV.
const PAPER: [(&str, [f64; 4]); 5] = [
    ("cora", [69.0, 72.3, 72.0, 74.8]),
    ("citeseer", [60.1, 64.1, 64.8, 69.3]),
    ("pubmed", [90.0, 87.4, 88.8, 89.3]),
    ("ogbn-arxiv", [73.1, 71.8, 72.6, 71.5]),
    ("ogbn-products", [79.4, 83.7, 83.5, 84.3]),
];

fn main() {
    let mut rows = Vec::new();
    for (d, id) in DatasetId::ALL.into_iter().enumerate() {
        eprintln!("[calibrate] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let methods: Vec<Box<dyn Predictor>> = vec![
            Box::new(ZeroShot),
            Box::new(KhopRandom::new(1, tag.num_nodes())),
            Box::new(KhopRandom::new(2, tag.num_nodes())),
            Box::new(Sns::fit(tag)),
        ];
        let mut row = vec![id.name().to_string()];
        for (mi, m) in methods.iter().enumerate() {
            let out =
                exec.run_all(m.as_ref(), &labels, ctx.split.queries(), |_| false).unwrap();
            row.push(format!("{:.1} ({:.1})", out.accuracy() * 100.0, PAPER[d].1[mi]));
        }
        rows.push(row);
    }
    print_table(
        "Calibration — measured (paper) accuracy per method",
        &["dataset", "zero-shot", "1-hop", "2-hop", "SNS"],
        &rows,
    );
}
