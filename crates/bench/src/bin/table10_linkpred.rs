//! Table X (Q9): the strategies on the link-prediction task — Vanilla /
//! Base / w/ boost / w/ prune / w/ both on Cora, Citeseer, Pubmed.

use mqo_bench::harness::{num_queries, scale_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::linkpred::{run_link_task, LinkDataset, LinkStrategy};
use mqo_data::{dataset, DatasetId};
use mqo_llm::{ModelProfile, SimLinkLlm};
use serde_json::json;

/// Paper Table X: [vanilla, base, boost, prune, both] per dataset.
const PAPER: [(&str, [f64; 5]); 3] = [
    ("cora", [73.0, 76.1, 80.2, 75.8, 79.0]),
    ("citeseer", [86.8, 88.4, 89.6, 88.5, 89.8]),
    ("pubmed", [87.5, 86.9, 88.3, 87.3, 88.1]),
];

fn main() {
    let n_pairs = num_queries() / 2; // n_pairs positives + n_pairs negatives
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (d, id) in DatasetId::SMALL.into_iter().enumerate() {
        eprintln!("[table10] {}…", id.name());
        let bundle = dataset(id, Some(scale_for(id)), SEED);
        let data = LinkDataset::build(&bundle.tag, n_pairs, n_pairs, SEED);
        // γ1 starts at the 75th support percentile so early rounds take
        // only well-connected pairs and later rounds benefit from the
        // links they discover.
        let gamma1 = data.support_quantile(0.75);
        let strategies = [
            ("Vanilla", LinkStrategy::Vanilla),
            ("Base", LinkStrategy::Base),
            ("w/ boost", LinkStrategy::Boost { gamma1 }),
            ("w/ prune", LinkStrategy::Prune { tau: 0.2 }),
            ("w/ both", LinkStrategy::Both { tau: 0.2, gamma1 }),
        ];
        let mut row = vec![id.name().to_string()];
        let mut per_strategy = Vec::new();
        for (name, strategy) in strategies {
            let llm = SimLinkLlm::new(bundle.lexicon.clone(), ModelProfile::gpt35())
                .with_threshold(1.05);
            let out = run_link_task(&bundle.tag, &llm, &data, strategy, 4, SEED).unwrap();
            row.push(format!("{:.1}", out.accuracy() * 100.0));
            per_strategy.push(json!({
                "strategy": name,
                "accuracy": out.accuracy() * 100.0,
                "pairs_with_links": out.with_links,
                "prompt_tokens": out.prompt_tokens,
            }));
        }
        row.push(format!("paper: {:?}", PAPER[d].1));
        rows.push(row);
        artifacts.push(json!({
            "dataset": id.name(),
            "pairs": n_pairs * 2,
            "strategies": per_strategy,
            "paper": PAPER[d].1,
        }));
    }
    print_table(
        "Table X — link prediction accuracy (%)",
        &["dataset", "Vanilla", "Base", "w/ boost", "w/ prune", "w/ both", ""],
        &rows,
    );
    println!("\nExpected shape: boost > base; prune ≈ base with fewer link-equipped");
    println!("prompts; both combines the savings with the boost gain.");
    write_json("table10_linkpred", &json!(artifacts));
}
