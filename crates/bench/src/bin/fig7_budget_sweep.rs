//! Fig. 7 (Q2): accuracy of inadequacy-ranked pruning vs random pruning on
//! the 1-hop random method, across token budgets allowing neighbor text
//! for 100%, 80%, 60%, 40%, 20%, 0% of queries, on all five datasets.

use mqo_bench::harness::{m_for, setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::predictor::KhopRandom;
use mqo_core::pruning::budget_sweep;
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

fn main() {
    let taus = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut artifacts = Vec::new();
    for id in DatasetId::ALL {
        eprintln!("[fig7] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let khop = KhopRandom::new(1, tag.num_nodes());
        let points =
            budget_sweep(&exec, &khop, &labels, ctx.split.queries(), &scorer, &taus, SEED)
                .unwrap();

        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", (1.0 - p.tau) * 100.0),
                    format!("{:.1}", p.accuracy_pruned * 100.0),
                    format!("{:.1}", p.accuracy_random * 100.0),
                    format!("{:+.1}", (p.accuracy_pruned - p.accuracy_random) * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 7 — {} (1-hop random)", id.name()),
            &["neighbor-text budget", "ours (ranked)", "random", "advantage (pp)"],
            &rows,
        );
        artifacts.push(json!({
            "dataset": id.name(),
            "series": points.iter().map(|p| json!({
                "included_fraction": 1.0 - p.tau,
                "accuracy_ranked": p.accuracy_pruned * 100.0,
                "accuracy_random": p.accuracy_random * 100.0,
            })).collect::<Vec<_>>(),
            "paper_expectation": "ranked ≥ random at every intermediate budget; \
                 on pubmed and ogbn-arxiv the 0% endpoint beats the 100% endpoint",
        }));
    }
    write_json("fig7_budget_sweep", &json!(artifacts));
}
