//! The intro's economics, made quantitative: accuracy versus dollar cost
//! across models (GPT-3.5 / GPT-4o-mini / GPT-4 profiles) and strategies
//! (zero-shot, 1-hop, 1-hop + prune 20%, joint prune+boost) on Cora.
//! The paper motivates MQO with "$6,000 on GPT-3.5 vs $360,000 on GPT-4
//! for 10M queries"; this harness shows where each configuration sits on
//! the accuracy-per-dollar frontier and how the strategies shift it.

use mqo_bench::harness::{m_for, num_queries, setup, surrogate_for, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::BoostConfig;
use mqo_core::joint::run_joint;
use mqo_core::predictor::{KhopRandom, ZeroShot};
use mqo_core::pruning::{run_with_pruning, PrunePlan};
use mqo_core::{Executor, InadequacyScorer, LabelStore};
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use mqo_token::{ModelPricing, GPT_35_TURBO_0125, GPT_4, GPT_4O_MINI};
use serde_json::json;

fn main() {
    let id = DatasetId::Cora;
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let models: [(ModelProfile, &ModelPricing); 3] = [
        (ModelProfile::gpt4o_mini(), &GPT_4O_MINI),
        (ModelProfile::gpt35(), &GPT_35_TURBO_0125),
        (ModelProfile::gpt4(), &GPT_4),
    ];
    for (profile, pricing) in models {
        eprintln!("[frontier] {}…", profile.name);
        let ctx = setup(id, profile.clone());
        let tag = &ctx.bundle.tag;
        let exec = Executor::new(tag, &ctx.llm, m_for(id), SEED);
        let scorer =
            InadequacyScorer::build(&exec, &ctx.split, &surrogate_for(id), 10, SEED).unwrap();
        let khop = KhopRandom::new(1, tag.num_nodes());
        let labels = LabelStore::from_split(tag, &ctx.split);

        let zero = exec.run_all(&ZeroShot, &labels, ctx.split.queries(), |_| false).unwrap();
        let base = exec.run_all(&khop, &labels, ctx.split.queries(), |_| false).unwrap();
        let plan = PrunePlan::by_inadequacy(&scorer, tag, ctx.split.queries(), 0.2);
        let pruned =
            run_with_pruning(&exec, &khop, &labels, ctx.split.queries(), &plan).unwrap();
        let mut jl = LabelStore::from_split(tag, &ctx.split);
        let (joint, _) = run_joint(
            &exec,
            &khop,
            &mut jl,
            ctx.split.queries(),
            &scorer,
            0.2,
            BoostConfig::default(),
        )
        .unwrap();

        for (arm, out) in [
            ("zero-shot", &zero),
            ("1-hop", &base),
            ("1-hop + prune 20%", &pruned),
            ("1-hop + prune + boost", &joint),
        ] {
            let cost = pricing.input_cost(out.prompt_tokens());
            // Extrapolate to the paper's 10M-query industrial scale.
            let industrial = cost / num_queries() as f64 * 10_000_000.0;
            rows.push(vec![
                format!("{} / {arm}", profile.name),
                format!("{:.1}", out.accuracy() * 100.0),
                format!("${cost:.4}"),
                format!("${industrial:.0}"),
            ]);
            artifacts.push(json!({
                "model": profile.name,
                "arm": arm,
                "accuracy": out.accuracy() * 100.0,
                "cost_1k_queries_usd": cost,
                "cost_10m_queries_usd": industrial,
            }));
        }
    }
    print_table(
        "Accuracy / cost frontier (Cora, 1,000 queries; rightmost = 10M-query extrapolation)",
        &["model / strategy", "accuracy", "cost", "@10M queries"],
        &rows,
    );
    println!("\nThe paper's motivating arithmetic: the same workload costs 60× more on");
    println!("GPT-4; pruning+boosting buys accuracy *and* shaves cost at every tier.");
    write_json("cost_frontier", &json!(artifacts));
}
