//! `bench_gate` — the bench-regression gate CI runs after the smoke bench.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance PCT]
//!            [--serve-tolerance PCT] [--rss-tolerance PCT]
//!            [--routed-only]
//! ```
//!
//! Compares a fresh `mqo classify --stats-json` snapshot against the
//! committed baseline (`BENCH_PR10.json`) and exits non-zero when the two
//! cache-efficiency contracts regress beyond the tolerance (default 5%):
//!
//! * **tokens_sent** — metered prompt tokens must not *increase* by more
//!   than the tolerance (the cache stopped saving what it used to save);
//! * **serve_rate** — the fraction of lookups served without a metered
//!   request must not *drop* by more than the tolerance, relative.
//!
//! `serve_rate` rather than raw hits: under threads the hit/coalesced
//! split races (a waiter may find the entry cached by the time it looks),
//! but their sum — lookups that sent nothing — is deterministic.
//!
//! When both files carry serving metrics (`loadgen --merge-into` folds
//! `serve_rps` / `serve_p50_ms` / `serve_p99_ms` into the snapshot),
//! those gate too, against the much coarser `--serve-tolerance`
//! (default 90%): throughput must not collapse and tail latency must
//! not explode relative to baseline. Serving numbers are wall-clock
//! measurements, so this gate is calibrated to catch *structural*
//! regressions — a serialized worker pool, an accidentally synchronous
//! queue — not runner-speed noise. `serve_rps` must also simply be
//! non-zero. Baselines without serving fields skip the serving gate, so
//! pre-serving baselines keep working.
//!
//! When both files carry *routed* serving metrics (`loadgen --router
//! --merge-into` folds `routed_serve_rps` / `routed_p99_ms` /
//! `peak_rss_mb` into the snapshot after driving a sharded cluster
//! through its router), those gate the same way: routed throughput
//! against `--serve-tolerance`, and cluster peak RSS — the max
//! `VmHWM` across shard workers — against `--rss-tolerance` (default
//! 25%, `LowerIsBetter`: a worker suddenly holding the whole graph
//! instead of its partition is exactly the regression this catches).
//! Baselines without the fields skip these gates.
//!
//! `--routed-only` gates *only* the routed + RSS fields and makes them
//! mandatory — `shard_smoke.sh` uses it, because its snapshot carries
//! no cache or single-server serving numbers. The combined mode
//! conversely skips routed fields missing from the *current* snapshot
//! (with a note), so `bench_smoke.sh` and `shard_smoke.sh` can gate
//! different halves of the same rolled baseline.
//!
//! Accuracy, wall time, and `serve_p50_ms` are reported for context but
//! never gate: accuracy is checked bit-exactly by the test suite, and
//! absolute wall time is noise on shared CI runners.

use mqo_bench::gate::{drift, latency_blowup, Direction};
use std::process::ExitCode;

fn die(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    eprintln!(
        "usage: bench_gate <baseline.json> <current.json> [--tolerance PCT] \\
         [--serve-tolerance PCT] [--rss-tolerance PCT] [--routed-only]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn field(v: &serde_json::Value, name: &str, path: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("{path} has no numeric field '{name}'"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 5.0f64;
    let mut serve_tolerance = 90.0f64;
    let mut rss_tolerance = 25.0f64;
    let mut routed_only = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            tolerance =
                args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("bad --tolerance")?;
            i += 2;
        } else if args[i] == "--serve-tolerance" {
            serve_tolerance =
                args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("bad --serve-tolerance")?;
            i += 2;
        } else if args[i] == "--rss-tolerance" {
            rss_tolerance =
                args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("bad --rss-tolerance")?;
            i += 2;
        } else if args[i] == "--routed-only" {
            routed_only = true;
            i += 1;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("expected exactly two JSON files".into());
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;

    let mut ok = true;
    println!("bench gate: {current_path} vs {baseline_path} (tolerance {tolerance}%)");

    if !routed_only {
        let base_tokens = field(&baseline, "tokens_sent", baseline_path)?;
        let cur_tokens = field(&current, "tokens_sent", current_path)?;
        let tokens = drift(Direction::LowerIsBetter, base_tokens, cur_tokens, tolerance);
        println!(
            "  tokens_sent : {cur_tokens:.0} vs {base_tokens:.0}  ({:+.2}%)  {}",
            tokens.delta_pct,
            if tokens.ok { "ok" } else { "REGRESSED" }
        );
        ok &= tokens.ok;

        let base_rate = field(&baseline, "serve_rate", baseline_path)?;
        let cur_rate = field(&current, "serve_rate", current_path)?;
        let rate = drift(Direction::HigherIsBetter, base_rate, cur_rate, tolerance);
        println!(
            "  serve_rate  : {cur_rate:.4} vs {base_rate:.4}  ({:+.2}%)  {}",
            rate.delta_pct,
            if rate.ok { "ok" } else { "REGRESSED" }
        );
        ok &= rate.ok;

        // Serving metrics: gate only when the baseline has them.
        match (
            field(&baseline, "serve_rps", baseline_path),
            field(&current, "serve_rps", current_path),
        ) {
            (Ok(base_rps), Ok(cur_rps)) => {
                let rps = drift(Direction::HigherIsBetter, base_rps, cur_rps, serve_tolerance);
                let rps_ok = cur_rps > 0.0 && rps.ok;
                println!(
                    "  serve_rps   : {cur_rps:.0} vs {base_rps:.0}  ({:+.2}%)  {}",
                    rps.delta_pct,
                    if rps_ok { "ok" } else { "REGRESSED" }
                );
                ok &= rps_ok;

                let base_p99 = field(&baseline, "serve_p99_ms", baseline_path)?;
                let cur_p99 = field(&current, "serve_p99_ms", current_path)?;
                let p99 = latency_blowup(base_p99, cur_p99, serve_tolerance);
                println!(
                    "  serve_p99_ms: {cur_p99:.2} vs {base_p99:.2}  (limit {:.2})  {}",
                    p99.limit.unwrap_or(f64::INFINITY),
                    if p99.ok { "ok" } else { "REGRESSED" }
                );
                ok &= p99.ok;

                if let (Ok(b), Ok(c)) = (
                    field(&baseline, "serve_p50_ms", baseline_path),
                    field(&current, "serve_p50_ms", current_path),
                ) {
                    println!("  serve_p50_ms: {c:.2} vs {b:.2}  (informational)");
                }
            }
            (Err(_), _) => println!("  serving     : baseline has no serve_rps — gate skipped"),
            (Ok(_), Err(e)) => return Err(format!("baseline gates serving but {e}")),
        }
    }

    // Routed (sharded-cluster) serving metrics. Mandatory on both sides
    // under --routed-only; otherwise gate only when both files carry
    // them (bench_smoke's snapshot never does — shard_smoke gates them).
    match (
        field(&baseline, "routed_serve_rps", baseline_path),
        field(&current, "routed_serve_rps", current_path),
    ) {
        (Ok(base_rps), Ok(cur_rps)) => {
            let rps = drift(Direction::HigherIsBetter, base_rps, cur_rps, serve_tolerance);
            let rps_ok = cur_rps > 0.0 && rps.ok;
            println!(
                "  routed_rps  : {cur_rps:.0} vs {base_rps:.0}  ({:+.2}%)  {}",
                rps.delta_pct,
                if rps_ok { "ok" } else { "REGRESSED" }
            );
            ok &= rps_ok;

            let base_p99 = field(&baseline, "routed_p99_ms", baseline_path)?;
            let cur_p99 = field(&current, "routed_p99_ms", current_path)?;
            let p99 = latency_blowup(base_p99, cur_p99, serve_tolerance);
            println!(
                "  routed_p99  : {cur_p99:.2} vs {base_p99:.2}  (limit {:.2})  {}",
                p99.limit.unwrap_or(f64::INFINITY),
                if p99.ok { "ok" } else { "REGRESSED" }
            );
            ok &= p99.ok;
        }
        (Err(e), _) if routed_only => return Err(format!("--routed-only but {e}")),
        (_, Err(e)) if routed_only => return Err(format!("--routed-only but {e}")),
        (Err(_), _) => println!("  routed      : baseline has no routed_serve_rps — gate skipped"),
        (Ok(_), Err(_)) => println!(
            "  routed      : current has no routed_serve_rps — gate skipped (shard_smoke gates it)"
        ),
    }

    // Cluster peak RSS (max VmHWM across shard workers). Lower is
    // better — a worker holding the full graph instead of its partition
    // is the regression this catches. Same presence rules as routed.
    match (
        field(&baseline, "peak_rss_mb", baseline_path),
        field(&current, "peak_rss_mb", current_path),
    ) {
        (Ok(base_rss), Ok(cur_rss)) => {
            let rss = drift(Direction::LowerIsBetter, base_rss, cur_rss, rss_tolerance);
            let rss_ok = cur_rss > 0.0 && rss.ok;
            println!(
                "  peak_rss_mb : {cur_rss:.0} vs {base_rss:.0}  ({:+.2}%, tolerance {rss_tolerance}%)  {}",
                rss.delta_pct,
                if rss_ok { "ok" } else { "REGRESSED" }
            );
            ok &= rss_ok;
        }
        (Err(e), _) if routed_only => return Err(format!("--routed-only but {e}")),
        (_, Err(e)) if routed_only => return Err(format!("--routed-only but {e}")),
        (Err(_), _) => println!("  peak_rss    : baseline has no peak_rss_mb — gate skipped"),
        (Ok(_), Err(_)) => println!(
            "  peak_rss    : current has no peak_rss_mb — gate skipped (shard_smoke gates it)"
        ),
    }

    // Context only — never gates.
    if let (Ok(b), Ok(c)) =
        (field(&baseline, "accuracy", baseline_path), field(&current, "accuracy", current_path))
    {
        println!("  accuracy    : {c:.4} vs {b:.4}  (informational)");
    }
    if let (Ok(b), Ok(c)) = (
        field(&baseline, "wall_seconds", baseline_path),
        field(&current, "wall_seconds", current_path),
    ) {
        println!("  wall_seconds: {c:.3} vs {b:.3}  (informational)");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench gate: FAIL — a gated metric regressed beyond tolerance");
            ExitCode::FAILURE
        }
        Err(e) => die(&e),
    }
}
