//! Fig. 8 (Q5): pseudo-label utilization with vs without the query
//! scheduling algorithm, under four neighbor-text configurations
//! ({1,2}-hop × M ∈ {4,10}), 50 rounds, on all five datasets. Pseudo-label
//! generation is simulated (no LLM cost), as in the paper.

use mqo_bench::harness::{setup, SEED};
use mqo_bench::report::{print_table, write_json};
use mqo_core::boosting::pseudo_label_utilization;
use mqo_core::LabelStore;
use mqo_data::DatasetId;
use mqo_llm::ModelProfile;
use serde_json::json;

fn main() {
    let configs = [(1u8, 4usize), (1, 10), (2, 4), (2, 10)];
    let rounds = 50;
    let mut artifacts = Vec::new();
    for id in DatasetId::ALL {
        eprintln!("[fig8] {}…", id.name());
        let ctx = setup(id, ModelProfile::gpt35());
        let tag = &ctx.bundle.tag;
        let labels = LabelStore::from_split(tag, &ctx.split);
        let mut rows = Vec::new();
        let mut series = Vec::new();
        for (k, m) in configs {
            let unsched = pseudo_label_utilization(
                tag,
                &labels,
                ctx.split.queries(),
                k,
                m,
                rounds,
                false,
                SEED,
            );
            let sched = pseudo_label_utilization(
                tag,
                &labels,
                ctx.split.queries(),
                k,
                m,
                rounds,
                true,
                SEED,
            );
            let ratio = if unsched == 0 { f64::NAN } else { sched as f64 / unsched as f64 };
            rows.push(vec![
                format!("{k}-hop, M={m}"),
                unsched.to_string(),
                sched.to_string(),
                format!("{ratio:.2}x"),
            ]);
            series.push(json!({
                "config": format!("{k}-hop, M={m}"),
                "without_scheduling": unsched,
                "with_scheduling": sched,
                "ratio": ratio,
            }));
        }
        print_table(
            &format!("Fig. 8 — pseudo-label utilization on {} ({rounds} rounds)", id.name()),
            &["config", "w/o scheduling", "w/ scheduling", "ratio"],
            &rows,
        );
        artifacts.push(json!({
            "dataset": id.name(),
            "rounds": rounds,
            "series": series,
            "paper_expectation": "scheduling ≈ doubles utilization except in the \
                1-hop M=4 configuration, where sparse query associations limit it",
        }));
    }
    write_json("fig8_scheduling", &json!(artifacts));
}
