//! # mqo-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`); this library
//! holds the shared scaffolding:
//!
//! * [`harness`] — standard experiment setup per dataset (generation
//!   scale, split, `M`, surrogate config, simulated model construction),
//!   with environment overrides for quick runs:
//!   - `MQO_QUERIES` — query-set size (default 1,000, the paper's setting);
//!   - `MQO_SCALE_<NAME>` — per-dataset generation scale override
//!     (e.g. `MQO_SCALE_OGBN_ARXIV=0.05`);
//!   - `MQO_FAST=1` — CI preset: 200 queries and reduced OGB scales.
//! * [`report`] — paper-vs-measured table printing and JSON artifact
//!   output under `results/`.
//! * [`gate`] — the direction-aware regression arithmetic behind
//!   `bench_gate` (higher-is-better vs lower-is-better metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod harness;
pub mod report;
