//! Regression-gate arithmetic shared by `bench_gate`.
//!
//! The gate compares a fresh stats snapshot against a committed baseline
//! and has to know, per metric, *which way is worse*: `tokens_sent` and
//! `serve_p99_ms` regress by going **up**, `serve_rate` and `serve_rps`
//! regress by going **down**. Getting a direction backwards turns the
//! gate into a ratchet that blesses regressions and rejects
//! improvements, so the directions live here as an explicit
//! [`Direction`] with unit tests for both orientations instead of
//! inline sign conventions in the binary.

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-shaped: regression = the value dropped (e.g.
    /// `serve_rps`, `serve_rate`).
    HigherIsBetter,
    /// Cost-shaped: regression = the value rose (e.g. `tokens_sent`,
    /// `serve_p99_ms`).
    LowerIsBetter,
}

/// Outcome of one gated comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Relative change, in percent of baseline (`0` when the baseline
    /// is zero: nothing meaningful to drift from).
    pub delta_pct: f64,
    /// The absolute bound the current value was held to, when the check
    /// is expressed as a limit rather than a drift band.
    pub limit: Option<f64>,
    /// Whether the metric is within tolerance.
    pub ok: bool,
}

fn delta_pct(baseline: f64, current: f64) -> f64 {
    if baseline > 0.0 {
        100.0 * (current - baseline) / baseline
    } else {
        0.0
    }
}

/// Symmetric drift check: the metric may move against its [`Direction`]
/// by at most `tolerance_pct` percent of baseline. Movement in the good
/// direction is unbounded.
pub fn drift(direction: Direction, baseline: f64, current: f64, tolerance_pct: f64) -> Verdict {
    let delta = delta_pct(baseline, current);
    let ok = match direction {
        Direction::HigherIsBetter => delta >= -tolerance_pct,
        Direction::LowerIsBetter => delta <= tolerance_pct,
    };
    Verdict { delta_pct: delta, limit: None, ok }
}

/// Latency check matched to a throughput tolerance: a `T`% throughput
/// drop corresponds to a `1/(1−T)` latency blow-up, so the current
/// value must stay under `baseline / (1 − T/100)`. A tolerance of 100%
/// or more disables the bound. Lower-is-better by construction — a
/// faster tail always passes.
pub fn latency_blowup(baseline: f64, current: f64, tolerance_pct: f64) -> Verdict {
    let limit = if tolerance_pct < 100.0 {
        baseline / (1.0 - tolerance_pct / 100.0)
    } else {
        f64::INFINITY
    };
    Verdict {
        delta_pct: delta_pct(baseline, current),
        limit: Some(limit),
        ok: current <= limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_is_better_fails_on_drop_beyond_tolerance() {
        // serve_rps-shaped: 1000 → 940 is -6%, outside a 5% band.
        let v = drift(Direction::HigherIsBetter, 1000.0, 940.0, 5.0);
        assert!(!v.ok);
        assert!((v.delta_pct - -6.0).abs() < 1e-9);
        // A drop within the band passes.
        assert!(drift(Direction::HigherIsBetter, 1000.0, 960.0, 5.0).ok);
    }

    #[test]
    fn higher_is_better_never_penalizes_improvement() {
        assert!(drift(Direction::HigherIsBetter, 1000.0, 5000.0, 5.0).ok);
    }

    #[test]
    fn lower_is_better_fails_on_rise_beyond_tolerance() {
        // tokens_sent-shaped: 1000 → 1060 is +6%, outside a 5% band.
        let v = drift(Direction::LowerIsBetter, 1000.0, 1060.0, 5.0);
        assert!(!v.ok);
        assert!((v.delta_pct - 6.0).abs() < 1e-9);
        assert!(drift(Direction::LowerIsBetter, 1000.0, 1040.0, 5.0).ok);
    }

    #[test]
    fn lower_is_better_never_penalizes_improvement() {
        // Spending *fewer* tokens than baseline must never trip the gate.
        assert!(drift(Direction::LowerIsBetter, 1000.0, 1.0, 5.0).ok);
    }

    #[test]
    fn zero_baseline_reports_zero_drift_and_passes() {
        let v = drift(Direction::HigherIsBetter, 0.0, 42.0, 5.0);
        assert!(v.ok);
        assert_eq!(v.delta_pct, 0.0);
    }

    #[test]
    fn latency_blowup_is_lower_is_better() {
        // 90% tolerance → limit = base / 0.1 = 10× base.
        let v = latency_blowup(4.0, 39.0, 90.0);
        assert!(v.ok);
        assert!((v.limit.unwrap() - 40.0).abs() < 1e-9);
        // Just past the blow-up limit fails …
        assert!(!latency_blowup(4.0, 40.1, 90.0).ok);
        // … and a *faster* tail always passes: the direction must not be
        // inverted into "latency may not improve".
        assert!(latency_blowup(4.0, 0.5, 90.0).ok);
    }

    #[test]
    fn latency_blowup_full_tolerance_disables_bound() {
        assert!(latency_blowup(4.0, 1.0e12, 100.0).ok);
    }
}
