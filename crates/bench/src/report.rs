//! Table printing and JSON result artifacts.

use serde_json::Value;
use std::fs;
use std::path::PathBuf;

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Directory for JSON artifacts (`results/` at the workspace root, or
/// `$MQO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MQO_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the current dir to find the workspace root.
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").exists() {
            return cur.join("results");
        }
        if !cur.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Write a JSON artifact under `results/<name>.json`.
pub fn write_json(name: &str, value: &Value) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("\n[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format a signed percentage delta with two decimals (Table IV's Δ%).
pub fn delta_pct(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".into();
    }
    format!("{:+.2}%", (new - old) / old * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.723), "72.3");
        assert_eq!(delta_pct(0.725, 0.723), "+0.28%");
        assert_eq!(delta_pct(0.5, 0.0), "n/a");
    }

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
