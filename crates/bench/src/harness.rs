//! Standard experiment setup shared by every table/figure binary.

use mqo_core::surrogate::SurrogateConfig;
use mqo_data::{dataset, DatasetBundle, DatasetId};
use mqo_graph::{LabeledSplit, SplitConfig};
use mqo_llm::{ModelProfile, SimLlm};
use mqo_obs::{Event, EventSink, FileSink, Recorder, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

/// The workspace-wide experiment seed (reruns are bit-identical).
pub const SEED: u64 = 20_250_704;

/// Whether the CI fast preset is on.
pub fn fast_mode() -> bool {
    std::env::var("MQO_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Query-set size: the paper uses 1,000 per dataset.
pub fn num_queries() -> usize {
    if let Ok(v) = std::env::var("MQO_QUERIES") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    if fast_mode() {
        200
    } else {
        1000
    }
}

/// Generation scale for a dataset, honoring `MQO_SCALE_<NAME>` overrides
/// and the fast preset.
pub fn scale_for(id: DatasetId) -> f64 {
    let key = format!("MQO_SCALE_{}", id.name().to_uppercase().replace('-', "_"));
    if let Ok(v) = std::env::var(&key) {
        if let Ok(s) = v.parse() {
            return s;
        }
    }
    let base = id.default_scale();
    if fast_mode() {
        match id {
            DatasetId::OgbnArxiv => 0.05,
            DatasetId::OgbnProducts => 0.005,
            _ => base.min(0.5),
        }
    } else {
        base
    }
}

/// The paper's `M`: 10 for Ogbn-Products, 4 elsewhere.
pub fn m_for(id: DatasetId) -> usize {
    match id {
        DatasetId::OgbnProducts => 10,
        _ => 4,
    }
}

/// Surrogate configuration per §VI-A3: linear TF-IDF model for the small
/// datasets, hashed features with a small grid search for the OGB ones.
pub fn surrogate_for(id: DatasetId) -> SurrogateConfig {
    match id {
        DatasetId::Cora | DatasetId::Citeseer | DatasetId::Pubmed => {
            SurrogateConfig::small(SEED)
        }
        _ => SurrogateConfig::large(SEED),
    }
}

/// Telemetry wiring for a traced run: every event goes both to a JSONL
/// file (for offline analysis) and to an in-memory recorder (for the
/// end-of-run summary). Cheap to clone — clones share the same sinks — so
/// one trace can feed the executor (by reference) and the meter / retry
/// layers (by `Arc`) at once.
#[derive(Clone)]
pub struct Trace {
    file: Arc<FileSink>,
    recorder: Arc<Recorder>,
}

impl Trace {
    /// Create (truncate) the JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Trace {
            file: Arc::new(FileSink::create(path)?),
            recorder: Arc::new(Recorder::new()),
        })
    }

    /// One-screen summary of everything recorded so far (p50/p99 prompt
    /// tokens, retries, rounds, prune rate, …).
    pub fn summary(&self) -> Summary {
        Summary::from_events(&self.recorder.events())
    }

    /// Events evicted from the in-memory recorder's bounded ring: the
    /// summary above under-counts by exactly this many events (the JSONL
    /// file keeps everything).
    pub fn dropped(&self) -> u64 {
        self.recorder.dropped()
    }
}

impl EventSink for Trace {
    fn emit(&self, event: &Event) {
        self.file.emit(event);
        self.recorder.emit(event);
    }

    fn flush(&self) {
        self.file.flush();
    }
}

/// A fully-prepared experiment context for one dataset × model pair.
pub struct ExperimentCtx {
    /// The generated dataset.
    pub bundle: DatasetBundle,
    /// `V_L` / `V_Q` split (query count from [`num_queries`]).
    pub split: LabeledSplit,
    /// The simulated model.
    pub llm: SimLlm,
    /// The dataset id.
    pub id: DatasetId,
}

/// Generate dataset, split, and model for an experiment.
pub fn setup(id: DatasetId, profile: ModelProfile) -> ExperimentCtx {
    let bundle = dataset(id, Some(scale_for(id)), SEED);
    let split_cfg = match bundle.spec.split {
        SplitConfig::PerClass { per_class, .. } => {
            SplitConfig::PerClass { per_class, num_queries: num_queries() }
        }
        SplitConfig::Fraction { labeled_fraction, .. } => {
            SplitConfig::Fraction { labeled_fraction, num_queries: num_queries() }
        }
    };
    let split = LabeledSplit::generate(
        &bundle.tag,
        split_cfg,
        &mut StdRng::seed_from_u64(SEED ^ 0x511),
    )
    .expect("standard splits are feasible on generated datasets");
    let llm = SimLlm::new(bundle.lexicon.clone(), bundle.tag.class_names().to_vec(), profile);
    ExperimentCtx { bundle, split, llm, id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_matches_paper() {
        assert_eq!(m_for(DatasetId::Cora), 4);
        assert_eq!(m_for(DatasetId::OgbnProducts), 10);
    }

    #[test]
    fn setup_produces_consistent_context() {
        std::env::set_var("MQO_QUERIES", "50");
        let ctx = setup(DatasetId::Cora, ModelProfile::gpt35());
        assert_eq!(ctx.split.queries().len(), 50);
        assert_eq!(ctx.bundle.tag.num_classes(), 7);
        std::env::remove_var("MQO_QUERIES");
    }
}
