//! # mqo-fault — deterministic fault injection for LLM clients
//!
//! Every resilience claim in this workspace is testable offline because
//! faults are *injected*, not awaited: [`FaultyLlm`] decorates any
//! [`LanguageModel`] and applies a seeded [`FaultSchedule`] keyed by the
//! transport call index. The same seed always produces the same faults on
//! the same calls, so chaos tests are reproducible bit for bit.
//!
//! The fault vocabulary mirrors what a production LLM transport actually
//! sees:
//!
//! * **transient** — the request dies in flight ([`Error::Transient`]);
//! * **rate_limited** — the provider refuses with a retry-after hint
//!   ([`Error::RateLimited`]);
//! * **latency** — the call succeeds after a spike, spent through the
//!   [`WaitClock`] so tests stay instant under a manual clock;
//! * **truncated** — the completion arrives cut off mid-answer (and is
//!   billed: the provider charged for it);
//! * **malformed** — the completion arrives as format-drifted garbage
//!   (also billed);
//! * **outage** — a hard window of call indices during which every
//!   request dies, modeling a provider incident.
//!
//! Every injection is announced as [`Event::FaultInjected`], so traces
//! and metrics show chaos as a first-class citizen. A `kill_after`
//! setting aborts the whole process at a chosen call index — the
//! crash-safety hammer the journal/resume path is tested with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;

pub use net::{ChaosProxy, NetFault, NetFaultConfig, NetFaultSchedule};

use mqo_llm::{Completion, Error, LanguageModel, Result};
use mqo_obs::{Event, EventSink, NullSink, WaitClock};
use mqo_token::UsageMeter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One fault drawn from a schedule for a specific call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the call passes through untouched.
    None,
    /// The request fails in flight.
    Transient,
    /// The provider rate-limits with a retry-after hint (microseconds).
    RateLimited {
        /// The hint carried by the refusal.
        retry_after_micros: u64,
    },
    /// The call succeeds after a latency spike of this many microseconds.
    Latency {
        /// Spike length.
        micros: u64,
    },
    /// The completion is truncated to its first half (billed in full).
    Truncated,
    /// The completion is replaced by format-drifted garbage (billed).
    Malformed,
    /// The call falls inside a hard-outage window and dies.
    Outage,
}

impl Fault {
    /// Stable name used in [`Event::FaultInjected`].
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Transient => "transient",
            Fault::RateLimited { .. } => "rate_limited",
            Fault::Latency { .. } => "latency",
            Fault::Truncated => "truncated",
            Fault::Malformed => "malformed",
            Fault::Outage => "outage",
        }
    }
}

/// Independent per-fault probabilities plus deterministic windows; the
/// rates are checked in order (transient, rate-limited, latency,
/// truncated, malformed) against one uniform draw per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of a transient transport failure.
    pub transient_rate: f64,
    /// Probability of a rate-limit refusal.
    pub rate_limited_rate: f64,
    /// Probability of a latency spike.
    pub latency_rate: f64,
    /// Probability of a truncated completion.
    pub truncated_rate: f64,
    /// Probability of a malformed completion.
    pub malformed_rate: f64,
    /// Retry-after hint attached to rate-limit refusals (microseconds).
    pub retry_after_micros: u64,
    /// Latency-spike length (microseconds).
    pub latency_micros: u64,
    /// Hard outage: every call index in `[start, start + len)` dies.
    pub outage: Option<(u64, u64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            transient_rate: 0.0,
            rate_limited_rate: 0.0,
            latency_rate: 0.0,
            truncated_rate: 0.0,
            malformed_rate: 0.0,
            retry_after_micros: 10_000,
            latency_micros: 50_000,
            outage: None,
        }
    }
}

impl FaultConfig {
    /// Parse a CLI spec like
    /// `"error=0.1,malformed=0.05,rate-limit=0.02,latency=0.01,truncate=0.02,outage=40+10"`.
    /// Unknown keys are rejected; omitted keys keep their defaults.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item {part:?} is not key=value"))?;
            let rate = || -> std::result::Result<f64, String> {
                let r: f64 = value.parse().map_err(|_| format!("bad rate in {part:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("rate out of [0,1] in {part:?}"));
                }
                Ok(r)
            };
            match key {
                "error" | "transient" => cfg.transient_rate = rate()?,
                "rate-limit" | "rate_limited" => cfg.rate_limited_rate = rate()?,
                "latency" => cfg.latency_rate = rate()?,
                "truncate" | "truncated" => cfg.truncated_rate = rate()?,
                "malformed" => cfg.malformed_rate = rate()?,
                "retry-after-micros" => {
                    cfg.retry_after_micros =
                        value.parse().map_err(|_| format!("bad micros in {part:?}"))?;
                }
                "latency-micros" => {
                    cfg.latency_micros =
                        value.parse().map_err(|_| format!("bad micros in {part:?}"))?;
                }
                "outage" => {
                    let (start, len) = value
                        .split_once('+')
                        .ok_or_else(|| format!("outage must be start+len, got {part:?}"))?;
                    cfg.outage = Some((
                        start.parse().map_err(|_| format!("bad outage start in {part:?}"))?,
                        len.parse().map_err(|_| format!("bad outage length in {part:?}"))?,
                    ));
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        let total = cfg.transient_rate
            + cfg.rate_limited_rate
            + cfg.latency_rate
            + cfg.truncated_rate
            + cfg.malformed_rate;
        if total > 1.0 {
            return Err(format!("fault rates sum to {total:.3} > 1"));
        }
        Ok(cfg)
    }
}

/// A seeded, deterministic mapping from transport call index to [`Fault`].
///
/// The draw for call `i` depends only on `(seed, i)` — not on thread
/// interleaving or on what earlier calls returned — so a schedule can be
/// replayed, sliced, or inspected ahead of time.
#[derive(Debug, Clone, Copy)]
pub struct FaultSchedule {
    seed: u64,
    cfg: FaultConfig,
}

/// splitmix64: the same stationary hash `mqo-core` uses for per-query
/// RNGs, giving a uniform u64 per (seed, call) pair.
pub(crate) fn mix(seed: u64, call: u64) -> u64 {
    let mut z = seed ^ call.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// A schedule drawing faults per `cfg` under `seed`.
    pub fn seeded(seed: u64, cfg: FaultConfig) -> Self {
        FaultSchedule { seed, cfg }
    }

    /// A schedule that never faults.
    pub fn clean() -> Self {
        FaultSchedule::seeded(0, FaultConfig::default())
    }

    /// The fault (or [`Fault::None`]) for transport call `call`.
    pub fn fault_for(&self, call: u64) -> Fault {
        if let Some((start, len)) = self.cfg.outage {
            if call >= start && call < start.saturating_add(len) {
                return Fault::Outage;
            }
        }
        let u = mix(self.seed, call) as f64 / u64::MAX as f64;
        let mut edge = self.cfg.transient_rate;
        if u < edge {
            return Fault::Transient;
        }
        edge += self.cfg.rate_limited_rate;
        if u < edge {
            return Fault::RateLimited { retry_after_micros: self.cfg.retry_after_micros };
        }
        edge += self.cfg.latency_rate;
        if u < edge {
            return Fault::Latency { micros: self.cfg.latency_micros };
        }
        edge += self.cfg.truncated_rate;
        if u < edge {
            return Fault::Truncated;
        }
        edge += self.cfg.malformed_rate;
        if u < edge {
            return Fault::Malformed;
        }
        Fault::None
    }
}

/// The fault-injecting decorator. Wrap it directly around the transport
/// (under the resilience stack) so injected faults exercise the same
/// paths real ones would.
pub struct FaultyLlm<L> {
    inner: L,
    schedule: FaultSchedule,
    clock: Arc<dyn WaitClock>,
    sink: Arc<dyn EventSink>,
    calls: AtomicU64,
    /// Abort the process when this call index is reached (crash testing).
    kill_after: Option<u64>,
}

impl<L: LanguageModel> FaultyLlm<L> {
    /// Wrap `inner` under `schedule`; latency spikes spend time on
    /// `clock`.
    pub fn new(inner: L, schedule: FaultSchedule, clock: Arc<dyn WaitClock>) -> Self {
        FaultyLlm {
            inner,
            schedule,
            clock,
            sink: Arc::new(NullSink),
            calls: AtomicU64::new(0),
            kill_after: None,
        }
    }

    /// Report injections to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Terminate the process (exit code 86) the moment transport call
    /// `call` starts — a deterministic stand-in for `kill -9` mid-run.
    /// Process exit skips destructors, so only state already flushed to
    /// disk (the run journal) survives: exactly the crash the resume path
    /// must cope with.
    pub fn with_kill_after(mut self, call: u64) -> Self {
        self.kill_after = Some(call);
        self
    }

    /// Transport calls attempted so far (faulted ones included).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Access the wrapped client.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

/// Exit code used by [`FaultyLlm::with_kill_after`], distinguishable from
/// panics and normal failures in chaos scripts.
pub const KILL_EXIT_CODE: i32 = 86;

impl<L: LanguageModel> LanguageModel for FaultyLlm<L> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Completion> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.kill_after == Some(call) {
            eprintln!("mqo-fault: killing process at transport call {call}");
            std::process::exit(KILL_EXIT_CODE);
        }
        let fault = self.schedule.fault_for(call);
        if fault != Fault::None {
            self.sink.emit(&Event::FaultInjected { call, fault: fault.name().into() });
        }
        match fault {
            Fault::None => self.inner.complete(prompt),
            Fault::Transient => {
                Err(Error::Transient { detail: format!("injected at call {call}") })
            }
            Fault::Outage => {
                Err(Error::Transient { detail: format!("injected outage at call {call}") })
            }
            Fault::RateLimited { retry_after_micros } => {
                Err(Error::RateLimited { retry_after_micros })
            }
            Fault::Latency { micros } => {
                self.clock.sleep_micros(micros);
                self.inner.complete(prompt)
            }
            Fault::Truncated => {
                // The provider answered and billed; the payload is cut off.
                let mut c = self.inner.complete(prompt)?;
                let keep = c.text.len() / 2;
                let cut = c.text.char_indices().map(|(i, _)| i).take_while(|&i| i <= keep);
                let at = cut.last().unwrap_or(0);
                c.text.truncate(at);
                Ok(c)
            }
            Fault::Malformed => {
                let mut c = self.inner.complete(prompt)?;
                c.text = format!("<<drifted output, call {call}>>");
                Ok(c)
            }
        }
    }

    fn meter(&self) -> &UsageMeter {
        self.inner.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_llm::ScriptedLlm;
    use mqo_obs::{ManualClock, Recorder};

    fn chaos_cfg() -> FaultConfig {
        FaultConfig {
            transient_rate: 0.2,
            rate_limited_rate: 0.1,
            latency_rate: 0.1,
            truncated_rate: 0.1,
            malformed_rate: 0.1,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn schedules_are_deterministic_in_seed_and_call() {
        let a = FaultSchedule::seeded(7, chaos_cfg());
        let b = FaultSchedule::seeded(7, chaos_cfg());
        let c = FaultSchedule::seeded(8, chaos_cfg());
        let draw = |s: &FaultSchedule| (0..200).map(|i| s.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        assert_ne!(draw(&a), draw(&c), "different seed, different schedule");
        // Every configured fault kind appears somewhere in 200 draws.
        for name in ["transient", "rate_limited", "latency", "truncated", "malformed", "none"] {
            assert!(draw(&a).iter().any(|f| f.name() == name), "no {name} fault in 200 draws");
        }
    }

    #[test]
    fn rates_land_near_their_targets() {
        let s = FaultSchedule::seeded(3, chaos_cfg());
        let n = 10_000;
        let transient =
            (0..n).filter(|&i| s.fault_for(i) == Fault::Transient).count() as f64 / n as f64;
        assert!((transient - 0.2).abs() < 0.02, "transient rate {transient} far from 0.2");
    }

    #[test]
    fn outage_windows_override_everything() {
        let mut cfg = chaos_cfg();
        cfg.outage = Some((10, 5));
        let s = FaultSchedule::seeded(1, cfg);
        for i in 10..15 {
            assert_eq!(s.fault_for(i), Fault::Outage);
        }
        assert_ne!(s.fault_for(15), Fault::Outage);
    }

    #[test]
    fn injected_faults_surface_as_the_right_errors() {
        let cfg = FaultConfig { transient_rate: 1.0, ..FaultConfig::default() };
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Recorder::new());
        let llm = FaultyLlm::new(
            ScriptedLlm::new(["ok"]),
            FaultSchedule::seeded(1, cfg),
            clock.clone() as Arc<dyn WaitClock>,
        )
        .with_sink(sink.clone());
        match llm.complete("p").unwrap_err() {
            Error::Transient { .. } => {}
            other => panic!("expected Transient, got {other:?}"),
        }
        assert_eq!(sink.of_kind("fault_injected").len(), 1);
        assert_eq!(llm.calls(), 1);
    }

    #[test]
    fn latency_spikes_spend_clock_time_not_wall_time() {
        let cfg =
            FaultConfig { latency_rate: 1.0, latency_micros: 30_000_000, ..Default::default() };
        let clock = Arc::new(ManualClock::new());
        let llm = FaultyLlm::new(
            ScriptedLlm::new(["ok"]),
            FaultSchedule::seeded(1, cfg),
            clock.clone() as Arc<dyn WaitClock>,
        );
        let wall = std::time::Instant::now();
        assert_eq!(llm.complete("p").unwrap().text, "ok");
        assert_eq!(mqo_obs::Clock::now_micros(&*clock), 30_000_000, "spike spent on the clock");
        assert!(wall.elapsed().as_millis() < 1_000, "…not in wall time");
    }

    #[test]
    fn truncation_and_malformed_still_bill() {
        let cfg = FaultConfig { truncated_rate: 1.0, ..Default::default() };
        let clock = Arc::new(ManualClock::new());
        let llm = FaultyLlm::new(
            ScriptedLlm::new(["Category: ['AI'] because reasons"]),
            FaultSchedule::seeded(1, cfg),
            clock.clone() as Arc<dyn WaitClock>,
        );
        let c = llm.complete("p").unwrap();
        assert!(c.text.len() < "Category: ['AI'] because reasons".len());
        assert!(llm.meter().totals().prompt_tokens > 0, "the cut-off answer was billed");

        let cfg = FaultConfig { malformed_rate: 1.0, ..Default::default() };
        let llm = FaultyLlm::new(
            ScriptedLlm::new(["Category: ['AI']"]),
            FaultSchedule::seeded(1, cfg),
            clock as Arc<dyn WaitClock>,
        );
        let c = llm.complete("p").unwrap();
        assert!(c.text.contains("drifted"), "got: {}", c.text);
    }

    #[test]
    fn config_parsing_round_trips_the_cli_spec() {
        let cfg = FaultConfig::parse(
            "error=0.1, malformed=0.05,rate-limit=0.02,latency=0.01,truncate=0.02,\
             retry-after-micros=5000,latency-micros=700,outage=40+10",
        )
        .unwrap();
        assert_eq!(cfg.transient_rate, 0.1);
        assert_eq!(cfg.malformed_rate, 0.05);
        assert_eq!(cfg.rate_limited_rate, 0.02);
        assert_eq!(cfg.latency_rate, 0.01);
        assert_eq!(cfg.truncated_rate, 0.02);
        assert_eq!(cfg.retry_after_micros, 5000);
        assert_eq!(cfg.latency_micros, 700);
        assert_eq!(cfg.outage, Some((40, 10)));
        assert!(FaultConfig::parse("error=2").is_err(), "rates above 1 rejected");
        assert!(FaultConfig::parse("bogus=1").is_err(), "unknown keys rejected");
        assert!(FaultConfig::parse("error=0.9,malformed=0.9").is_err(), "sum > 1 rejected");
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
    }

    #[test]
    fn clean_schedules_pass_everything_through() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Recorder::new());
        let llm =
            FaultyLlm::new(ScriptedLlm::new(["a", "b"]), FaultSchedule::clean(), clock as _)
                .with_sink(sink.clone());
        assert_eq!(llm.complete("p").unwrap().text, "a");
        assert_eq!(llm.complete("p").unwrap().text, "b");
        assert!(sink.of_kind("fault_injected").is_empty());
    }
}
