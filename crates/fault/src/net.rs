//! Network chaos: a seeded TCP proxy that breaks connections on purpose.
//!
//! [`FaultyLlm`](crate::FaultyLlm) injects faults *inside* the process —
//! the transport call fails, but the bytes on the wire were never real.
//! [`ChaosProxy`] attacks the other surface: the HTTP server's socket
//! handling. It sits between a client and an upstream server and, per
//! connection, either passes bytes through untouched or injects one of
//! four wire-level faults:
//!
//! * **reset** — the response is cut off after a few bytes and the
//!   connection dropped, so the client sees a mid-response hangup;
//! * **stall** — a slow-loris request: a few request bytes trickle
//!   upstream, then the connection goes silent and dies. The server must
//!   give up within its read budget instead of pinning a handler thread;
//! * **partial_write** — the response is truncated mid-headers;
//! * **abort** — one exchange is allowed to complete, then the keep-alive
//!   session is torn down, forcing the client to reconnect.
//!
//! Like [`FaultSchedule`](crate::FaultSchedule), the draw is pure in
//! `(seed, connection index)` — the same seed always breaks the same
//! connections the same way, so a chaos run is reproducible bit for bit.
//! Every injection is announced as [`Event::ChaosInjected`] so the
//! server's metrics and flight recorder show the attack as it lands.

use mqo_obs::{Event, EventSink};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One wire-level fault drawn from a schedule for a specific connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Pass the connection through untouched.
    None,
    /// Drop the connection after forwarding a few response bytes.
    Reset,
    /// Slow-loris: trickle a few request bytes, then go silent and die.
    Stall,
    /// Truncate the response mid-headers.
    PartialWrite,
    /// Allow one exchange, then tear down the keep-alive session.
    AbortKeepAlive,
}

impl NetFault {
    /// Stable name used in [`Event::ChaosInjected`].
    pub fn name(self) -> &'static str {
        match self {
            NetFault::None => "none",
            NetFault::Reset => "reset",
            NetFault::Stall => "stall",
            NetFault::PartialWrite => "partial_write",
            NetFault::AbortKeepAlive => "abort",
        }
    }
}

/// Independent per-fault probabilities, checked in order (reset, stall,
/// partial, abort) against one uniform draw per connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultConfig {
    /// Probability of a mid-response connection drop.
    pub reset_rate: f64,
    /// Probability of a slow-loris stalled request.
    pub stall_rate: f64,
    /// Probability of a truncated response.
    pub partial_rate: f64,
    /// Probability of a keep-alive abort after one exchange.
    pub abort_rate: f64,
    /// How long a stalled connection stays silent before dying.
    pub stall_millis: u64,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        NetFaultConfig {
            reset_rate: 0.0,
            stall_rate: 0.0,
            partial_rate: 0.0,
            abort_rate: 0.0,
            stall_millis: 200,
        }
    }
}

impl NetFaultConfig {
    /// Parse a CLI spec like
    /// `"reset=0.1,stall=0.05,partial=0.05,abort=0.1,stall-millis=200"`.
    /// Unknown keys are rejected; omitted keys keep their defaults.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut cfg = NetFaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("net chaos spec item {part:?} is not key=value"))?;
            let rate = || -> std::result::Result<f64, String> {
                let r: f64 = value.parse().map_err(|_| format!("bad rate in {part:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("rate out of [0,1] in {part:?}"));
                }
                Ok(r)
            };
            match key {
                "reset" => cfg.reset_rate = rate()?,
                "stall" => cfg.stall_rate = rate()?,
                "partial" | "partial-write" => cfg.partial_rate = rate()?,
                "abort" => cfg.abort_rate = rate()?,
                "stall-millis" => {
                    cfg.stall_millis =
                        value.parse().map_err(|_| format!("bad millis in {part:?}"))?;
                }
                other => return Err(format!("unknown net chaos key {other:?}")),
            }
        }
        let total = cfg.reset_rate + cfg.stall_rate + cfg.partial_rate + cfg.abort_rate;
        if total > 1.0 {
            return Err(format!("net chaos rates sum to {total:.3} > 1"));
        }
        Ok(cfg)
    }
}

/// A seeded, deterministic mapping from connection index to [`NetFault`].
/// The draw for connection `i` depends only on `(seed, i)` — the same
/// splitmix64 stationary hash [`FaultSchedule`](crate::FaultSchedule)
/// uses, so a chaos run can be replayed or inspected ahead of time.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultSchedule {
    seed: u64,
    cfg: NetFaultConfig,
}

impl NetFaultSchedule {
    /// A schedule drawing faults per `cfg` under `seed`.
    pub fn seeded(seed: u64, cfg: NetFaultConfig) -> Self {
        NetFaultSchedule { seed, cfg }
    }

    /// The fault (or [`NetFault::None`]) for connection `conn`.
    pub fn fault_for(&self, conn: u64) -> NetFault {
        let u = super::mix(self.seed, conn) as f64 / u64::MAX as f64;
        let mut edge = self.cfg.reset_rate;
        if u < edge {
            return NetFault::Reset;
        }
        edge += self.cfg.stall_rate;
        if u < edge {
            return NetFault::Stall;
        }
        edge += self.cfg.partial_rate;
        if u < edge {
            return NetFault::PartialWrite;
        }
        edge += self.cfg.abort_rate;
        if u < edge {
            return NetFault::AbortKeepAlive;
        }
        NetFault::None
    }

    /// The configured stall duration.
    pub fn stall(&self) -> Duration {
        Duration::from_millis(self.cfg.stall_millis)
    }
}

/// Hard ceiling on how long either pump waits on a silent socket, so a
/// wedged peer cannot pin a proxy thread past a drain.
const PUMP_TIMEOUT: Duration = Duration::from_secs(10);

/// How one direction of a proxied connection forwards bytes.
enum Pump {
    /// Forward everything until EOF or error.
    Copy,
    /// Forward at most this many bytes, then tear the connection down.
    Truncate(usize),
    /// Forward until the stream goes idle for this long *after* at least
    /// one byte moved, then tear the connection down (keep-alive abort).
    CloseAfterIdle(Duration),
}

/// Copy bytes `from → to` per `plan`; on exit, shut both streams down so
/// the opposite pump unblocks too. Returns bytes forwarded.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: Pump) -> u64 {
    let idle = match &plan {
        Pump::CloseAfterIdle(idle) => *idle,
        _ => PUMP_TIMEOUT,
    };
    let _ = from.set_read_timeout(Some(idle));
    let mut buf = [0u8; 8192];
    let mut forwarded: u64 = 0;
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let take = match plan {
                    Pump::Truncate(limit) => (limit.saturating_sub(forwarded as usize)).min(n),
                    _ => n,
                };
                if take > 0 && to.write_all(&buf[..take]).is_err() {
                    break;
                }
                forwarded += take as u64;
                if matches!(plan, Pump::Truncate(limit) if forwarded as usize >= limit) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && matches!(plan, Pump::CloseAfterIdle(_))
                    && forwarded > 0 =>
            {
                // One exchange went through and the line went quiet:
                // this is where the keep-alive abort strikes.
                break;
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
    forwarded
}

/// Serve one proxied connection, applying `fault` to it.
fn handle_conn(client: TcpStream, upstream_addr: SocketAddr, fault: NetFault, stall: Duration) {
    if fault == NetFault::Stall {
        // Slow-loris: never contact the upstream with a whole request.
        // Read a little of the client's bytes, forward *some* of them
        // upstream, then go silent for the stall window and vanish.
        if let Ok(mut upstream) = TcpStream::connect(upstream_addr) {
            let mut c = client;
            let _ = c.set_read_timeout(Some(PUMP_TIMEOUT));
            let mut buf = [0u8; 64];
            if let Ok(n) = c.read(&mut buf) {
                let _ = upstream.write_all(&buf[..n.min(16)]);
            }
            thread::sleep(stall);
            let _ = upstream.shutdown(Shutdown::Both);
            let _ = c.shutdown(Shutdown::Both);
        }
        return;
    }
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    // Request path runs on its own thread; the response path (where most
    // faults land) runs here. Each pump shuts both sockets down when it
    // finishes, so neither thread outlives the connection.
    let request_pump = thread::spawn(move || pump(client_r, upstream_r, Pump::Copy));
    let response_plan = match fault {
        NetFault::Reset => Pump::Truncate(8),
        NetFault::PartialWrite => Pump::Truncate(64),
        NetFault::AbortKeepAlive => Pump::CloseAfterIdle(Duration::from_millis(50)),
        NetFault::None | NetFault::Stall => Pump::Copy,
    };
    pump(upstream, client, response_plan);
    let _ = request_pump.join();
}

/// The chaos proxy: accepts client connections, draws a [`NetFault`] per
/// connection index, and forwards traffic to the upstream server through
/// that fault. Stop with [`ChaosProxy::stop`] (dropping stops it too).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    injected: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and start proxying to
    /// `upstream`. Injections are announced on `sink` as
    /// [`Event::ChaosInjected`].
    pub fn start(
        listen: &str,
        upstream: SocketAddr,
        schedule: NetFaultSchedule,
        sink: Arc<dyn EventSink>,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let injected = Arc::new(AtomicU64::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            let injected = Arc::clone(&injected);
            thread::Builder::new().name("mqo-chaos-accept".into()).spawn(move || {
                let mut conn_index: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let conn = conn_index;
                            conn_index += 1;
                            let fault = schedule.fault_for(conn);
                            if fault != NetFault::None {
                                injected.fetch_add(1, Ordering::Relaxed);
                                sink.emit(&Event::ChaosInjected {
                                    conn,
                                    action: fault.name().into(),
                                });
                            }
                            let stall = schedule.stall();
                            let handle = thread::spawn(move || {
                                handle_conn(client, upstream, fault, stall);
                            });
                            let mut reg = handlers.lock().expect("chaos handler registry");
                            reg.retain(|h| !h.is_finished());
                            reg.push(handle);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(2)),
                    }
                }
            })?
        };
        Ok(ChaosProxy { addr, stop, accept: Some(accept), handlers, injected })
    }

    /// The proxy's listen address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections that had a fault injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the connection pumps.
    pub fn stop(mut self) {
        self.stop_in_place();
    }

    fn stop_in_place(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers =
            std::mem::take(&mut *self.handlers.lock().expect("chaos handler registry"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_in_place();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_obs::Recorder;
    use std::io::BufRead;

    /// A tiny upstream: answers every HTTP request on a connection with
    /// a fixed 200 until the client hangs up.
    fn tiny_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for _ in 0..16 {
                let Ok((stream, _)) = listener.accept() else { return };
                thread::spawn(move || {
                    let mut reader = io::BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    loop {
                        // Read one request's header block.
                        let mut saw_any = false;
                        loop {
                            let mut line = String::new();
                            match reader.read_line(&mut line) {
                                Ok(0) => return,
                                Ok(_) if line == "\r\n" || line == "\n" => break,
                                Ok(_) => saw_any = true,
                                Err(_) => return,
                            }
                        }
                        if !saw_any {
                            return;
                        }
                        let body = "{\"status\":\"ok\"}\n";
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                             content-length: {}\r\n\r\n{}",
                            body.len(),
                            body
                        );
                        if stream.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn get(addr: SocketAddr) -> io::Result<String> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(b"GET / HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")?;
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    out.extend_from_slice(&buf[..n]);
                    // The tiny upstream never closes first; one complete
                    // response body is all a test needs.
                    if out.ends_with(b"}\n") {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn schedules_are_deterministic_and_cover_every_fault() {
        let cfg = NetFaultConfig {
            reset_rate: 0.2,
            stall_rate: 0.2,
            partial_rate: 0.2,
            abort_rate: 0.2,
            ..NetFaultConfig::default()
        };
        let a = NetFaultSchedule::seeded(11, cfg);
        let b = NetFaultSchedule::seeded(11, cfg);
        let draw = |s: &NetFaultSchedule| (0..200).map(|i| s.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        for name in ["reset", "stall", "partial_write", "abort", "none"] {
            assert!(draw(&a).iter().any(|f| f.name() == name), "no {name} in 200 draws");
        }
    }

    #[test]
    fn config_parsing_round_trips_the_cli_spec() {
        let cfg = NetFaultConfig::parse(
            "reset=0.1, stall=0.05,partial=0.2,abort=0.1,stall-millis=50",
        )
        .unwrap();
        assert_eq!(cfg.reset_rate, 0.1);
        assert_eq!(cfg.stall_rate, 0.05);
        assert_eq!(cfg.partial_rate, 0.2);
        assert_eq!(cfg.abort_rate, 0.1);
        assert_eq!(cfg.stall_millis, 50);
        assert!(NetFaultConfig::parse("bogus=1").is_err(), "unknown keys rejected");
        assert!(NetFaultConfig::parse("reset=0.9,abort=0.9").is_err(), "sum > 1 rejected");
        assert_eq!(NetFaultConfig::parse("").unwrap(), NetFaultConfig::default());
    }

    #[test]
    fn clean_proxy_passes_requests_through() {
        let (upstream, _server) = tiny_upstream();
        let sink = Arc::new(Recorder::new());
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            upstream,
            NetFaultSchedule::seeded(1, NetFaultConfig::default()),
            sink.clone(),
        )
        .unwrap();
        let resp = get(proxy.addr()).unwrap();
        assert!(resp.contains("200 OK"), "got: {resp}");
        assert!(resp.contains("\"ok\""), "got: {resp}");
        assert_eq!(proxy.injected(), 0);
        assert!(sink.of_kind("chaos_injected").is_empty());
        proxy.stop();
    }

    #[test]
    fn injected_faults_break_connections_and_announce_themselves() {
        let (upstream, _server) = tiny_upstream();
        let sink = Arc::new(Recorder::new());
        // Every connection resets: the client never sees a whole response.
        let cfg = NetFaultConfig { reset_rate: 1.0, ..NetFaultConfig::default() };
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            upstream,
            NetFaultSchedule::seeded(1, cfg),
            sink.clone(),
        )
        .unwrap();
        let resp = get(proxy.addr()).unwrap_or_default();
        assert!(
            resp.len() <= 8,
            "a reset connection must not deliver the response, got {} bytes",
            resp.len()
        );
        assert!(proxy.injected() >= 1);
        let events = sink.of_kind("chaos_injected");
        assert!(!events.is_empty(), "injection must announce itself");
        proxy.stop();
    }

    #[test]
    fn stalled_connections_die_without_wedging_the_proxy() {
        let (upstream, _server) = tiny_upstream();
        let sink = Arc::new(Recorder::new());
        let cfg =
            NetFaultConfig { stall_rate: 1.0, stall_millis: 30, ..NetFaultConfig::default() };
        let proxy =
            ChaosProxy::start("127.0.0.1:0", upstream, NetFaultSchedule::seeded(2, cfg), sink)
                .unwrap();
        let started = std::time::Instant::now();
        let resp = get(proxy.addr()).unwrap_or_default();
        assert!(!resp.contains("\"ok\""), "a stalled request must not complete: {resp}");
        assert!(started.elapsed() < Duration::from_secs(5), "stall must be bounded");
        proxy.stop();
    }
}
