//! # mqo-data — calibrated synthetic TAG datasets
//!
//! Stand-ins for the paper's five datasets (Table II): Cora, Citeseer,
//! Pubmed, Ogbn-Arxiv, Ogbn-Products. Real copies are not downloadable in
//! this environment, so each dataset is *generated* with the statistics the
//! paper's experiments actually depend on:
//!
//! * node/edge/class counts from Table II (scalable via a `scale` factor
//!   for the two OGB-size graphs — the executed experiments use 1,000
//!   queries regardless, matching the paper's protocol);
//! * edge homophily matching the published values for each graph (this
//!   drives the query-boosting results);
//! * a latent per-node *text informativeness* drawn from a two-component
//!   mixture whose high-component weight is calibrated so the simulated
//!   LLM's zero-shot accuracy lands on the paper's measured values
//!   (Table V's "proportion of saturated nodes" row: 69.0 / 60.1 / 90.0 /
//!   73.1 / 79.4 %);
//! * title/abstract lengths calibrated so neighbor-text token counts match
//!   Table V's per-configuration measurements.
//!
//! The generator never leaks the latent informativeness into the pipeline:
//! the LLM and the surrogate classifier see only the text. `alphas` are
//! exported on [`DatasetBundle`] purely for analysis and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod graphlevel;
pub mod persist;
pub mod registry;
pub mod spec;

pub use generate::{generate, DatasetBundle};
pub use registry::{all_specs, dataset, DatasetId};
pub use spec::DatasetSpec;
