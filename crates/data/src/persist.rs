//! Binary persistence for generated datasets.
//!
//! Every bench binary regenerates its datasets from the seed, which is
//! reproducible but wasteful for the OGB-size graphs. This module saves a
//! [`DatasetBundle`]'s *contents* — graph, texts, labels, latents, and the
//! lexicon's construction parameters (the lexicon itself is deterministic,
//! so five integers reconstruct it) — in a length-prefixed little-endian
//! binary format framed with `bytes` (the workspace's one binary-IO
//! dependency; see DESIGN.md).
//!
//! Format (`MQOTAG2\n` magic, then little-endian fields):
//!
//! ```text
//! header   magic[8] | fingerprint u64 | name | scale f64
//! lexicon  seed u64 | classes u16 | per_class u32 | shared u32 | markers u32
//! classes  count u16 | name*
//! graph    nodes u32 | edges u64 | (u32, u32)*        (each edge once)
//! nodes    per node: label u16 | alpha f32 | adversarial u8 | title | body
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. The spec is *not* persisted
//! (it is code, not data); [`load`] returns the bundle with the spec the
//! caller supplies.
//!
//! The fingerprint is FNV-1a 64 over every byte after the fingerprint
//! field. A truncated copy, a flipped bit, or a file whose tail belongs
//! to a different dataset fails the check at load — loudly, as
//! [`PersistError::Corrupt`] — instead of deserializing garbage that is
//! only caught (or worse, not caught) thousands of records later. This
//! matters most for sharded deployments, where per-shard files are
//! copied between machines.

use crate::generate::DatasetBundle;
use crate::spec::DatasetSpec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};
use mqo_text::Lexicon;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"MQOTAG2\n";

/// FNV-1a 64-bit over `bytes` — the persistence fingerprint. Not
/// cryptographic; it exists to catch truncation, bit rot, and
/// mismatched shard files, all of which it detects with probability
/// ~1 − 2⁻⁶⁴ per corruption.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid dataset image.
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt dataset file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Corrupt("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(PersistError::Corrupt("truncated string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupt("invalid utf-8"))
}

/// Serialize a bundle to bytes.
pub fn to_bytes(bundle: &DatasetBundle) -> Bytes {
    let tag = &bundle.tag;
    let mut buf = BytesMut::with_capacity(tag.num_nodes() * 256);
    put_str(&mut buf, tag.name());
    buf.put_f64_le(bundle.scale);

    let lex = &bundle.lexicon;
    buf.put_u64_le(lex.seed());
    buf.put_u16_le(lex.num_classes());
    buf.put_u32_le(lex.class_size());
    buf.put_u32_le(lex.shared_size());
    buf.put_u32_le(lex.marker_size());

    buf.put_u16_le(tag.num_classes() as u16);
    for name in tag.class_names() {
        put_str(&mut buf, name);
    }

    buf.put_u32_le(tag.num_nodes() as u32);
    buf.put_u64_le(tag.num_edges());
    for (u, v) in tag.graph().edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
    }

    for v in tag.node_ids() {
        buf.put_u16_le(tag.label(v).0);
        buf.put_f32_le(bundle.alphas[v.index()]);
        buf.put_u8(u8::from(bundle.adversarial[v.index()]));
        let t = tag.text(v);
        put_str(&mut buf, &t.title);
        put_str(&mut buf, &t.body);
    }
    let payload = buf.freeze();
    let mut framed = BytesMut::with_capacity(MAGIC.len() + 8 + payload.len());
    framed.put_slice(MAGIC);
    framed.put_u64_le(fingerprint(&payload));
    framed.put_slice(&payload);
    framed.freeze()
}

/// Deserialize a bundle; the caller supplies the spec (code, not data).
pub fn from_bytes(mut buf: Bytes, spec: DatasetSpec) -> Result<DatasetBundle, PersistError> {
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(PersistError::Corrupt("bad magic"));
    }
    if buf.remaining() < 8 {
        return Err(PersistError::Corrupt("truncated fingerprint"));
    }
    let stored = buf.get_u64_le();
    if fingerprint(&buf) != stored {
        return Err(PersistError::Corrupt("fingerprint mismatch (truncated or corrupt file)"));
    }
    let name = get_str(&mut buf)?;
    if buf.remaining() < 8 + 8 + 2 + 4 + 4 + 4 {
        return Err(PersistError::Corrupt("truncated header"));
    }
    let scale = buf.get_f64_le();
    let lex_seed = buf.get_u64_le();
    let lex_classes = buf.get_u16_le();
    let lex_per_class = buf.get_u32_le();
    let lex_shared = buf.get_u32_le();
    let lex_markers = buf.get_u32_le();
    let lexicon = Arc::new(Lexicon::with_markers(
        lex_seed,
        lex_classes,
        lex_per_class,
        lex_shared,
        lex_markers,
    ));

    if buf.remaining() < 2 {
        return Err(PersistError::Corrupt("truncated class count"));
    }
    let k = buf.get_u16_le() as usize;
    let mut class_names = Vec::with_capacity(k);
    for _ in 0..k {
        class_names.push(get_str(&mut buf)?);
    }

    if buf.remaining() < 12 {
        return Err(PersistError::Corrupt("truncated graph header"));
    }
    let n = buf.get_u32_le() as usize;
    let m = buf.get_u64_le();
    let mut builder = GraphBuilder::with_capacity(n, m as usize);
    for _ in 0..m {
        if buf.remaining() < 8 {
            return Err(PersistError::Corrupt("truncated edge list"));
        }
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        builder.add_edge(u, v).map_err(|_| PersistError::Corrupt("edge out of range"))?;
    }

    let mut labels = Vec::with_capacity(n);
    let mut alphas = Vec::with_capacity(n);
    let mut adversarial = Vec::with_capacity(n);
    let mut texts = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 7 {
            return Err(PersistError::Corrupt("truncated node record"));
        }
        labels.push(ClassId(buf.get_u16_le()));
        alphas.push(buf.get_f32_le());
        adversarial.push(buf.get_u8() != 0);
        let title = get_str(&mut buf)?;
        let body = get_str(&mut buf)?;
        texts.push(NodeText::new(title, body));
    }

    let tag = Tag::new(name, builder.build(), texts, labels, class_names)
        .map_err(|_| PersistError::Corrupt("inconsistent arrays"))?;
    Ok(DatasetBundle { tag, lexicon, alphas, adversarial, spec, scale })
}

/// Save a bundle to a file.
pub fn save(bundle: &DatasetBundle, path: impl AsRef<Path>) -> Result<(), PersistError> {
    Ok(fs::write(path, to_bytes(bundle))?)
}

/// Load a bundle from a file, attaching `spec`.
pub fn load(path: impl AsRef<Path>, spec: DatasetSpec) -> Result<DatasetBundle, PersistError> {
    from_bytes(Bytes::from(fs::read(path)?), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DatasetId;
    use crate::{dataset, generate};
    use mqo_graph::NodeId;

    fn roundtrip(bundle: &DatasetBundle) -> DatasetBundle {
        from_bytes(to_bytes(bundle), bundle.spec.clone()).expect("roundtrip")
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let original = dataset(DatasetId::Cora, Some(0.2), 61);
        let back = roundtrip(&original);
        assert_eq!(back.tag.name(), original.tag.name());
        assert_eq!(back.tag.num_nodes(), original.tag.num_nodes());
        assert_eq!(back.tag.num_edges(), original.tag.num_edges());
        assert_eq!(back.tag.class_names(), original.tag.class_names());
        assert_eq!(back.alphas, original.alphas);
        assert_eq!(back.adversarial, original.adversarial);
        assert_eq!(back.scale, original.scale);
        for v in original.tag.node_ids().take(50) {
            assert_eq!(back.tag.text(v), original.tag.text(v));
            assert_eq!(back.tag.label(v), original.tag.label(v));
            assert_eq!(back.tag.graph().neighbors(v), original.tag.graph().neighbors(v));
        }
        // The reconstructed lexicon decodes the reconstructed texts.
        let text = back.tag.text(NodeId(0)).full();
        let decodable =
            text.split_whitespace().filter(|w| back.lexicon.kind_of_word(w).is_some()).count();
        assert!(decodable > 10, "lexicon reconstruction broken");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mqo-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cora.mqotag");
        let original = dataset(DatasetId::Cora, Some(0.15), 62);
        save(&original, &path).unwrap();
        let back = load(&path, original.spec.clone()).unwrap();
        assert_eq!(back.tag.num_nodes(), original.tag.num_nodes());
        assert_eq!(back.alphas, original.alphas);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicked() {
        let spec = DatasetId::Cora.spec();
        assert!(from_bytes(Bytes::from_static(b""), spec.clone()).is_err());
        assert!(from_bytes(Bytes::from_static(b"NOTMAGIC"), spec.clone()).is_err());
        // Valid magic, truncated afterwards.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(3);
        buf.put_slice(b"co"); // promised 3 bytes, gave 2
        assert!(matches!(from_bytes(buf.freeze(), spec), Err(PersistError::Corrupt(_))));
    }

    /// Bugfix regression: the header used to carry no fingerprint, so a
    /// truncated or bit-flipped file deserialized as far as its damage
    /// allowed — or worse, all the way, yielding a silently wrong
    /// dataset. Both must now fail loudly at load.
    #[test]
    fn truncated_and_corrupted_images_fail_the_fingerprint() {
        let original = dataset(DatasetId::Cora, Some(0.1), 64);
        let bytes = to_bytes(&original);

        // Truncation: drop the tail (the old format often survived this
        // when the cut landed between node records).
        let cut = Bytes::from(bytes[..bytes.len() - 16].to_vec());
        match from_bytes(cut, original.spec.clone()) {
            Err(PersistError::Corrupt(what)) => {
                assert!(what.contains("fingerprint"), "got: {what}")
            }
            other => panic!("truncated image must fail the fingerprint, got {other:?}"),
        }

        // Single flipped bit deep in the payload: previously undetected
        // (it would alter one text or label in place).
        let mut flipped = bytes.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        match from_bytes(Bytes::from(flipped), original.spec.clone()) {
            Err(PersistError::Corrupt(what)) => {
                assert!(what.contains("fingerprint"), "got: {what}")
            }
            other => panic!("corrupt image must fail the fingerprint, got {other:?}"),
        }

        // Fingerprint of the intact image still verifies.
        assert!(from_bytes(bytes, original.spec.clone()).is_ok());
    }

    #[test]
    fn generated_and_loaded_bundles_behave_identically() {
        // The loaded bundle must drive the simulator identically: same
        // lexicon, same texts → same decisions.
        use mqo_llm::{LanguageModel, ModelProfile, SimLlm};
        let spec = DatasetId::Citeseer.spec();
        let original = generate(&spec, 0.15, 63);
        let back = roundtrip(&original);
        let prompt = |b: &DatasetBundle| {
            let t = b.tag.text(NodeId(5));
            mqo_llm::NodePromptSpec {
                title: &t.title,
                abstract_text: &t.body,
                neighbors: &[],
                categories: b.tag.class_names(),
                ranked: false,
            }
            .render()
        };
        let llm_a = SimLlm::new(
            original.lexicon.clone(),
            original.tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        let llm_b = SimLlm::new(
            back.lexicon.clone(),
            back.tag.class_names().to_vec(),
            ModelProfile::gpt35(),
        );
        assert_eq!(
            llm_a.complete(&prompt(&original)).unwrap().text,
            llm_b.complete(&prompt(&back)).unwrap().text
        );
    }
}
