//! The five calibrated dataset specs (Table II) and a registry API.

use crate::generate::{generate, DatasetBundle};
use crate::spec::DatasetSpec;
use mqo_graph::SplitConfig;
use mqo_text::DocumentSpec;

/// The paper's five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Cora citation network (2,708 nodes, 7 classes).
    Cora,
    /// Citeseer citation network (3,186 nodes, 6 classes).
    Citeseer,
    /// Pubmed citation network (19,717 nodes, 3 classes).
    Pubmed,
    /// Ogbn-Arxiv citation network (169,343 nodes, 40 classes).
    OgbnArxiv,
    /// Ogbn-Products co-purchase network (2,449,029 nodes, 47 classes).
    OgbnProducts,
}

impl DatasetId {
    /// All five, in Table II order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::Cora,
        DatasetId::Citeseer,
        DatasetId::Pubmed,
        DatasetId::OgbnArxiv,
        DatasetId::OgbnProducts,
    ];

    /// The three small (Planetoid-style) datasets used for the
    /// query-boosting classification experiments.
    pub const SMALL: [DatasetId; 3] = [DatasetId::Cora, DatasetId::Citeseer, DatasetId::Pubmed];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Cora => "cora",
            DatasetId::Citeseer => "citeseer",
            DatasetId::Pubmed => "pubmed",
            DatasetId::OgbnArxiv => "ogbn-arxiv",
            DatasetId::OgbnProducts => "ogbn-products",
        }
    }

    /// Default generation scale: paper-size for the small graphs, reduced
    /// for the OGB graphs (experiments use 1,000 queries regardless; the
    /// analytic tables use full-scale counts from the spec).
    pub fn default_scale(self) -> f64 {
        match self {
            DatasetId::Cora | DatasetId::Citeseer | DatasetId::Pubmed => 1.0,
            DatasetId::OgbnArxiv => 0.2,
            DatasetId::OgbnProducts => 0.02,
        }
    }

    /// This dataset's spec.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetId::Cora => cora(),
            DatasetId::Citeseer => citeseer(),
            DatasetId::Pubmed => pubmed(),
            DatasetId::OgbnArxiv => ogbn_arxiv(),
            DatasetId::OgbnProducts => ogbn_products(),
        }
    }
}

/// Generate a dataset by id. `scale` of `None` uses the default.
pub fn dataset(id: DatasetId, scale: Option<f64>, seed: u64) -> DatasetBundle {
    let spec = id.spec();
    generate(&spec, scale.unwrap_or_else(|| id.default_scale()), seed)
}

/// All five specs in Table II order.
pub fn all_specs() -> Vec<DatasetSpec> {
    DatasetId::ALL.iter().map(|id| id.spec()).collect()
}

fn names(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Cora: 7 ML-subfield classes, high homophily, zero-shot ≈ 69%.
fn cora() -> DatasetSpec {
    DatasetSpec {
        name: "cora",
        nodes: 2708,
        edges: 5429,
        class_names: names(&[
            "Case Based",
            "Genetic Algorithms",
            "Neural Networks",
            "Probabilistic Methods",
            "Reinforcement Learning",
            "Rule Learning",
            "Theory",
        ]),
        homophily: 0.81,
        saturated_frac: 0.68,
        adversarial_frac: 0.10,
        alpha_high: (0.25, 0.70),
        alpha_low: (0.0, 0.10),
        doc: DocumentSpec { title_words: 9, body_words: 90, cross_noise: 0.25, zipf_s: 1.05 },
        degree_tail: 2.6,
        closure_frac: 0.25,
        lexicon_per_class: 400,
        lexicon_shared: 4000,
        lexicon_markers: 4000,
        link_marker_prob: 0.45,
        split: SplitConfig::PerClass { per_class: 20, num_queries: 1000 },
    }
}

/// Citeseer: 6 CS-area classes, the hardest of the small graphs
/// (zero-shot ≈ 60%).
fn citeseer() -> DatasetSpec {
    DatasetSpec {
        name: "citeseer",
        nodes: 3186,
        edges: 4277,
        class_names: names(&[
            "Agents",
            "Artificial Intelligence",
            "Database",
            "Information Retrieval",
            "Machine Learning",
            "Human Computer Interaction",
        ]),
        homophily: 0.74,
        saturated_frac: 0.62,
        adversarial_frac: 0.08,
        alpha_high: (0.22, 0.65),
        alpha_low: (0.0, 0.10),
        doc: DocumentSpec { title_words: 15, body_words: 85, cross_noise: 0.28, zipf_s: 1.05 },
        degree_tail: 2.8,
        closure_frac: 0.22,
        lexicon_per_class: 400,
        lexicon_shared: 4000,
        lexicon_markers: 4000,
        link_marker_prob: 0.9,
        split: SplitConfig::PerClass { per_class: 20, num_queries: 1000 },
    }
}

/// Pubmed: 3 diabetes classes, very high zero-shot (≈ 90%) — the dataset
/// where neighbor text *hurts* (Fig. 7 endpoint inversion).
fn pubmed() -> DatasetSpec {
    DatasetSpec {
        name: "pubmed",
        nodes: 19_717,
        edges: 44_338,
        class_names: names(&[
            "Diabetes Mellitus Experimental",
            "Diabetes Mellitus Type 1",
            "Diabetes Mellitus Type 2",
        ]),
        homophily: 0.80,
        saturated_frac: 0.97,
        adversarial_frac: 0.03,
        alpha_high: (0.32, 0.83),
        alpha_low: (0.0, 0.10),
        doc: DocumentSpec { title_words: 12, body_words: 150, cross_noise: 0.36, zipf_s: 1.05 },
        degree_tail: 2.5,
        closure_frac: 0.20,
        lexicon_per_class: 400,
        lexicon_shared: 4000,
        lexicon_markers: 4000,
        link_marker_prob: 0.9,
        split: SplitConfig::PerClass { per_class: 20, num_queries: 1000 },
    }
}

/// Ogbn-Arxiv: 40 arXiv CS categories, moderate homophily, zero-shot ≈ 73%.
fn ogbn_arxiv() -> DatasetSpec {
    DatasetSpec {
        name: "ogbn-arxiv",
        nodes: 169_343,
        edges: 1_166_243,
        class_names: names(&[
            "cs.AI", "cs.AR", "cs.CC", "cs.CE", "cs.CG", "cs.CL", "cs.CR", "cs.CV", "cs.CY",
            "cs.DB", "cs.DC", "cs.DL", "cs.DM", "cs.DS", "cs.ET", "cs.FL", "cs.GL", "cs.GR",
            "cs.GT", "cs.HC", "cs.IR", "cs.IT", "cs.LG", "cs.LO", "cs.MA", "cs.MM", "cs.MS",
            "cs.NA", "cs.NE", "cs.NI", "cs.OH", "cs.OS", "cs.PF", "cs.PL", "cs.RO", "cs.SC",
            "cs.SD", "cs.SE", "cs.SI", "cs.SY",
        ]),
        homophily: 0.66,
        saturated_frac: 0.75,
        adversarial_frac: 0.24,
        alpha_high: (0.25, 0.70),
        alpha_low: (0.0, 0.10),
        doc: DocumentSpec { title_words: 8, body_words: 105, cross_noise: 0.30, zipf_s: 1.05 },
        degree_tail: 2.0,
        closure_frac: 0.25,
        lexicon_per_class: 300,
        lexicon_shared: 8000,
        lexicon_markers: 8000,
        link_marker_prob: 0.5,
        split: SplitConfig::Fraction { labeled_fraction: 0.54, num_queries: 1000 },
    }
}

/// Ogbn-Products: 47 Amazon categories, heavy degree skew, zero-shot ≈ 79%.
fn ogbn_products() -> DatasetSpec {
    DatasetSpec {
        name: "ogbn-products",
        nodes: 2_449_029,
        edges: 61_859_140,
        class_names: names(&[
            "Home & Kitchen",
            "Health & Personal Care",
            "Beauty",
            "Sports & Outdoors",
            "Books",
            "Patio Lawn & Garden",
            "Toys & Games",
            "CDs & Vinyl",
            "Cell Phones & Accessories",
            "Grocery & Gourmet Food",
            "Arts Crafts & Sewing",
            "Clothing Shoes & Jewelry",
            "Electronics",
            "Movies & TV",
            "Software",
            "Video Games",
            "Automotive",
            "Pet Supplies",
            "Office Products",
            "Industrial & Scientific",
            "Musical Instruments",
            "Tools & Home Improvement",
            "Magazine Subscriptions",
            "Baby Products",
            "Appliances",
            "Kitchen & Dining",
            "Collectibles & Fine Art",
            "All Beauty",
            "Luxury Beauty",
            "Amazon Fashion",
            "Computers",
            "All Electronics",
            "Purchase Circles",
            "MP3 Players & Accessories",
            "Gift Cards",
            "Office & School Supplies",
            "Home Improvement",
            "Camera & Photo",
            "GPS & Navigation",
            "Digital Music",
            "Car Electronics",
            "Baby",
            "Kindle Store",
            "Buy a Kindle",
            "Furniture & Decor",
            "Everything Else",
            "Oral Care",
        ]),
        homophily: 0.81,
        saturated_frac: 0.765,
        adversarial_frac: 0.18,
        alpha_high: (0.25, 0.70),
        alpha_low: (0.0, 0.10),
        doc: DocumentSpec { title_words: 8, body_words: 60, cross_noise: 0.22, zipf_s: 1.05 },
        degree_tail: 1.8,
        closure_frac: 0.30,
        lexicon_per_class: 300,
        lexicon_shared: 8000,
        lexicon_markers: 8000,
        link_marker_prob: 0.5,
        split: SplitConfig::Fraction { labeled_fraction: 0.08, num_queries: 1000 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_match_the_paper() {
        let specs = all_specs();
        let expected: [(&str, usize, u64, usize); 5] = [
            ("cora", 2708, 5429, 7),
            ("citeseer", 3186, 4277, 6),
            ("pubmed", 19_717, 44_338, 3),
            ("ogbn-arxiv", 169_343, 1_166_243, 40),
            ("ogbn-products", 2_449_029, 61_859_140, 47),
        ];
        for (spec, (name, nodes, edges, classes)) in specs.iter().zip(expected) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.nodes, nodes);
            assert_eq!(spec.edges, edges);
            assert_eq!(spec.num_classes(), classes);
        }
    }

    #[test]
    fn class_names_are_unique_per_dataset() {
        for spec in all_specs() {
            let mut names: Vec<&String> = spec.class_names.iter().collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), spec.num_classes(), "{}", spec.name);
        }
    }

    #[test]
    fn saturation_matches_table5_proportions_approximately() {
        // The saturated_frac knob is a *generator input* calibrated so the
        // simulated zero-shot accuracy (measured in integration tests)
        // lands on Table V's row; it should sit near those values.
        let table5 = [0.690, 0.601, 0.900, 0.731, 0.794];
        for (spec, &target) in all_specs().iter().zip(&table5) {
            assert!(
                (spec.saturated_frac - target).abs() < 0.12,
                "{}: knob {} far from Table V {}",
                spec.name,
                spec.saturated_frac,
                target
            );
        }
    }

    #[test]
    fn generates_a_small_cora_quickly() {
        let b = dataset(DatasetId::Cora, Some(0.25), 7);
        assert_eq!(b.tag.name(), "cora");
        assert_eq!(b.tag.num_classes(), 7);
        assert!(b.tag.num_nodes() >= 600);
    }

    #[test]
    fn default_scales_are_sane() {
        assert_eq!(DatasetId::Cora.default_scale(), 1.0);
        assert!(DatasetId::OgbnProducts.default_scale() < 0.1);
    }
}
