//! Graph-level classification dataset (the paper's future-work setting,
//! §VII: "extending these strategies to graph-level tasks, such as
//! refining token pruning to exclude irrelevant subgraph tokens").
//!
//! A collection of small graphs (ego-net-sized), each with a *graph*
//! label. A graph class is defined by an affinity to a couple of node
//! topics: the graph's *relevant* nodes carry text from those topics,
//! while a configurable fraction of *irrelevant* nodes carry filler or
//! off-topic text — the "irrelevant subgraph tokens" that graph-level
//! token pruning should exclude.

use mqo_graph::{ClassId, GraphBuilder, NodeText, Tag};
use mqo_text::{DocumentSpec, Lexicon, TextSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of a graph-classification collection.
#[derive(Debug, Clone)]
pub struct GraphCollectionSpec {
    /// Number of graphs.
    pub num_graphs: usize,
    /// Graph-class names.
    pub graph_classes: Vec<String>,
    /// Node topics per graph class (each class owns this many topics; the
    /// node-topic universe is `graph_classes.len() × topics_per_class`).
    pub topics_per_class: usize,
    /// Nodes per graph, inclusive range.
    pub nodes_per_graph: (usize, usize),
    /// Fraction of *irrelevant* nodes per graph (off-topic / filler).
    pub irrelevant_frac: f64,
    /// Mean degree of the intra-graph topology.
    pub mean_degree: f64,
    /// Node-text shape.
    pub doc: DocumentSpec,
    /// Informativeness of relevant node texts.
    pub alpha: (f64, f64),
}

impl Default for GraphCollectionSpec {
    fn default() -> Self {
        GraphCollectionSpec {
            num_graphs: 200,
            graph_classes: vec![
                "Molecular biology".into(),
                "Systems".into(),
                "Optimization".into(),
                "Vision".into(),
            ],
            topics_per_class: 2,
            nodes_per_graph: (12, 30),
            irrelevant_frac: 0.4,
            mean_degree: 4.0,
            doc: DocumentSpec {
                title_words: 7,
                body_words: 25,
                cross_noise: 0.1,
                zipf_s: 1.05,
            },
            alpha: (0.3, 0.7),
        }
    }
}

/// One small graph in the collection.
#[derive(Debug, Clone)]
pub struct SmallGraph {
    /// The graph with node texts (node labels are the node *topics*).
    pub tag: Tag,
    /// The graph-level label.
    pub label: ClassId,
    /// Latent per-node relevance flags (analysis/tests only — strategies
    /// must rank relevance from text, not read this).
    pub relevant: Vec<bool>,
}

/// A generated graph-classification collection.
#[derive(Debug, Clone)]
pub struct GraphCollection {
    /// The graphs.
    pub graphs: Vec<SmallGraph>,
    /// The shared node-topic lexicon.
    pub lexicon: Arc<Lexicon>,
    /// Graph-class names.
    pub class_names: Vec<String>,
    /// The spec used.
    pub spec: GraphCollectionSpec,
}

impl GraphCollection {
    /// Node topics owned by graph class `g`.
    pub fn topics_of(&self, g: ClassId) -> Vec<u16> {
        let t = self.spec.topics_per_class;
        (0..t).map(|i| (g.index() * t + i) as u16).collect()
    }
}

/// Generate a collection.
pub fn generate_collection(spec: &GraphCollectionSpec, seed: u64) -> GraphCollection {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e_e7);
    let kg = spec.graph_classes.len();
    let num_topics = (kg * spec.topics_per_class) as u16;
    let lexicon = Arc::new(Lexicon::with_markers(seed ^ 0x9a9a, num_topics, 150, 2000, 0));
    let sampler = TextSampler::new(&lexicon, spec.doc);

    let topic_names: Vec<String> = (0..num_topics).map(|t| format!("topic-{t}")).collect();

    let mut graphs = Vec::with_capacity(spec.num_graphs);
    for gi in 0..spec.num_graphs {
        let label = ClassId::from(gi % kg);
        let own_topics: Vec<u16> = (0..spec.topics_per_class)
            .map(|i| (label.index() * spec.topics_per_class + i) as u16)
            .collect();
        let n = rng.gen_range(spec.nodes_per_graph.0..=spec.nodes_per_graph.1);

        // Topology: random graph at the target mean degree (connectivity
        // is not required; ego-nets in the wild are often fragmented).
        let mut b = GraphBuilder::new(n);
        let m = ((n as f64) * spec.mean_degree / 2.0) as usize;
        for _ in 0..m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v).expect("in range");
            }
        }

        let mut texts = Vec::with_capacity(n);
        let mut node_topics = Vec::with_capacity(n);
        let mut relevant = Vec::with_capacity(n);
        for _ in 0..n {
            let is_relevant = rng.gen::<f64>() >= spec.irrelevant_frac;
            let topic = if is_relevant {
                own_topics[rng.gen_range(0..own_topics.len())]
            } else {
                // Off-topic: any topic of another graph class.
                loop {
                    let t = rng.gen_range(0..num_topics);
                    if !own_topics.contains(&t) {
                        break t;
                    }
                }
            };
            let alpha = if is_relevant {
                rng.gen_range(spec.alpha.0..spec.alpha.1)
            } else {
                // Irrelevant nodes are *confidently about something else*
                // (or plain filler); either way they waste prompt tokens.
                rng.gen_range(0.05..0.5)
            };
            texts.push(NodeText::new(
                sampler.sample_title(ClassId(topic), alpha, &mut rng),
                sampler.sample_body(ClassId(topic), alpha, &mut rng),
            ));
            node_topics.push(ClassId(topic));
            relevant.push(is_relevant);
        }
        let tag =
            Tag::new(format!("graph-{gi}"), b.build(), texts, node_topics, topic_names.clone())
                .expect("consistent arrays");
        graphs.push(SmallGraph { tag, label, relevant });
    }
    GraphCollection {
        graphs,
        lexicon,
        class_names: spec.graph_classes.clone(),
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_text::WordKind;

    #[test]
    fn collection_has_requested_shape() {
        let spec = GraphCollectionSpec { num_graphs: 40, ..Default::default() };
        let c = generate_collection(&spec, 1);
        assert_eq!(c.graphs.len(), 40);
        for g in &c.graphs {
            let n = g.tag.num_nodes();
            assert!((12..=30).contains(&n));
            assert_eq!(g.relevant.len(), n);
            assert!(g.label.index() < 4);
        }
        // Balanced labels by construction.
        let counts: Vec<usize> =
            (0..4).map(|k| c.graphs.iter().filter(|g| g.label.index() == k).count()).collect();
        assert_eq!(counts, vec![10, 10, 10, 10]);
    }

    #[test]
    fn relevant_nodes_carry_own_class_topics() {
        let c = generate_collection(&GraphCollectionSpec::default(), 2);
        for g in c.graphs.iter().take(20) {
            let own = c.topics_of(g.label);
            for v in g.tag.node_ids() {
                let topic = g.tag.label(v).0;
                if g.relevant[v.index()] {
                    assert!(own.contains(&topic), "relevant node off-topic");
                } else {
                    assert!(!own.contains(&topic), "irrelevant node on-topic");
                }
            }
        }
    }

    #[test]
    fn irrelevant_fraction_is_respected() {
        let spec =
            GraphCollectionSpec { num_graphs: 100, irrelevant_frac: 0.4, ..Default::default() };
        let c = generate_collection(&spec, 3);
        let (mut total, mut irrelevant) = (0usize, 0usize);
        for g in &c.graphs {
            total += g.relevant.len();
            irrelevant += g.relevant.iter().filter(|&&r| !r).count();
        }
        let frac = irrelevant as f64 / total as f64;
        assert!((frac - 0.4).abs() < 0.05, "irrelevant fraction {frac}");
    }

    #[test]
    fn texts_decode_against_the_shared_lexicon() {
        let c = generate_collection(&GraphCollectionSpec::default(), 4);
        let g = &c.graphs[0];
        let text = g.tag.text(mqo_graph::NodeId(0)).full();
        let decodable = text
            .split_whitespace()
            .filter(|w| {
                matches!(
                    c.lexicon.kind_of_word(w),
                    Some(WordKind::Class(_)) | Some(WordKind::Shared)
                )
            })
            .count();
        assert!(decodable > 10, "texts must come from the collection lexicon");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_collection(&GraphCollectionSpec::default(), 9);
        let b = generate_collection(&GraphCollectionSpec::default(), 9);
        assert_eq!(
            a.graphs[3].tag.text(mqo_graph::NodeId(1)),
            b.graphs[3].tag.text(mqo_graph::NodeId(1))
        );
        assert_eq!(a.graphs[3].relevant, b.graphs[3].relevant);
    }
}
